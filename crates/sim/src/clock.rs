//! Clock domains.
//!
//! The platform modelled by this workspace has three relevant clock domains:
//! the CPU cluster (≈1.2 GHz Cortex-A53), the programmable logic holding the
//! RME (100 MHz in the paper's prototype) and the DRAM device clock. The
//! paper repeatedly points out that every transaction routed through the PL
//! pays a clock-domain-crossing penalty and runs at the lower PL frequency;
//! [`ClockDomain`] is how those penalties are expressed.

use crate::time::SimTime;

/// A named clock domain running at a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    /// Human-readable name (used in reports only).
    pub name: &'static str,
    /// Frequency in megahertz.
    pub freq_mhz: f64,
}

impl ClockDomain {
    /// Creates a new clock domain.
    pub const fn new(name: &'static str, freq_mhz: f64) -> Self {
        ClockDomain { name, freq_mhz }
    }

    /// Duration of a single cycle.
    pub fn cycle(&self) -> SimTime {
        SimTime::from_nanos_f64(1_000.0 / self.freq_mhz)
    }

    /// Duration of `n` cycles.
    pub fn cycles(&self, n: u64) -> SimTime {
        SimTime::from_picos(self.cycle().as_picos() * n)
    }

    /// Number of whole cycles elapsed in `t` (rounded up — a partial cycle
    /// still occupies the hardware for a full cycle).
    pub fn cycles_in(&self, t: SimTime) -> u64 {
        let cycle = self.cycle().as_picos().max(1);
        t.as_picos().div_ceil(cycle)
    }

    /// Converts a duration measured in this domain's cycles into the
    /// equivalent number of cycles of another domain (rounded up).
    pub fn convert_cycles(&self, n: u64, target: &ClockDomain) -> u64 {
        target.cycles_in(self.cycles(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_durations() {
        let pl = ClockDomain::new("pl", 100.0);
        assert_eq!(pl.cycle(), SimTime::from_nanos(10));
        assert_eq!(pl.cycles(3), SimTime::from_nanos(30));

        let cpu = ClockDomain::new("cpu", 1_200.0);
        // 1/1.2 GHz ≈ 0.833 ns
        let c = cpu.cycle().as_nanos_f64();
        assert!((c - 0.8333).abs() < 0.001, "cpu cycle was {c}");
    }

    #[test]
    fn cycles_in_rounds_up() {
        let pl = ClockDomain::new("pl", 100.0);
        assert_eq!(pl.cycles_in(SimTime::from_nanos(10)), 1);
        assert_eq!(pl.cycles_in(SimTime::from_nanos(11)), 2);
        assert_eq!(pl.cycles_in(SimTime::from_nanos(0)), 0);
    }

    #[test]
    fn cross_domain_conversion() {
        let pl = ClockDomain::new("pl", 100.0);
        let cpu = ClockDomain::new("cpu", 1_000.0);
        // 2 PL cycles = 20 ns = 20 CPU cycles at 1 GHz.
        assert_eq!(pl.convert_cycles(2, &cpu), 20);
    }
}
