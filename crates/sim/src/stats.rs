//! Lightweight statistics helpers.
//!
//! The paper repeats each measurement 30 times and reports averages and
//! standard deviations; [`MeanStd`] provides the same summary for the
//! harness. [`Counter`] is a named event counter used by the hardware
//! models (cache requests, DRAM bursts, RME buffer hits, ...).
//! [`LatencyProfile`] summarises per-operation latency samples into the
//! percentiles the HTAP workload harness reports (OLTP p50/p99 under
//! concurrent analytical scans).

use std::fmt;

use crate::time::SimTime;

/// A collection of per-operation latency samples with percentile queries.
///
/// Used by the workload layer to report OLTP tail latencies: each point
/// query contributes one sample, and the harness asks for p50/p99. Samples
/// are kept as exact [`SimTime`] values so summaries stay deterministic.
///
/// ```
/// use relmem_sim::{LatencyProfile, SimTime};
///
/// let mut lat = LatencyProfile::new();
/// for ns in [10u64, 20, 30, 40, 50] {
///     lat.push(SimTime::from_nanos(ns));
/// }
/// assert_eq!(lat.count(), 5);
/// assert_eq!(lat.p50(), SimTime::from_nanos(30));
/// assert_eq!(lat.p99(), SimTime::from_nanos(50));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyProfile {
    samples: Vec<SimTime>,
    sorted: bool,
}

impl LatencyProfile {
    /// An empty profile.
    pub fn new() -> Self {
        LatencyProfile {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn push(&mut self, latency: SimTime) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `p`-th percentile (`0.0 ..= 1.0`) using the nearest-rank method,
    /// or [`SimTime::ZERO`] when no samples were recorded.
    pub fn percentile(&mut self, p: f64) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        self.samples[rank - 1]
    }

    /// Median latency.
    pub fn p50(&mut self) -> SimTime {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> SimTime {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency — the tail the open-loop overload
    /// experiments report. Nearest-rank like every other percentile, so on
    /// fewer than 1000 samples this is simply the maximum.
    pub fn p999(&mut self) -> SimTime {
        self.percentile(0.999)
    }

    /// Largest sample (or zero when empty).
    pub fn max(&mut self) -> SimTime {
        self.percentile(1.0)
    }

    /// Mean latency in nanoseconds (0 when empty) — for throughput-style
    /// summaries next to the percentiles.
    pub fn mean_nanos(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.as_nanos_f64()).sum::<f64>() / self.samples.len() as f64
    }

    /// The raw samples, in insertion order until a percentile query sorts
    /// them. Exposed so determinism tests can compare whole profiles.
    pub fn samples(&self) -> &[SimTime] {
        &self.samples
    }
}

impl FromIterator<SimTime> for LatencyProfile {
    fn from_iter<T: IntoIterator<Item = SimTime>>(iter: T) -> Self {
        let mut profile = LatencyProfile::new();
        for s in iter {
            profile.push(s);
        }
        profile
    }
}

/// One recorded graceful-degradation transition of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeTransition {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// `true`: the system entered the degraded mode (OLAP ops switch to
    /// their downgraded form); `false`: pressure cleared and the system
    /// restored the normal paths.
    pub degraded: bool,
}

/// Admission-control counters of one open-loop run.
///
/// Kept here (next to [`LatencyProfile`]) so every layer that reports
/// overload behaviour — the workload scheduler, the figure harness, the
/// tests — shares a single definition. The counters satisfy
///
/// ```text
/// arrivals + retries == admitted + shed_queue_full
/// admitted          == completed + shed_deadline + timed_out_in_queue
/// ```
///
/// where `timed_out_in_queue` is the portion of [`timed_out`](Self::timed_out)
/// whose client deadline expired before service started (the scheduler
/// drops those at dequeue instead of doing wasted work).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// First-admission attempts presented by the arrival process.
    pub arrivals: u64,
    /// Retry attempts presented (timed-out ops re-entering the queue).
    pub retries: u64,
    /// Attempts that entered an admission queue (first + retry).
    pub admitted: u64,
    /// Attempts rejected because the queue was at capacity.
    pub shed_queue_full: u64,
    /// Admitted ops dropped at dequeue because their queueing delay
    /// exceeded the configured budget.
    pub shed_deadline: u64,
    /// Client-visible timeouts: ops whose end-to-end latency exceeded the
    /// per-op timeout, whether the deadline expired in the queue or during
    /// service.
    pub timed_out: u64,
    /// Attempts serviced to completion (including ones that completed past
    /// their client timeout — wasted work the server still performed).
    pub completed: u64,
    /// Ops serviced through their downgraded form while the system was in
    /// the degraded state.
    pub degraded_ops: u64,
    /// Largest admission-queue depth observed on any core.
    pub max_queue_depth: u64,
    /// Every graceful-degradation transition, in simulated-time order.
    pub transitions: Vec<DegradeTransition>,
}

impl OverloadStats {
    /// Total ops shed (queue-full rejections plus deadline drops).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// Fraction of presented attempts that were shed (`0.0` when nothing
    /// arrived).
    pub fn shed_rate(&self) -> f64 {
        let presented = self.arrivals + self.retries;
        if presented == 0 {
            0.0
        } else {
            self.shed() as f64 / presented as f64
        }
    }
}

/// Transaction-layer counters of one workload or open-loop run.
///
/// Kept here (next to [`OverloadStats`]) so the closed-loop scheduler, the
/// open-loop scheduler, the figure harness and the tests all share one
/// definition. The counters satisfy the accounting identity
///
/// ```text
/// begun == committed + aborted_conflict + aborted_shed
/// ```
///
/// checked by [`is_consistent`](Self::is_consistent): every transaction
/// attempt that begins either commits, aborts on a first-updater-wins
/// write-write conflict, or is abandoned by the system (a commit that ran
/// out of table capacity, or an open-loop template shed before service).
/// A retried transaction counts as a fresh attempt in `begun`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transaction attempts started (each retry counts again).
    pub begun: u64,
    /// Attempts that committed and published their write intents.
    pub committed: u64,
    /// Attempts aborted by first-updater-wins conflict detection.
    pub aborted_conflict: u64,
    /// Attempts abandoned by the system rather than by a data conflict:
    /// commit-time capacity exhaustion, or open-loop admission shedding.
    pub aborted_shed: u64,
    /// Rows published by committed inserts (row + columnar appends each
    /// count the rows they added).
    pub rows_inserted: u64,
}

impl TxnStats {
    /// `true` when the accounting identity
    /// `begun == committed + aborted_conflict + aborted_shed` holds.
    pub fn is_consistent(&self) -> bool {
        self.begun == self.committed + self.aborted_conflict + self.aborted_shed
    }

    /// Fraction of attempts that aborted on a conflict (`0.0` when no
    /// transaction began).
    pub fn conflict_abort_rate(&self) -> f64 {
        if self.begun == 0 {
            0.0
        } else {
            self.aborted_conflict as f64 / self.begun as f64
        }
    }
}

/// A named monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: 0 }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Online mean / standard deviation accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanStd {
    /// An empty accumulator.
    pub fn new() -> Self {
        MeanStd {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for MeanStd {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = MeanStd::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean(), self.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mean_std_matches_reference() {
        let acc: MeanStd = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Population std dev of that classic data set is 2.
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation_are_safe() {
        let empty = MeanStd::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.min(), 0.0);

        let mut one = MeanStd::new();
        one.push(42.0);
        assert_eq!(one.mean(), 42.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut lat = LatencyProfile::new();
        assert_eq!(lat.p99(), SimTime::ZERO);
        for ns in (1..=100u64).rev() {
            lat.push(SimTime::from_nanos(ns));
        }
        assert_eq!(lat.count(), 100);
        assert_eq!(lat.p50(), SimTime::from_nanos(50));
        assert_eq!(lat.p99(), SimTime::from_nanos(99));
        assert_eq!(lat.max(), SimTime::from_nanos(100));
        assert_eq!(lat.percentile(0.0), SimTime::from_nanos(1));
        assert!((lat.mean_nanos() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_reports_zero_everywhere() {
        let mut lat = LatencyProfile::new();
        assert_eq!(lat.count(), 0);
        assert_eq!(lat.p50(), SimTime::ZERO);
        assert_eq!(lat.p99(), SimTime::ZERO);
        assert_eq!(lat.p999(), SimTime::ZERO);
        assert_eq!(lat.max(), SimTime::ZERO);
        assert_eq!(lat.percentile(0.0), SimTime::ZERO);
        assert_eq!(lat.mean_nanos(), 0.0);
        assert!(lat.samples().is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut lat = LatencyProfile::new();
        lat.push(SimTime::from_nanos(42));
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(lat.percentile(p), SimTime::from_nanos(42), "p = {p}");
        }
        assert!((lat.mean_nanos() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn p999_nearest_rank_on_small_counts() {
        // Nearest rank: rank = ceil(0.999 * n). For n < 1000 that is n
        // (the maximum); at n = 1000 it first drops below the maximum,
        // to rank 999 (0.999 * 1000 rounds to 999 in f64).
        let fill = |n: u64| -> LatencyProfile { (1..=n).map(SimTime::from_nanos).collect() };
        assert_eq!(fill(10).p999(), SimTime::from_nanos(10));
        assert_eq!(fill(100).p999(), SimTime::from_nanos(100));
        assert_eq!(fill(999).p999(), SimTime::from_nanos(999));
        assert_eq!(fill(1000).p999(), SimTime::from_nanos(999));
        assert_eq!(fill(1001).p999(), SimTime::from_nanos(1000));
        // And the rounding never exceeds the maximum.
        assert_eq!(fill(3).p999(), fill(3).max());
    }

    #[test]
    fn overload_stats_shed_accounting() {
        let mut o = OverloadStats::default();
        assert_eq!(o.shed(), 0);
        assert_eq!(o.shed_rate(), 0.0);
        o.arrivals = 90;
        o.retries = 10;
        o.shed_queue_full = 4;
        o.shed_deadline = 1;
        assert_eq!(o.shed(), 5);
        assert!((o.shed_rate() - 0.05).abs() < 1e-12);
        o.transitions.push(DegradeTransition {
            at: SimTime::from_nanos(7),
            degraded: true,
        });
        assert_eq!(o.clone(), o, "OverloadStats compares structurally");
    }

    #[test]
    fn txn_stats_accounting_identity() {
        let mut t = TxnStats::default();
        assert!(t.is_consistent());
        assert_eq!(t.conflict_abort_rate(), 0.0);
        t.begun = 10;
        t.committed = 7;
        t.aborted_conflict = 2;
        t.aborted_shed = 1;
        t.rows_inserted = 3;
        assert!(t.is_consistent());
        assert!((t.conflict_abort_rate() - 0.2).abs() < 1e-12);
        t.committed = 8;
        assert!(!t.is_consistent(), "a double-counted commit must be caught");
    }

    #[test]
    fn display_formats() {
        let mut c = Counter::new();
        c.add(3);
        assert_eq!(c.to_string(), "3");
        let acc: MeanStd = [1.0, 3.0].into_iter().collect();
        assert_eq!(acc.to_string(), "2.000 ± 1.000");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Nearest-rank percentiles are monotone in `p` for any sample
            /// set: p50 ≤ p99 ≤ p99.9 ≤ max.
            #[test]
            fn percentiles_are_monotone(
                samples in proptest::collection::vec(0u64..1_000_000_000, 1..400)
            ) {
                let mut lat: LatencyProfile =
                    samples.into_iter().map(SimTime::from_nanos).collect();
                let p50 = lat.p50();
                let p99 = lat.p99();
                let p999 = lat.p999();
                let max = lat.max();
                prop_assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
                prop_assert!(p99 <= p999, "p99 {p99} > p99.9 {p999}");
                prop_assert!(p999 <= max, "p99.9 {p999} > max {max}");
            }
        }
    }
}
