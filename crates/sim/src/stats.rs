//! Lightweight statistics helpers.
//!
//! The paper repeats each measurement 30 times and reports averages and
//! standard deviations; [`MeanStd`] provides the same summary for the
//! harness. [`Counter`] is a named event counter used by the hardware
//! models (cache requests, DRAM bursts, RME buffer hits, ...).
//! [`LatencyProfile`] summarises per-operation latency samples into the
//! percentiles the HTAP workload harness reports (OLTP p50/p99 under
//! concurrent analytical scans).

use std::fmt;

use crate::time::SimTime;

/// A collection of per-operation latency samples with percentile queries.
///
/// Used by the workload layer to report OLTP tail latencies: each point
/// query contributes one sample, and the harness asks for p50/p99. Samples
/// are kept as exact [`SimTime`] values so summaries stay deterministic.
///
/// ```
/// use relmem_sim::{LatencyProfile, SimTime};
///
/// let mut lat = LatencyProfile::new();
/// for ns in [10u64, 20, 30, 40, 50] {
///     lat.push(SimTime::from_nanos(ns));
/// }
/// assert_eq!(lat.count(), 5);
/// assert_eq!(lat.p50(), SimTime::from_nanos(30));
/// assert_eq!(lat.p99(), SimTime::from_nanos(50));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyProfile {
    samples: Vec<SimTime>,
    sorted: bool,
}

impl LatencyProfile {
    /// An empty profile.
    pub fn new() -> Self {
        LatencyProfile {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn push(&mut self, latency: SimTime) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `p`-th percentile (`0.0 ..= 1.0`) using the nearest-rank method,
    /// or [`SimTime::ZERO`] when no samples were recorded.
    pub fn percentile(&mut self, p: f64) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        self.samples[rank - 1]
    }

    /// Median latency.
    pub fn p50(&mut self) -> SimTime {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> SimTime {
        self.percentile(0.99)
    }

    /// Largest sample (or zero when empty).
    pub fn max(&mut self) -> SimTime {
        self.percentile(1.0)
    }

    /// Mean latency in nanoseconds (0 when empty) — for throughput-style
    /// summaries next to the percentiles.
    pub fn mean_nanos(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.as_nanos_f64()).sum::<f64>() / self.samples.len() as f64
    }
}

/// A named monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: 0 }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Online mean / standard deviation accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanStd {
    /// An empty accumulator.
    pub fn new() -> Self {
        MeanStd {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for MeanStd {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = MeanStd::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean(), self.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mean_std_matches_reference() {
        let acc: MeanStd = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Population std dev of that classic data set is 2.
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation_are_safe() {
        let empty = MeanStd::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.min(), 0.0);

        let mut one = MeanStd::new();
        one.push(42.0);
        assert_eq!(one.mean(), 42.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut lat = LatencyProfile::new();
        assert_eq!(lat.p99(), SimTime::ZERO);
        for ns in (1..=100u64).rev() {
            lat.push(SimTime::from_nanos(ns));
        }
        assert_eq!(lat.count(), 100);
        assert_eq!(lat.p50(), SimTime::from_nanos(50));
        assert_eq!(lat.p99(), SimTime::from_nanos(99));
        assert_eq!(lat.max(), SimTime::from_nanos(100));
        assert_eq!(lat.percentile(0.0), SimTime::from_nanos(1));
        assert!((lat.mean_nanos() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        let mut c = Counter::new();
        c.add(3);
        assert_eq!(c.to_string(), "3");
        let acc: MeanStd = [1.0, 3.0].into_iter().collect();
        assert_eq!(acc.to_string(), "2.000 ± 1.000");
    }
}
