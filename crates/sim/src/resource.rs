//! Occupancy-tracked hardware resources.
//!
//! The timing model in this workspace is a transaction-level pipeline model:
//! instead of a full discrete-event simulator we track, for each contended
//! hardware resource (DRAM data bus, DRAM banks, PS–PL port, RME fetch
//! units), the time at which it next becomes free. A request that needs a
//! resource starts at `max(request_ready, resource_free)` and occupies the
//! resource for its service time. This captures the first-order effects the
//! paper relies on — bandwidth saturation, bank-level parallelism and the
//! benefit of multiple outstanding transactions — while remaining fast
//! enough to sweep multi-gigabyte tables.

use crate::time::SimTime;

/// A single-server resource (e.g. a bus) that can serve one request at a
/// time.
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    next_free: SimTime,
    busy: SimTime,
    served: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new(name: &'static str) -> Self {
        Resource {
            name,
            next_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Books the resource for `occupancy`, starting no earlier than `ready`.
    /// Returns `(start, end)` of the booking.
    pub fn acquire(&mut self, ready: SimTime, occupancy: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.next_free);
        let end = start + occupancy;
        self.next_free = end;
        self.busy += occupancy;
        self.served += 1;
        (start, end)
    }

    /// The earliest time a new request could start service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total time spent serving requests.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of bookings made.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization in `[0, 1]` relative to a horizon (typically the final
    /// completion time of the workload).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.busy.as_picos() as f64 / horizon.as_picos() as f64
        }
    }

    /// Resets the resource to idle, clearing statistics.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.busy = SimTime::ZERO;
        self.served = 0;
    }
}

/// A pool of `k` identical servers (e.g. DRAM banks or RME fetch units).
/// Each booking is served by the earliest-free server.
#[derive(Debug, Clone)]
pub struct MultiResource {
    name: &'static str,
    servers: Vec<SimTime>,
    busy: SimTime,
    served: u64,
}

impl MultiResource {
    /// Creates a pool of `servers` idle servers. `servers` must be ≥ 1.
    pub fn new(name: &'static str, servers: usize) -> Self {
        assert!(servers >= 1, "a resource pool needs at least one server");
        MultiResource {
            name,
            servers: vec![SimTime::ZERO; servers],
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of servers in the pool.
    pub fn capacity(&self) -> usize {
        self.servers.len()
    }

    /// Books the earliest-available server. Returns `(server_index, start, end)`.
    pub fn acquire(&mut self, ready: SimTime, occupancy: SimTime) -> (usize, SimTime, SimTime) {
        let (idx, free) = self
            .servers
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("pool is non-empty");
        let start = ready.max(free);
        let end = start + occupancy;
        self.servers[idx] = end;
        self.busy += occupancy;
        self.served += 1;
        (idx, start, end)
    }

    /// Books a *specific* server (used when the request is bound to a
    /// particular bank or unit). Returns `(start, end)`.
    pub fn acquire_server(
        &mut self,
        server: usize,
        ready: SimTime,
        occupancy: SimTime,
    ) -> (SimTime, SimTime) {
        let free = self.servers[server];
        let start = ready.max(free);
        let end = start + occupancy;
        self.servers[server] = end;
        self.busy += occupancy;
        self.served += 1;
        (start, end)
    }

    /// The earliest time any server becomes free.
    pub fn earliest_free(&self) -> SimTime {
        self.servers.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// The time a specific server becomes free.
    pub fn server_free(&self, server: usize) -> SimTime {
        self.servers[server]
    }

    /// Total busy time summed across servers.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of bookings made.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Average per-server utilization relative to a horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.busy.as_picos() as f64
                / (horizon.as_picos() as f64 * self.servers.len() as f64)
        }
    }

    /// Resets all servers to idle, clearing statistics.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = SimTime::ZERO;
        }
        self.busy = SimTime::ZERO;
        self.served = 0;
    }
}

/// A single-server resource with two FIFO admission classes: a *paced*
/// class that appends behind every existing booking (exactly like
/// [`Resource`]) and a *demand* class that is serialized only against its
/// own class.
///
/// [`Resource`] collapses the schedule to one free pointer, which makes a
/// reservation at a future ready time block every later request — even
/// though the server is idle until that reservation starts. In the HTAP
/// mix this turns the RME's paced descriptor bookings (anchored up to a
/// frame ahead of real time) into a wall that every CPU demand miss queues
/// behind. `PriorityResource` models what the platform actually does: the
/// PS–PL interconnect gives CPU (demand) traffic QoS priority over the PL
/// requestor, so a demand read is admitted as if the prefetcher's future
/// reservations were not there. The paced class's already-returned
/// completion times are left standing — the prefetcher absorbs the
/// preemption bubble out of its rate slack, which is conservative for it.
///
/// * [`acquire`](Self::acquire) — **paced** class: starts at
///   `max(ready, next_free)`, bit-identical to [`Resource::acquire`]. Used
///   for the RME's paced descriptor bookings and for every request when
///   demand priority is disabled.
/// * [`acquire_demand`](Self::acquire_demand) — **demand** class: starts at
///   `max(ready, demand_free)`, where `demand_free` tracks only previous
///   demand-class bookings. Demand requests stay FIFO among themselves, so
///   on a resource carrying only demand traffic this degenerates to
///   [`Resource::acquire`] bit for bit — the identity that keeps pure-CPU
///   request streams unchanged whether or not priority admission is on.
///   Likewise a resource carrying only paced traffic is bit-identical to a
///   plain [`Resource`], so the two classes only interact on genuinely
///   mixed (RME + CPU) runs.
#[derive(Debug, Clone)]
pub struct PriorityResource {
    name: &'static str,
    /// Latest booked end over *all* bookings — the paced-class append point.
    next_free: SimTime,
    /// Latest booked end over demand-class bookings only.
    demand_free: SimTime,
    busy: SimTime,
    served: u64,
}

impl PriorityResource {
    /// Creates an idle resource.
    pub fn new(name: &'static str) -> Self {
        PriorityResource {
            name,
            next_free: SimTime::ZERO,
            demand_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Paced-class booking: starts no earlier than `ready` and after every
    /// existing booking of either class. Identical to [`Resource::acquire`].
    pub fn acquire(&mut self, ready: SimTime, occupancy: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.next_free);
        self.book(start, occupancy)
    }

    /// Demand-class booking: starts no earlier than `ready` and after every
    /// earlier *demand* booking, ignoring paced-class reservations (demand
    /// priority — see the type docs). May therefore overlap paced bookings;
    /// [`busy_time`](Self::busy_time) still accumulates both, so it can
    /// slightly overcount on mixed runs (bounded by the demand traffic
    /// volume).
    pub fn acquire_demand(&mut self, ready: SimTime, occupancy: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.demand_free);
        let (start, end) = self.book(start, occupancy);
        self.demand_free = end;
        (start, end)
    }

    fn book(&mut self, start: SimTime, occupancy: SimTime) -> (SimTime, SimTime) {
        let end = start + occupancy;
        self.busy += occupancy;
        self.served += 1;
        self.next_free = self.next_free.max(end);
        (start, end)
    }

    /// The earliest time a paced-class request could start service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total time spent serving requests (both classes; on mixed runs the
    /// demand class may overlap paced reservations, so this is an upper
    /// bound rather than an exact busy integral).
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of bookings made.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Resets the resource to idle, clearing statistics.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.demand_free = SimTime::ZERO;
        self.busy = SimTime::ZERO;
        self.served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn single_resource_serializes_requests() {
        let mut bus = Resource::new("bus");
        let (s1, e1) = bus.acquire(ns(0), ns(10));
        assert_eq!((s1, e1), (ns(0), ns(10)));
        // Second request is ready at t=2 but must wait for the bus.
        let (s2, e2) = bus.acquire(ns(2), ns(5));
        assert_eq!((s2, e2), (ns(10), ns(15)));
        // A request arriving after the bus is free starts immediately.
        let (s3, e3) = bus.acquire(ns(100), ns(1));
        assert_eq!((s3, e3), (ns(100), ns(101)));
        assert_eq!(bus.busy_time(), ns(16));
        assert_eq!(bus.served(), 3);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut bus = Resource::new("bus");
        bus.acquire(ns(0), ns(50));
        assert!((bus.utilization(ns(100)) - 0.5).abs() < 1e-9);
        assert_eq!(bus.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn pool_overlaps_across_servers() {
        let mut banks = MultiResource::new("banks", 2);
        let (_, s1, e1) = banks.acquire(ns(0), ns(10));
        let (_, s2, e2) = banks.acquire(ns(0), ns(10));
        // Two servers: both start at 0.
        assert_eq!((s1, e1), (ns(0), ns(10)));
        assert_eq!((s2, e2), (ns(0), ns(10)));
        // Third must wait for one of them.
        let (_, s3, _) = banks.acquire(ns(0), ns(10));
        assert_eq!(s3, ns(10));
        assert_eq!(banks.served(), 3);
    }

    #[test]
    fn pool_specific_server_booking() {
        let mut banks = MultiResource::new("banks", 4);
        let (s1, e1) = banks.acquire_server(2, ns(0), ns(7));
        assert_eq!((s1, e1), (ns(0), ns(7)));
        let (s2, _) = banks.acquire_server(2, ns(1), ns(7));
        assert_eq!(s2, ns(7));
        // Other servers are still free.
        assert_eq!(banks.server_free(0), SimTime::ZERO);
        assert_eq!(banks.earliest_free(), SimTime::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = Resource::new("bus");
        bus.acquire(ns(0), ns(10));
        bus.reset();
        assert_eq!(bus.next_free(), SimTime::ZERO);
        assert_eq!(bus.busy_time(), SimTime::ZERO);
        assert_eq!(bus.served(), 0);

        let mut pool = MultiResource::new("pool", 3);
        pool.acquire(ns(0), ns(10));
        pool.reset();
        assert_eq!(pool.earliest_free(), SimTime::ZERO);
        assert_eq!(pool.served(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = MultiResource::new("empty", 0);
    }

    #[test]
    fn priority_paced_class_matches_resource_bit_for_bit() {
        let mut res = Resource::new("bus");
        let mut pr = PriorityResource::new("bus");
        let reqs = [(0u64, 10u64), (2, 5), (100, 1), (90, 7), (100, 3)];
        for (ready, occ) in reqs {
            assert_eq!(res.acquire(ns(ready), ns(occ)), pr.acquire(ns(ready), ns(occ)));
        }
        assert_eq!(res.next_free(), pr.next_free());
        assert_eq!(res.busy_time(), pr.busy_time());
        assert_eq!(res.served(), pr.served());
    }

    #[test]
    fn priority_demand_only_traffic_matches_resource() {
        // With no paced reservations to preempt, the demand class is plain
        // FIFO occupancy — the identity that keeps pure-CPU request streams
        // unchanged under event-driven mode.
        let mut res = Resource::new("bus");
        let mut pr = PriorityResource::new("bus");
        let reqs = [(0u64, 10u64), (2, 5), (100, 1), (90, 7), (100, 3)];
        for (ready, occ) in reqs {
            assert_eq!(
                res.acquire(ns(ready), ns(occ)),
                pr.acquire_demand(ns(ready), ns(occ))
            );
        }
        assert_eq!(res.busy_time(), pr.busy_time());
    }

    #[test]
    fn priority_demand_ignores_paced_future_reservations() {
        let mut pr = PriorityResource::new("bank");
        // Paced future reservations: [100,102], [200,202], [300,302].
        for k in 1..=3u64 {
            assert_eq!(
                pr.acquire(ns(100 * k), ns(2)),
                (ns(100 * k), ns(100 * k + 2))
            );
        }
        // A demand read ready at t=10 is served immediately: the paced
        // reservations do not queue it.
        assert_eq!(pr.acquire_demand(ns(10), ns(30)), (ns(10), ns(40)));
        // Demand stays FIFO within its class: ready at 20 but the previous
        // demand booking runs to 40.
        assert_eq!(pr.acquire_demand(ns(20), ns(5)), (ns(40), ns(45)));
        // Paced traffic still packs after everything booked (both classes).
        assert_eq!(pr.acquire(ns(0), ns(5)), (ns(302), ns(307)));
    }

    #[test]
    fn priority_demand_overlap_is_allowed_and_counted() {
        let mut pr = PriorityResource::new("bus");
        pr.acquire(ns(0), ns(100)); // paced transfer occupies [0, 100]
        // The demand read preempts: it starts at its ready time even though
        // the paced transfer is in flight, and busy time counts both.
        assert_eq!(pr.acquire_demand(ns(40), ns(10)), (ns(40), ns(50)));
        assert_eq!(pr.busy_time(), ns(110));
        assert_eq!(pr.next_free(), ns(100));
    }

    #[test]
    fn priority_reset_clears_state() {
        let mut pr = PriorityResource::new("bank");
        pr.acquire(ns(50), ns(10));
        pr.acquire_demand(ns(0), ns(5));
        pr.reset();
        assert_eq!(pr.next_free(), SimTime::ZERO);
        assert_eq!(pr.busy_time(), SimTime::ZERO);
        assert_eq!(pr.served(), 0);
        assert_eq!(pr.acquire_demand(ns(0), ns(5)), (SimTime::ZERO, ns(5)));
    }
}
