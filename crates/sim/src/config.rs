//! Platform configuration.
//!
//! [`PlatformConfig`] gathers every structural and timing parameter of the
//! modelled PS–PL platform. The defaults describe the Xilinx ZCU102 board
//! used by the paper: four Cortex-A53 cores at 1.2 GHz, 32 KB private L1
//! data caches, a 1 MB shared L2, DDR4 main memory behind a 16-byte data
//! bus, and a 100 MHz programmable-logic region holding the RME with a 2 MB
//! Data SPM.
//!
//! All experiment shapes in `relmem-bench` derive from these parameters —
//! there are no per-experiment magic constants.

use crate::clock::ClockDomain;
use crate::time::SimTime;

/// CPU cluster parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Core frequency in MHz (A53 on the ZCU102 runs at ~1.2 GHz).
    pub freq_mhz: f64,
    /// Number of cores in the cluster (the benchmark is single-threaded but
    /// the count matters for the resource model and future extensions).
    pub cores: usize,
    /// Maximum number of outstanding demand misses a core can sustain
    /// (miss-status-holding registers). Governs how much DRAM latency the
    /// core itself can hide without the prefetcher.
    pub max_outstanding_misses: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            freq_mhz: 1_200.0,
            cores: 4,
            max_outstanding_misses: 6,
        }
    }
}

impl CpuConfig {
    /// The CPU clock domain.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::new("cpu", self.freq_mhz)
    }
}

/// A single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in CPU cycles.
    pub hit_latency_cycles: u64,
}

impl CacheLevelConfig {
    /// Number of sets implied by size / associativity / line size.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_bytes)
    }
}

/// Which DRAM timing model the controller runs.
///
/// The workspace ships two implementations behind one interface (the
/// `DramModel` dispatcher in `relmem-dram`):
///
/// * [`MemoryModel::Occupancy`] — the original transaction-level model:
///   per-bank open-row state, occupancy-tracked banks and data bus. Fast
///   enough for multi-gigabyte sweeps; the default, and the model every
///   golden fixture pins.
/// * [`MemoryModel::CycleAccurate`] — a command-level model (DRAMsim3-style,
///   in pure Rust): per-bank ACT/PRE/RD/WR state machines with
///   tRCD/tCL/tRP/tRAS/tWR constraints, a per-rank tFAW activate window,
///   periodic refresh (tREFI/tRFC) and a bounded transaction queue.
///   Slower, but expresses command-level effects the occupancy model folds
///   into constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Occupancy-tracked transaction-level model (default).
    #[default]
    Occupancy,
    /// Command-level cycle-accurate model.
    CycleAccurate,
}

/// DRAM device + controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independently schedulable banks.
    pub banks: usize,
    /// DRAM row (page) size per bank in bytes.
    pub row_bytes: usize,
    /// Data bus width in bytes per beat (the paper's Requestor reasons in
    /// 16-byte bus words).
    pub bus_bytes: usize,
    /// Time to transfer one bus beat on the data bus.
    pub beat_time: SimTime,
    /// Activate (row open) latency, tRCD.
    pub t_rcd: SimTime,
    /// Column access latency, tCAS/tCL.
    pub t_cas: SimTime,
    /// Precharge latency, tRP.
    pub t_rp: SimTime,
    /// Column-to-column command spacing, tCCD: how long a bank is occupied
    /// by a row-buffer-hit access (back-to-back hits pipeline at this rate
    /// even though each one still observes the full CAS latency).
    pub t_ccd: SimTime,
    /// Fixed controller/front-end overhead per request (queueing, PHY).
    pub controller_overhead: SimTime,
    /// Permute the bank index with the DRAM row bits (an XOR hash for
    /// power-of-two bank counts, an additive rotation otherwise), the way
    /// real controllers decorrelate bank camping from power-of-two access
    /// strides. Without it, streams whose start addresses differ by a
    /// multiple of `banks × row_bytes` — e.g. the shards of a sharded scan
    /// over a power-of-two-sized table — all open the same bank in
    /// lockstep and serialize there. On by default; switch off for the
    /// plain "row : bank : column" interleaving.
    pub xor_bank_hash: bool,
    /// Which timing model services requests. The cycle-accurate model uses
    /// the command-level parameters below; the (default) occupancy model
    /// ignores them, so flipping defaults here can never shift the golden
    /// fixtures.
    pub model: MemoryModel,
    /// Row-active time, tRAS: minimum ACT → PRE spacing on a bank
    /// (cycle-accurate model only).
    pub t_ras: SimTime,
    /// Write recovery, tWR: last write data → PRE on the same bank
    /// (cycle-accurate model only).
    pub t_wr: SimTime,
    /// Write-to-read turnaround, tWTR: last write data → next read command
    /// anywhere on the rank (cycle-accurate model only).
    pub t_wtr: SimTime,
    /// Read-to-precharge, tRTP: read command → PRE on the same bank
    /// (cycle-accurate model only).
    pub t_rtp: SimTime,
    /// Four-activate window, tFAW: at most four ACTs may issue on the rank
    /// in any window of this length (cycle-accurate model only).
    pub t_faw: SimTime,
    /// Average refresh interval, tREFI: every bank is refreshed once per
    /// window (cycle-accurate model only).
    pub t_refi: SimTime,
    /// Refresh cycle time, tRFC: how long a refresh keeps a bank busy; a
    /// refresh also closes the bank's open row (cycle-accurate model only).
    pub t_rfc: SimTime,
    /// Transaction-queue depth of the controller front end: at most this
    /// many requests can be in flight; further arrivals stall at admission
    /// (cycle-accurate model only).
    pub queue_depth: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            bus_bytes: 16,
            // DDR4-2133-ish: 16 B/beat at ~17 GB/s peak ≈ 0.94 ns per beat;
            // we use 1.25 ns (12.8 GB/s effective) to account for refresh
            // and scheduling gaps.
            beat_time: SimTime::from_picos(1_250),
            t_rcd: SimTime::from_nanos_f64(14.0),
            t_cas: SimTime::from_nanos_f64(14.0),
            t_rp: SimTime::from_nanos_f64(14.0),
            t_ccd: SimTime::from_nanos_f64(5.0),
            controller_overhead: SimTime::from_nanos_f64(20.0),
            xor_bank_hash: true,
            model: MemoryModel::Occupancy,
            // DDR4-2133 command-level timings (JEDEC-ish round numbers).
            t_ras: SimTime::from_nanos_f64(33.0),
            t_wr: SimTime::from_nanos_f64(15.0),
            t_wtr: SimTime::from_nanos_f64(7.5),
            t_rtp: SimTime::from_nanos_f64(7.5),
            t_faw: SimTime::from_nanos_f64(30.0),
            t_refi: SimTime::from_nanos_f64(7_800.0),
            t_rfc: SimTime::from_nanos_f64(350.0),
            queue_depth: 32,
        }
    }
}

impl DramConfig {
    /// Time to stream `bytes` over the data bus (rounded up to whole beats).
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        let beats = bytes.div_ceil(self.bus_bytes) as u64;
        self.beat_time * beats
    }

    /// Latency of a row-buffer hit access (excluding data transfer).
    pub fn row_hit_latency(&self) -> SimTime {
        self.controller_overhead + self.t_cas
    }

    /// Latency of a row-buffer miss access (excluding data transfer).
    pub fn row_miss_latency(&self) -> SimTime {
        self.controller_overhead + self.t_rp + self.t_rcd + self.t_cas
    }

    /// Row cycle time, tRC = tRAS + tRP: minimum ACT → ACT spacing on one
    /// bank (cycle-accurate model only).
    pub fn t_rc(&self) -> SimTime {
        self.t_ras + self.t_rp
    }
}

/// PS ↔ PL interface parameters (AXI + clock-domain crossing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdcConfig {
    /// PL fabric frequency in MHz (100 MHz in the paper's prototype).
    pub pl_freq_mhz: f64,
    /// PL cycles of clock-domain-crossing latency added to a request on its
    /// way into the PL.
    pub request_pl_cycles: u64,
    /// PL cycles of clock-domain-crossing latency added to a response on its
    /// way back to the PS.
    pub response_pl_cycles: u64,
    /// Effective width of the PS–PL high-performance port in bytes per PL
    /// cycle. The HP ports are 128-bit AXI interfaces that can be clocked
    /// independently of (and faster than) the 100 MHz engine fabric; the
    /// asynchronous FIFO between the two domains drains two engine-side
    /// words per engine cycle, hence 32 bytes per PL cycle.
    pub port_bytes_per_cycle: usize,
    /// Maximum outstanding CPU-side transactions the Trapper accepts.
    pub max_outstanding: usize,
    /// End-to-end latency of a PL-originated read reaching DRAM and coming
    /// back through the PS interconnect (HP port + DDR controller). This is
    /// a pure latency — revisions with many outstanding reads hide it, the
    /// single-outstanding BSL design pays it on every chunk.
    pub pl_dram_read_latency: SimTime,
}

impl Default for CdcConfig {
    fn default() -> Self {
        CdcConfig {
            pl_freq_mhz: 100.0,
            request_pl_cycles: 2,
            response_pl_cycles: 2,
            port_bytes_per_cycle: 32,
            max_outstanding: 8,
            pl_dram_read_latency: SimTime::from_nanos_f64(200.0),
        }
    }
}

impl CdcConfig {
    /// The PL clock domain.
    pub fn pl_clock(&self) -> ClockDomain {
        ClockDomain::new("pl", self.pl_freq_mhz)
    }

    /// One-way request crossing latency.
    pub fn request_latency(&self) -> SimTime {
        self.pl_clock().cycles(self.request_pl_cycles)
    }

    /// One-way response crossing latency.
    pub fn response_latency(&self) -> SimTime {
        self.pl_clock().cycles(self.response_pl_cycles)
    }

    /// Time to move `bytes` across the PS–PL port (occupancy, not latency).
    pub fn port_transfer_time(&self, bytes: usize) -> SimTime {
        let cycles = bytes.div_ceil(self.port_bytes_per_cycle) as u64;
        self.pl_clock().cycles(cycles)
    }
}

/// Structural parameters of the RME hardware itself (independent of the
/// revision; revision-specific behaviour lives in `relmem-rme`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmeHwConfig {
    /// Data scratch-pad memory capacity in bytes (2 MB on the ZCU102 build).
    pub data_spm_bytes: usize,
    /// Metadata scratch-pad memory capacity in bytes.
    pub metadata_spm_bytes: usize,
    /// Number of Fetch Units instantiated.
    pub fetch_units: usize,
    /// Maximum number of columns of interest the configuration port accepts
    /// (11 in the prototype).
    pub max_columns: usize,
    /// Maximum width of a single column of interest in bytes (64 = one full
    /// cache line in the prototype).
    pub max_column_width: usize,
    /// Bus beats each Fetch Unit's read-data port absorbs per PL cycle (the
    /// HP read channels are wider/faster than the 100 MHz engine fabric, so
    /// the landing FIFO drains two 16-byte beats per engine cycle).
    pub port_beats_per_cycle: u64,
    /// PL cycles for a Data SPM read or write of one bus word.
    pub spm_access_cycles: u64,
    /// PL cycles the Requestor needs to emit one descriptor.
    pub descriptor_cycles: u64,
    /// PL cycles the Column Extractor needs per bus beat of payload.
    pub extract_cycles_per_beat: u64,
}

impl Default for RmeHwConfig {
    fn default() -> Self {
        RmeHwConfig {
            data_spm_bytes: 2 * 1024 * 1024,
            metadata_spm_bytes: 64 * 1024,
            fetch_units: 4,
            max_columns: 11,
            max_column_width: 64,
            port_beats_per_cycle: 2,
            spm_access_cycles: 1,
            descriptor_cycles: 1,
            extract_cycles_per_beat: 1,
        }
    }
}

/// Complete platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// CPU cluster.
    pub cpu: CpuConfig,
    /// Private L1 data cache (per core).
    pub l1: CacheLevelConfig,
    /// Shared unified L2 cache.
    pub l2: CacheLevelConfig,
    /// Maximum number of sequential streams the hardware prefetcher tracks
    /// (the paper observes the A53 covers up to four).
    pub prefetch_streams: usize,
    /// How many lines ahead the prefetcher runs once a stream is established.
    pub prefetch_degree: usize,
    /// Number of independently addressable banks of the shared L2. Only
    /// consulted when more than one core is simulated: concurrent lookups
    /// that map to the same bank serialize on its occupancy (the shared-L2
    /// contention model); a single in-order core can never overlap its own
    /// lookups, so the banks are bypassed there to keep single-core timing
    /// bit-identical to the pre-multi-core model.
    pub l2_banks: usize,
    /// CPU cycles one lookup occupies its L2 bank. The bank pipeline accepts
    /// a new request every `l2_bank_occupancy_cycles` even though each
    /// lookup still observes the full `l2.hit_latency_cycles` latency
    /// (occupancy < latency, like tCCD vs tCAS on the DRAM side).
    pub l2_bank_occupancy_cycles: u64,
    /// DRAM device and controller.
    pub dram: DramConfig,
    /// PS–PL interface.
    pub cdc: CdcConfig,
    /// RME structural parameters.
    pub rme: RmeHwConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::zcu102()
    }
}

impl PlatformConfig {
    /// The ZCU102-like configuration used throughout the paper's evaluation.
    pub fn zcu102() -> Self {
        PlatformConfig {
            cpu: CpuConfig::default(),
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency_cycles: 2,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
                hit_latency_cycles: 15,
            },
            prefetch_streams: 4,
            prefetch_degree: 8,
            l2_banks: 4,
            l2_bank_occupancy_cycles: 4,
            dram: DramConfig::default(),
            cdc: CdcConfig::default(),
            rme: RmeHwConfig::default(),
        }
    }

    /// A configuration with a tiny L1/L2 and SPM, useful for unit tests that
    /// want to exercise evictions and SPM frame turnover cheaply.
    pub fn tiny_for_tests() -> Self {
        let mut cfg = PlatformConfig::zcu102();
        cfg.l1.size_bytes = 1024;
        cfg.l2.size_bytes = 8 * 1024;
        cfg.rme.data_spm_bytes = 4 * 1024;
        cfg
    }

    /// Cache line size shared by both levels (the model requires them to
    /// match, as on the A53).
    pub fn line_bytes(&self) -> usize {
        debug_assert_eq!(self.l1.line_bytes, self.l2.line_bytes);
        self.l1.line_bytes
    }

    /// The CPU clock domain.
    pub fn cpu_clock(&self) -> ClockDomain {
        self.cpu.clock()
    }

    /// The PL clock domain.
    pub fn pl_clock(&self) -> ClockDomain {
        self.cdc.pl_clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu102_defaults_match_paper() {
        let cfg = PlatformConfig::zcu102();
        assert_eq!(cfg.cpu.cores, 4);
        assert_eq!(cfg.l2_banks, 4);
        assert!(cfg.l2_bank_occupancy_cycles < cfg.l2.hit_latency_cycles);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.line_bytes(), 64);
        assert_eq!(cfg.prefetch_streams, 4);
        assert_eq!(cfg.dram.bus_bytes, 16);
        assert_eq!(cfg.rme.data_spm_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.rme.max_columns, 11);
        assert_eq!(cfg.rme.max_column_width, 64);
        assert!((cfg.cdc.pl_freq_mhz - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cache_sets_computed() {
        let cfg = PlatformConfig::zcu102();
        assert_eq!(cfg.l1.sets(), 32 * 1024 / (4 * 64));
        assert_eq!(cfg.l2.sets(), 1024 * 1024 / (16 * 64));
    }

    #[test]
    fn dram_latencies_ordered() {
        let d = DramConfig::default();
        assert!(d.row_hit_latency() < d.row_miss_latency());
        assert_eq!(d.transfer_time(16), d.beat_time);
        assert_eq!(d.transfer_time(17), d.beat_time * 2);
        assert_eq!(d.transfer_time(64), d.beat_time * 4);
    }

    #[test]
    fn dram_command_level_timings_are_consistent() {
        let d = DramConfig::default();
        assert_eq!(d.model, MemoryModel::Occupancy, "occupancy is the default");
        assert_eq!(d.t_rc(), d.t_ras + d.t_rp);
        // Ordering sanity of the JEDEC-style parameters.
        assert!(d.t_rcd < d.t_ras, "a row must stay open past its activate");
        assert!(d.t_faw > d.t_ccd, "tFAW spans several column commands");
        assert!(d.t_rfc < d.t_refi, "refresh must not saturate the device");
        assert!(d.queue_depth >= 1);
    }

    #[test]
    fn cdc_costs_scale_with_bytes() {
        let c = CdcConfig::default();
        assert_eq!(c.request_latency(), SimTime::from_nanos(20));
        assert_eq!(c.port_transfer_time(16), SimTime::from_nanos(10));
        assert_eq!(c.port_transfer_time(64), SimTime::from_nanos(20));
    }

    #[test]
    fn tiny_config_is_smaller() {
        let t = PlatformConfig::tiny_for_tests();
        let z = PlatformConfig::zcu102();
        assert!(t.l1.size_bytes < z.l1.size_bytes);
        assert!(t.rme.data_spm_bytes < z.rme.data_spm_bytes);
    }
}
