//! Plain-text and CSV rendering of experiment output.
//!
//! The benchmark harness reproduces each paper figure as either a [`Table`]
//! (rows × named columns) or a set of [`Series`] (x/y pairs, one series per
//! line in the figure). Both render to aligned monospace text for the
//! terminal / EXPERIMENTS.md and to CSV for external plotting.

use std::fmt::Write as _;

/// A named sequence of `(x, y)` points, corresponding to one line of a
/// figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Ordered data points: (x label, y value).
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl ToString, y: f64) {
        self.points.push((x.to_string(), y));
    }

    /// Y values only.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|(_, y)| *y).collect()
    }

    /// Returns the y value for a given x label, if present.
    pub fn y_at(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(px, _)| px == x).map(|(_, y)| *y)
    }
}

/// A rectangular table of results (e.g. Table 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned monospace text.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", rule.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (headers + rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", csv_row(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_row(row));
        }
        out
    }
}

/// Renders a set of series that share x labels as a single table keyed by x.
pub fn series_table(title: &str, x_header: &str, series: &[Series]) -> Table {
    let mut headers: Vec<&str> = vec![x_header];
    for s in series {
        headers.push(&s.name);
    }
    let mut table = Table::new(title, &headers);
    let xs: Vec<String> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| x.clone()).collect())
        .unwrap_or_default();
    for x in &xs {
        let mut row = vec![x.clone()];
        for s in series {
            row.push(
                s.y_at(x)
                    .map(|y| format!("{y:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        table.push_row(row);
    }
    table
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("RME Cold");
        s.push(1, 0.5);
        s.push(2, 0.75);
        assert_eq!(s.ys(), vec![0.5, 0.75]);
        assert_eq!(s.y_at("2"), Some(0.75));
        assert_eq!(s.y_at("3"), None);
    }

    #[test]
    fn table_renders_aligned_text() {
        let mut t = Table::new("Area Report", &["Resources", "Utilization (%)"]);
        t.push_row(vec!["LUT".into(), "2.78".into()]);
        t.push_row(vec!["BRAM".into(), "60.69".into()]);
        let text = t.render_text();
        assert!(text.contains("## Area Report"));
        assert!(text.contains("| LUT "));
        assert!(text.contains("60.69"));
        // Every data line has the same length (alignment).
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn series_table_merges_on_x() {
        let mut a = Series::new("Direct Row-wise");
        a.push("1", 1.0);
        a.push("2", 1.0);
        let mut b = Series::new("RME Cold");
        b.push("1", 0.8);
        b.push("2", 0.7);
        let t = series_table("Figure 7", "Column width", &[a, b]);
        assert_eq!(t.headers.len(), 3);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][2], "0.7000");
    }
}
