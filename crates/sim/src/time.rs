//! Picosecond-resolution simulated time.
//!
//! All latencies in the workspace are expressed as [`SimTime`], a thin
//! wrapper around an unsigned picosecond count. Using integer picoseconds
//! (rather than `f64` nanoseconds) keeps the simulation exactly
//! deterministic and makes saturating arithmetic explicit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A point in simulated time or a duration, measured in picoseconds.
///
/// The same type is used for both instants and durations; the simulation is
/// simple enough that the distinction would only add noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / the empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Constructs a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Constructs a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Constructs a time from a floating point nanosecond value, rounding to
    /// the nearest picosecond. Negative inputs saturate to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((ns * 1_000.0).round() as u64)
        }
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The value in nanoseconds (lossy).
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The value in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales a duration by an integer factor.
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// Returns true if this is the zero time.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        self.scaled(rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_nanos_f64();
        if ns >= 1_000_000.0 {
            write!(f, "{:.3} ms", ns / 1_000_000.0)
        } else if ns >= 1_000.0 {
            write!(f, "{:.3} us", ns / 1_000.0)
        } else {
            write!(f, "{:.3} ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_nanos(5).as_picos(), 5_000);
        assert_eq!(SimTime::from_micros(2).as_picos(), 2_000_000);
        assert_eq!(SimTime::from_picos(7).as_picos(), 7);
        assert_eq!(SimTime::from_nanos(3).as_nanos_f64(), 3.0);
    }

    #[test]
    fn float_construction_rounds_and_saturates() {
        assert_eq!(SimTime::from_nanos_f64(1.5).as_picos(), 1_500);
        assert_eq!(SimTime::from_nanos_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimTime::from_nanos_f64(0.0004).as_picos(), 0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(4);
        assert_eq!((a + b).as_nanos_f64(), 14.0);
        assert_eq!((a - b).as_nanos_f64(), 6.0);
        assert_eq!(a.saturating_sub(b).as_nanos_f64(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!((b * 3).as_nanos_f64(), 12.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_subtraction_panics_on_underflow() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12.000 ns");
        assert_eq!(format!("{}", SimTime::from_micros(3)), "3.000 us");
        assert_eq!(format!("{}", SimTime::from_micros(2_500)), "2.500 ms");
    }
}
