//! Simulated-time tracing: typed events, zero-cost sinks, Perfetto export.
//!
//! Every hardware model in the workspace can carry a [`Tracer`] — a handle
//! that is a no-op until a recording sink is installed. When recording, the
//! models emit typed [`TraceEvent`]s stamped with simulated time: op
//! lifecycle spans, L2 bank bookings, line fills and writebacks, DRAM
//! command activity (ACT/PRE/RD/WR, refresh, tFAW stalls, FR-FCFS
//! reorders, completion-queue drains), RME frame-fetch windows and
//! overload/degrade transitions. `System::take_trace` merges the
//! per-component buffers into one deterministic [`Trace`], which exports as
//! Chrome-trace / Perfetto JSON (one track per core, L2 bank, DRAM bank,
//! RME engine, plus a system track).
//!
//! Design rules, enforced by tests:
//!
//! 1. **Zero cost when off.** [`Tracer::emit`] takes a closure; with no
//!    sink installed the closure is never called, nothing allocates, and
//!    the only cost is one pointer-null branch. The no-op path changes no
//!    counter and no timing — the golden fixtures stay byte-identical.
//! 2. **Observation only.** Emission sites read values the model already
//!    computed; they never book resources or advance clocks.
//! 3. **Determinism extends to observability.** The simulator is
//!    deterministic, component buffers are collected in a fixed order and
//!    merged with a stable sort by timestamp, so identical runs produce
//!    byte-identical trace JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::SimTime;

// ---------------------------------------------------------------------------
// Tracks and events
// ---------------------------------------------------------------------------

/// The timeline a trace event belongs to. Exported as one Perfetto track
/// (`tid`) each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Cross-cutting system events: degrade transitions, completion-queue
    /// drains, DRAM admission stalls.
    System,
    /// One CPU core: op lifecycle, txn lifecycle, line fills, writebacks.
    Core(u32),
    /// One shared-L2 bank: bookings and contention waits.
    L2Bank(u32),
    /// One DRAM bank: command-level activity.
    DramBank(u32),
    /// The RME engine: frame activations and fetch windows.
    Rme,
}

impl Track {
    /// Stable Perfetto thread id for this track. Core tracks occupy
    /// 1..=99, L2 banks 100..=199, DRAM banks 200..=299, the RME engine
    /// 300, the system track 0.
    pub fn tid(self) -> u32 {
        match self {
            Track::System => 0,
            Track::Core(c) => 1 + c,
            Track::L2Bank(b) => 100 + b,
            Track::DramBank(b) => 200 + b,
            Track::Rme => 300,
        }
    }

    /// Human-readable track name for the Perfetto thread-name metadata.
    pub fn name(self) -> String {
        match self {
            Track::System => "system".to_string(),
            Track::Core(c) => format!("core {c}"),
            Track::L2Bank(b) => format!("l2 bank {b}"),
            Track::DramBank(b) => format!("dram bank {b}"),
            Track::Rme => "rme engine".to_string(),
        }
    }
}

/// How a kind of event renders in the Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStyle {
    /// A point event (`ph: "i"`). `dur` is ignored.
    Instant,
    /// A synchronous duration (`ph: "X"`). Spans of sync kinds are
    /// disjoint-or-nested per track (asserted by the invariant tests).
    Sync,
    /// An async begin/end pair (`ph: "b"`/`"e"`) — may overlap freely on
    /// its track (e.g. pipelined DRAM bursts on one bank).
    Async,
}

/// The typed event taxonomy. Payload meaning is per-kind; see
/// [`TraceEventKind::arg_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    // --- op lifecycle (core tracks) ---
    /// An open-loop arrival was presented (arg0 = template, arg1 = attempt).
    OpArrival,
    /// An attempt entered an admission queue (arg0 = template, arg1 =
    /// queue depth after admission).
    OpAdmitted,
    /// An attempt was rejected at a full queue (arg0 = template).
    OpShedQueueFull,
    /// An admitted op was dropped at dequeue past its delay budget
    /// (arg0 = template, arg1 = queueing delay in ps).
    OpShedDeadline,
    /// A client-visible timeout (arg0 = template, arg1 = attempt).
    OpTimeout,
    /// One serviced op, start → completion (arg0 = op ordinal in its
    /// stream, arg1 = rows touched).
    OpSpan,
    // --- transactions (core tracks) ---
    /// A transaction attempt began (arg0 = txn id, arg1 = attempt).
    TxnBegin,
    /// A transaction committed (arg0 = txn id, arg1 = write intents).
    TxnCommit,
    /// A transaction aborted (arg0 = txn id, arg1 = 0 conflict / 1 shed).
    TxnAbort,
    // --- overload (system track) ---
    /// A graceful-degradation transition (arg0 = 1 entering degraded,
    /// 0 restoring). Timestamps match `OverloadStats::transitions` exactly.
    Degrade,
    // --- cache (L2-bank / core tracks) ---
    /// An L2 bank booking (arg0 = core, arg1 = contention wait in ps).
    L2BankBook,
    /// A demand line fill, issue → data (arg0 = line address).
    LineFill,
    /// A dirty line eviction issuing a writeback (arg0 = line address).
    Writeback,
    // --- DRAM (DRAM-bank / system tracks) ---
    /// A row activate (arg0 = row).
    DramActivate,
    /// A precharge closing an open row (arg0 = row closed).
    DramPrecharge,
    /// A read burst, first command → last bus beat (arg0 = address,
    /// arg1 = 1 row hit / 0 miss).
    DramRead,
    /// A write burst (arg0 = address, arg1 = 1 row hit / 0 miss).
    DramWrite,
    /// A refresh window applied to a bank (arg0 = refreshes applied,
    /// arg1 = recovery ps).
    DramRefresh,
    /// An activate stalled by the tFAW window (arg0 = row, arg1 = stall ps).
    TfawStall,
    /// A read overtook buffered writes under FR-FCFS (arg0 = pending
    /// writes at that point).
    FrFcfsReorder,
    /// A transaction-queue admission stall (arg0 = outstanding requests).
    DramQueueStall,
    /// A completion-queue drain delivered events (arg0 = completions).
    CompletionDrain,
    // --- RME (engine track) ---
    /// A frame activation (incremental fetch start; arg0 = frame).
    FrameActivate,
    /// A frame-fetch window, activation → last buffer write (arg0 =
    /// frame, arg1 = lines fetched).
    FrameFetch,
}

impl TraceEventKind {
    /// Stable lower_snake name used in exports and tests.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::OpArrival => "op_arrival",
            TraceEventKind::OpAdmitted => "op_admitted",
            TraceEventKind::OpShedQueueFull => "op_shed_queue_full",
            TraceEventKind::OpShedDeadline => "op_shed_deadline",
            TraceEventKind::OpTimeout => "op_timeout",
            TraceEventKind::OpSpan => "op",
            TraceEventKind::TxnBegin => "txn_begin",
            TraceEventKind::TxnCommit => "txn_commit",
            TraceEventKind::TxnAbort => "txn_abort",
            TraceEventKind::Degrade => "degrade",
            TraceEventKind::L2BankBook => "l2_bank_book",
            TraceEventKind::LineFill => "line_fill",
            TraceEventKind::Writeback => "writeback",
            TraceEventKind::DramActivate => "dram_act",
            TraceEventKind::DramPrecharge => "dram_pre",
            TraceEventKind::DramRead => "dram_rd",
            TraceEventKind::DramWrite => "dram_wr",
            TraceEventKind::DramRefresh => "dram_refresh",
            TraceEventKind::TfawStall => "tfaw_stall",
            TraceEventKind::FrFcfsReorder => "fr_fcfs_reorder",
            TraceEventKind::DramQueueStall => "dram_queue_stall",
            TraceEventKind::CompletionDrain => "completion_drain",
            TraceEventKind::FrameActivate => "frame_activate",
            TraceEventKind::FrameFetch => "frame_fetch",
        }
    }

    /// How this kind renders in the Chrome export. Only kinds whose spans
    /// are provably disjoint-or-nested per track may be [`SpanStyle::Sync`]
    /// (the invariant tests enforce this): line fills overlap each other
    /// (a straddling access issues both lines at once), DRAM bursts
    /// pipeline at tCCD, and an incrementally fetched frame's tail —
    /// booked at frozen anchors during turnover — can outlast the next
    /// frame's activation, so all of those render as async pairs.
    pub fn style(self) -> SpanStyle {
        match self {
            TraceEventKind::OpSpan => SpanStyle::Sync,
            TraceEventKind::DramRead
            | TraceEventKind::DramWrite
            | TraceEventKind::LineFill
            | TraceEventKind::FrameFetch => SpanStyle::Async,
            _ => SpanStyle::Instant,
        }
    }

    /// Names of the two payload arguments (for export `args` objects).
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            TraceEventKind::OpArrival | TraceEventKind::OpTimeout => ("template", "attempt"),
            TraceEventKind::OpAdmitted => ("template", "queue_depth"),
            TraceEventKind::OpShedQueueFull => ("template", "arg1"),
            TraceEventKind::OpShedDeadline => ("template", "queue_delay_ps"),
            TraceEventKind::OpSpan => ("op", "rows"),
            TraceEventKind::TxnBegin => ("txn", "attempt"),
            TraceEventKind::TxnCommit => ("txn", "intents"),
            TraceEventKind::TxnAbort => ("txn", "shed"),
            TraceEventKind::Degrade => ("degraded", "arg1"),
            TraceEventKind::L2BankBook => ("core", "waited_ps"),
            TraceEventKind::LineFill | TraceEventKind::Writeback => ("line", "arg1"),
            TraceEventKind::DramActivate | TraceEventKind::DramPrecharge => ("row", "arg1"),
            TraceEventKind::DramRead | TraceEventKind::DramWrite => ("addr", "row_hit"),
            TraceEventKind::DramRefresh => ("applied", "recovery_ps"),
            TraceEventKind::TfawStall => ("row", "stall_ps"),
            TraceEventKind::FrFcfsReorder => ("pending_writes", "arg1"),
            TraceEventKind::DramQueueStall => ("outstanding", "arg1"),
            TraceEventKind::CompletionDrain => ("completions", "arg1"),
            TraceEventKind::FrameActivate => ("frame", "arg1"),
            TraceEventKind::FrameFetch => ("frame", "lines"),
        }
    }
}

/// One recorded, simulated-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start timestamp (simulated).
    pub at: SimTime,
    /// Duration; [`SimTime::ZERO`] for instants.
    pub dur: SimTime,
    /// The timeline this event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: TraceEventKind,
    /// First payload argument (meaning per kind).
    pub arg0: u64,
    /// Second payload argument (meaning per kind).
    pub arg1: u64,
}

impl TraceEvent {
    /// An instantaneous event.
    pub fn instant(track: Track, kind: TraceEventKind, at: SimTime, arg0: u64, arg1: u64) -> Self {
        TraceEvent {
            at,
            dur: SimTime::ZERO,
            track,
            kind,
            arg0,
            arg1,
        }
    }

    /// A duration event from `start` to `end` (saturating if inverted).
    pub fn span(
        track: Track,
        kind: TraceEventKind,
        start: SimTime,
        end: SimTime,
        arg0: u64,
        arg1: u64,
    ) -> Self {
        TraceEvent {
            at: start,
            dur: end.saturating_sub(start),
            track,
            kind,
            arg0,
            arg1,
        }
    }

    /// End timestamp (`at + dur`).
    pub fn end(&self) -> SimTime {
        self.at + self.dur
    }
}

// ---------------------------------------------------------------------------
// Sinks and the Tracer handle
// ---------------------------------------------------------------------------

/// Where emitted events go. The workspace ships two implementations: the
/// zero-cost [`NoopSink`] (the default — no `Tracer` even holds one; the
/// handle skips the call entirely) and the buffering [`RecordingSink`].
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);
}

/// Discards every event. The reference no-op implementation; `Tracer`
/// without a sink behaves identically without the virtual call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in emission order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    /// Recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for RecordingSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// The per-component tracing handle.
///
/// Default-constructed it records nothing and costs one branch per
/// emission site (the event-building closure is never run). Components
/// store one `Tracer` each; `System` enables recording on all of them and
/// collects the buffers afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tracer {
    sink: Option<Box<RecordingSink>>,
}

impl Tracer {
    /// A disabled (no-op) tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Whether a recording sink is installed.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event. `build` runs only when recording — with the
    /// default no-op sink this is a single branch, no allocation, no
    /// borrow of anything but the tracer itself.
    #[inline(always)]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(build());
        }
    }

    /// Installs (or removes) the recording sink. Enabling clears any
    /// previously recorded events.
    pub fn set_enabled(&mut self, on: bool) {
        self.sink = if on {
            Some(Box::default())
        } else {
            None
        };
    }

    /// Takes the recorded events, leaving recording state as-is.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        match self.sink.as_deref_mut() {
            Some(sink) => std::mem::take(&mut sink.events),
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// The merged trace and its Chrome/Perfetto export
// ---------------------------------------------------------------------------

/// A merged, time-ordered trace of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by start time (stable: ties keep the fixed
    /// component collection order).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from per-component buffers, concatenated in the
    /// caller's (fixed) order, stably sorted by start time.
    pub fn merge(buffers: Vec<Vec<TraceEvent>>) -> Self {
        let mut events: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
        events.sort_by_key(|e| e.at);
        Trace { events }
    }

    /// Number of events on each track, keyed by track (sorted).
    pub fn events_per_track(&self) -> BTreeMap<Track, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.track).or_insert(0) += 1;
        }
        counts
    }

    /// The end of the last event (ZERO for an empty trace).
    pub fn end(&self) -> SimTime {
        self.events
            .iter()
            .map(TraceEvent::end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders the trace as Chrome-trace JSON (the `traceEvents` object
    /// form), loadable by Perfetto (`ui.perfetto.dev`) and
    /// `chrome://tracing`. One track (`tid`) per core / L2 bank / DRAM
    /// bank / RME engine; timestamps in microseconds. The output is a
    /// pure function of the event list — identical runs give identical
    /// bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"args\":{\"name\":\"relmem-sim\"}}",
        );
        // One thread-name metadata record per populated track, in tid order.
        let mut tracks: Vec<Track> = self.events_per_track().into_keys().collect();
        tracks.sort_by_key(|t| t.tid());
        for track in &tracks {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.tid(),
                track.name()
            );
        }
        for (seq, e) in self.events.iter().enumerate() {
            let (a0, a1) = e.kind.arg_names();
            let args = format!(
                "{{\"{}\":{},\"{}\":{}}}",
                a0, e.arg0, a1, e.arg1
            );
            let name = e.kind.name();
            let tid = e.track.tid();
            match e.kind.style() {
                SpanStyle::Instant => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{},\"s\":\"t\",\"args\":{args}}}",
                        fmt_us(e.at)
                    );
                }
                SpanStyle::Sync => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{},\"dur\":{},\"args\":{args}}}",
                        fmt_us(e.at),
                        fmt_us(e.dur)
                    );
                }
                SpanStyle::Async => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"b\",\"cat\":\"{name}\",\"id\":{seq},\"name\":\"{name}\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{},\"args\":{args}}}",
                        fmt_us(e.at)
                    );
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"e\",\"cat\":\"{name}\",\"id\":{seq},\"name\":\"{name}\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{}}}",
                        fmt_us(e.end())
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Formats picoseconds as a decimal microsecond JSON number with exact
/// (six-digit) picosecond precision — integer math only, so formatting is
/// deterministic across platforms.
fn fmt_us(t: SimTime) -> String {
    let ps = t.as_picos();
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

// ---------------------------------------------------------------------------
// Minimal JSON parsing (schema validation without serde)
// ---------------------------------------------------------------------------

/// A parsed JSON value. The workspace vendors no serde; this minimal
/// recursive-descent parser exists so the trace schema can be validated in
/// tests and smoke checks.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through byte-wise; re-validate at
                // the end via from_utf8 on the source slice boundaries.
                out.push(c as char);
                if c < 0x80 {
                    *pos += 1;
                } else {
                    // Copy the full UTF-8 sequence.
                    out.pop();
                    let len = utf8_len(c);
                    let slice = b
                        .get(*pos..*pos + len)
                        .ok_or_else(|| "truncated UTF-8".to_string())?;
                    out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                    *pos += len;
                }
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace schema validation
// ---------------------------------------------------------------------------

/// Summary of a validated Chrome-trace document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total non-metadata events.
    pub events: usize,
    /// Non-metadata events per `tid`.
    pub events_per_tid: BTreeMap<u64, usize>,
    /// Track names from the thread-name metadata, per `tid`.
    pub track_names: BTreeMap<u64, String>,
}

/// Parses `src` as Chrome-trace JSON and validates the schema every event
/// must satisfy to load in Perfetto: a top-level `traceEvents` array whose
/// members carry `ph`/`name`/`pid`, plus `tid`+`ts` for real events, `dur`
/// for complete (`"X"`) events and `id` for async pairs. Returns per-track
/// event counts for coverage checks.
pub fn validate_chrome_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary::default();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        event
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        if ph == "M" {
            if event.get("name").and_then(Json::as_str) == Some("thread_name") {
                let tid = event
                    .get("tid")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: thread_name without tid"))? as u64;
                let name = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                summary.track_names.insert(tid, name.to_string());
            }
            continue;
        }
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        event
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        match ph {
            "X" => {
                event
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
            }
            "i" => {
                event
                    .get("s")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: i without scope"))?;
            }
            "b" | "e" => {
                event
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: async without id"))?;
            }
            other => return Err(format!("event {i}: unexpected ph '{other}'")),
        }
        summary.events += 1;
        *summary.events_per_tid.entry(tid).or_insert(0) += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: Track, kind: TraceEventKind, at_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(at_ns),
            dur: SimTime::from_nanos(dur_ns),
            track,
            kind,
            arg0: 1,
            arg1: 2,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut tracer = Tracer::new();
        let mut built = false;
        tracer.emit(|| {
            built = true;
            ev(Track::System, TraceEventKind::Degrade, 0, 0)
        });
        assert!(!built, "the closure must not run with no sink installed");
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn recording_tracer_buffers_in_order() {
        let mut tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.emit(|| ev(Track::Core(0), TraceEventKind::OpSpan, 10, 5));
        tracer.emit(|| ev(Track::Core(0), TraceEventKind::OpSpan, 0, 5));
        let events = tracer.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, SimTime::from_nanos(10));
        // take() drains but keeps recording.
        tracer.emit(|| ev(Track::Core(0), TraceEventKind::OpSpan, 20, 1));
        assert_eq!(tracer.take().len(), 1);
    }

    #[test]
    fn merge_is_a_stable_sort_by_start_time() {
        let a = vec![
            ev(Track::Core(0), TraceEventKind::OpSpan, 5, 1),
            ev(Track::Core(0), TraceEventKind::OpSpan, 10, 1),
        ];
        let b = vec![ev(Track::Rme, TraceEventKind::FrameFetch, 5, 1)];
        let trace = Trace::merge(vec![a, b]);
        assert_eq!(trace.events.len(), 3);
        // Tie at t=5 keeps buffer order: core event first.
        assert_eq!(trace.events[0].track, Track::Core(0));
        assert_eq!(trace.events[1].track, Track::Rme);
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(trace.end(), SimTime::from_nanos(11));
    }

    #[test]
    fn chrome_export_validates_and_counts_tracks() {
        let trace = Trace::merge(vec![vec![
            ev(Track::Core(0), TraceEventKind::OpSpan, 0, 10),
            ev(Track::L2Bank(1), TraceEventKind::L2BankBook, 3, 0),
            ev(Track::DramBank(2), TraceEventKind::DramRead, 4, 6),
            ev(Track::Rme, TraceEventKind::FrameFetch, 1, 9),
            ev(Track::System, TraceEventKind::Degrade, 8, 0),
        ]]);
        let json = trace.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("schema-valid trace");
        // The async DRAM and frame-fetch spans each contribute a begin +
        // an end record.
        assert_eq!(summary.events, 7);
        assert_eq!(summary.events_per_tid.len(), 5);
        assert_eq!(summary.track_names[&1], "core 0");
        assert_eq!(summary.track_names[&101], "l2 bank 1");
        assert_eq!(summary.track_names[&202], "dram bank 2");
        assert_eq!(summary.track_names[&300], "rme engine");
        assert_eq!(summary.track_names[&0], "system");
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            Trace::merge(vec![vec![
                ev(Track::Core(3), TraceEventKind::LineFill, 7, 2),
                ev(Track::DramBank(0), TraceEventKind::DramWrite, 7, 4),
            ]])
        };
        assert_eq!(mk().to_chrome_json(), mk().to_chrome_json());
    }

    #[test]
    fn timestamps_format_with_picosecond_precision() {
        assert_eq!(fmt_us(SimTime::from_picos(1)), "0.000001");
        assert_eq!(fmt_us(SimTime::from_picos(1_234_567)), "1.234567");
        assert_eq!(fmt_us(SimTime::from_micros(42)), "42.000000");
    }

    #[test]
    fn json_parser_round_trips_basic_documents() {
        let doc = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#)
            .expect("valid JSON");
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert!(Json::parse("{\"unterminated\": ").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} garbage").is_err());
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").is_err(), "no traceEvents");
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"X","name":"n","pid":0,"tid":1,"ts":0}]}"#)
                .is_err(),
            "X without dur"
        );
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"name":"n","pid":0}]}"#).is_err(),
            "missing ph"
        );
    }
}
