//! Simulation substrate for the Relational Memory reproduction.
//!
//! This crate provides the building blocks shared by every hardware model in
//! the workspace:
//!
//! * a picosecond-resolution [`SimTime`] timebase and [`ClockDomain`]s
//!   (CPU, programmable logic, DRAM),
//! * occupancy-tracked [`resource::Resource`]s used to model busses, ports,
//!   DRAM banks and fetch units,
//! * a [`config::PlatformConfig`] describing a ZCU102-like PS–PL platform,
//! * lightweight statistics helpers ([`stats`]),
//! * plain-text / CSV rendering of experiment output ([`report`]).
//!
//! Everything is deterministic: the simulator never consults wall-clock time
//! or OS randomness, so identical inputs always produce identical results.

pub mod clock;
pub mod config;
pub mod report;
pub mod resource;
pub mod stats;
pub mod time;

pub use clock::ClockDomain;
pub use config::{
    CacheLevelConfig, CdcConfig, CpuConfig, DramConfig, MemoryModel, PlatformConfig, RmeHwConfig,
};
pub use resource::{MultiResource, PriorityResource, Resource};
pub use stats::{Counter, DegradeTransition, LatencyProfile, MeanStd, OverloadStats, TxnStats};
pub use time::SimTime;
