//! Simulation substrate for the Relational Memory reproduction.
//!
//! This crate provides the building blocks shared by every hardware model in
//! the workspace:
//!
//! * a picosecond-resolution [`SimTime`] timebase and [`ClockDomain`]s
//!   (CPU, programmable logic, DRAM),
//! * occupancy-tracked [`resource::Resource`]s used to model busses, ports,
//!   DRAM banks and fetch units,
//! * a [`config::PlatformConfig`] describing a ZCU102-like PS–PL platform,
//! * lightweight statistics helpers ([`stats`]),
//! * plain-text / CSV rendering of experiment output ([`report`]),
//! * simulated-time tracing with Perfetto/Chrome-trace export ([`trace`])
//!   and trace-derived time-bucketed metrics ([`timeseries`]).
//!
//! Everything is deterministic: the simulator never consults wall-clock time
//! or OS randomness, so identical inputs always produce identical results —
//! including recorded traces.

pub mod clock;
pub mod config;
pub mod report;
pub mod resource;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod trace;

pub use clock::ClockDomain;
pub use config::{
    CacheLevelConfig, CdcConfig, CpuConfig, DramConfig, MemoryModel, PlatformConfig, RmeHwConfig,
};
pub use resource::{MultiResource, PriorityResource, Resource};
pub use stats::{Counter, DegradeTransition, LatencyProfile, MeanStd, OverloadStats, TxnStats};
pub use time::SimTime;
pub use timeseries::{default_bucket, series_from_trace, Metric, MetricsRegistry, MetricsSection};
pub use trace::{
    validate_chrome_trace, NoopSink, RecordingSink, Trace, TraceEvent, TraceEventKind, TraceSink,
    TraceSummary, Tracer, Track,
};
