//! Time-bucketed metrics derived from traces, plus the metrics registry
//! shared with the benchmark reports.
//!
//! Two consumers share this module:
//!
//! * The figure harnesses turn a recorded [`Trace`] into per-bucket
//!   time-series ([`series_from_trace`]) — queue depth, in-flight ops,
//!   abort rate, DRAM bank occupancy — rendered through the existing
//!   [`crate::report::Series`]/[`crate::report::Table`] machinery
//!   (`--timeseries`).
//! * The benchmark reports render named metric groups
//!   ([`MetricsRegistry`]) as JSON — the `breakdown` section of
//!   `BENCH_scan_throughput.json` goes through the same serializer, so the
//!   bench JSON and the trace layer share one schema.

use std::collections::BTreeSet;

use crate::report::Series;
use crate::time::SimTime;
use crate::trace::{SpanStyle, Trace, TraceEventKind, Track};

// ---------------------------------------------------------------------------
// Metrics registry (shared bench/trace schema)
// ---------------------------------------------------------------------------

/// One named metric. `value` is preformatted by the producer (so the
/// registry never re-rounds a number a report already committed to);
/// `entries` distinguishes accumulated metrics (`{ "<unit>": v, "entries":
/// n }`) from flat scalars (`"name": v`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// JSON key.
    pub name: String,
    /// Unit label used as the value key of accumulated metrics.
    pub unit: &'static str,
    /// Preformatted numeric value.
    pub value: String,
    /// Number of accumulation events, if this metric is an accumulator.
    pub entries: Option<u64>,
}

impl Metric {
    /// A flat scalar metric (`"name": value`).
    pub fn scalar(name: impl Into<String>, unit: &'static str, value: String) -> Self {
        Metric {
            name: name.into(),
            unit,
            value,
            entries: None,
        }
    }

    /// An accumulated metric (`"name": { "<unit>": value, "entries": n }`).
    pub fn accumulated(
        name: impl Into<String>,
        unit: &'static str,
        value: String,
        entries: u64,
    ) -> Self {
        Metric {
            name: name.into(),
            unit,
            value,
            entries: Some(entries),
        }
    }
}

/// A named group of metrics, rendered as one JSON object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSection {
    /// Section name (the JSON key when nested in a registry).
    pub name: String,
    /// Metrics in declaration order.
    pub metrics: Vec<Metric>,
}

impl MetricsSection {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>) -> Self {
        MetricsSection {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// Renders the section as a JSON object. `item_indent` spaces prefix
    /// each member line; `close_indent` spaces prefix the closing brace —
    /// matching however deep the object sits in the surrounding report.
    pub fn to_json_object(&self, item_indent: usize, close_indent: usize) -> String {
        let pad = " ".repeat(item_indent);
        let members: Vec<String> = self
            .metrics
            .iter()
            .map(|m| match m.entries {
                Some(n) => format!(
                    "{pad}\"{}\": {{ \"{}\": {}, \"entries\": {} }}",
                    m.name, m.unit, m.value, n
                ),
                None => format!("{pad}\"{}\": {}", m.name, m.value),
            })
            .collect();
        format!("{{\n{}\n{}}}", members.join(",\n"), " ".repeat(close_indent))
    }
}

/// An ordered collection of [`MetricsSection`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Sections in declaration order.
    pub sections: Vec<MetricsSection>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Appends a section and returns a handle to it.
    pub fn section(&mut self, name: impl Into<String>) -> &mut MetricsSection {
        self.sections.push(MetricsSection::new(name));
        self.sections.last_mut().expect("just pushed")
    }

    /// Renders the whole registry as one JSON object of sections.
    pub fn to_json(&self) -> String {
        let members: Vec<String> = self
            .sections
            .iter()
            .map(|s| format!("  \"{}\": {}", s.name, s.to_json_object(4, 2)))
            .collect();
        format!("{{\n{}\n}}\n", members.join(",\n"))
    }
}

// ---------------------------------------------------------------------------
// Time-bucketed series from a trace
// ---------------------------------------------------------------------------

/// Picks a bucket width giving roughly `target_buckets` buckets over the
/// trace, at least 1 ns.
pub fn default_bucket(trace: &Trace, target_buckets: u64) -> SimTime {
    let end = trace.end().as_picos().max(1);
    SimTime::from_picos((end / target_buckets.max(1)).max(1_000))
}

/// Derives per-bucket time-series from a recorded trace:
///
/// * `queue_depth_max` — deepest admission queue observed in the bucket
///   (from `OpAdmitted` payloads),
/// * `inflight_ops` — ops whose service span overlaps the bucket,
/// * `completed_ops` — op spans ending in the bucket,
/// * `shed_ops` — queue-full plus deadline sheds in the bucket,
/// * `abort_rate` — txn aborts over txn outcomes in the bucket (0 when no
///   txn finished),
/// * `bank_occupancy` — fraction of bucket × active-DRAM-banks covered by
///   read/write bursts.
///
/// X labels are the bucket start times in microseconds. Series whose
/// source events never occur are omitted, so figure tables stay compact.
pub fn series_from_trace(trace: &Trace, bucket: SimTime) -> Vec<Series> {
    let bucket_ps = bucket.as_picos().max(1);
    let end_ps = trace.end().as_picos();
    let n = (end_ps / bucket_ps + 1) as usize;
    let mut queue_depth = vec![0u64; n];
    let mut inflight = vec![0u64; n];
    let mut completed = vec![0u64; n];
    let mut shed = vec![0u64; n];
    let mut aborts = vec![0u64; n];
    let mut txn_outcomes = vec![0u64; n];
    let mut busy_ps = vec![0u64; n];
    let mut saw_admit = false;
    let mut saw_span = false;
    let mut saw_shed = false;
    let mut saw_txn = false;
    let mut dram_banks: BTreeSet<u32> = BTreeSet::new();

    for e in &trace.events {
        let b = (e.at.as_picos() / bucket_ps) as usize;
        match e.kind {
            TraceEventKind::OpAdmitted => {
                saw_admit = true;
                queue_depth[b] = queue_depth[b].max(e.arg1);
            }
            TraceEventKind::OpSpan => {
                saw_span = true;
                let last = (e.end().as_picos() / bucket_ps) as usize;
                for slot in &mut inflight[b..=last.min(n - 1)] {
                    *slot += 1;
                }
                completed[last.min(n - 1)] += 1;
            }
            TraceEventKind::OpShedQueueFull | TraceEventKind::OpShedDeadline => {
                saw_shed = true;
                shed[b] += 1;
            }
            TraceEventKind::TxnCommit => {
                saw_txn = true;
                txn_outcomes[b] += 1;
            }
            TraceEventKind::TxnAbort => {
                saw_txn = true;
                txn_outcomes[b] += 1;
                aborts[b] += 1;
            }
            TraceEventKind::DramRead | TraceEventKind::DramWrite => {
                debug_assert_eq!(e.kind.style(), SpanStyle::Async);
                if let Track::DramBank(bank) = e.track {
                    dram_banks.insert(bank);
                }
                // Spread the burst's busy time across the buckets it covers.
                let (start, end) = (e.at.as_picos(), e.end().as_picos());
                let last = (end / bucket_ps) as usize;
                for (i, slot) in busy_ps
                    .iter_mut()
                    .enumerate()
                    .take(last.min(n - 1) + 1)
                    .skip(b)
                {
                    let lo = (i as u64) * bucket_ps;
                    let hi = lo + bucket_ps;
                    *slot += end.min(hi).saturating_sub(start.max(lo));
                }
            }
            _ => {}
        }
    }

    let label = |i: usize| {
        let ps = (i as u64) * bucket_ps;
        format!("{}.{:03}", ps / 1_000_000, ps % 1_000_000 / 1_000)
    };
    let make = |name: &str, ys: &dyn Fn(usize) -> f64| {
        let mut s = Series::new(name);
        for i in 0..n {
            s.push(label(i), ys(i));
        }
        s
    };

    let mut out = Vec::new();
    if saw_admit {
        out.push(make("queue_depth_max", &|i| queue_depth[i] as f64));
    }
    if saw_span {
        out.push(make("inflight_ops", &|i| inflight[i] as f64));
        out.push(make("completed_ops", &|i| completed[i] as f64));
    }
    if saw_shed {
        out.push(make("shed_ops", &|i| shed[i] as f64));
    }
    if saw_txn {
        out.push(make("abort_rate", &|i| {
            if txn_outcomes[i] == 0 {
                0.0
            } else {
                aborts[i] as f64 / txn_outcomes[i] as f64
            }
        }));
    }
    if !dram_banks.is_empty() {
        let denom = (bucket_ps * dram_banks.len() as u64) as f64;
        out.push(make("bank_occupancy", &|i| {
            (busy_ps[i] as f64 / denom).min(1.0)
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn registry_renders_accumulated_and_flat_metrics() {
        let mut section = MetricsSection::new("breakdown");
        section.push(Metric::accumulated("l2_walk", "seconds", "0.123456".into(), 7));
        section.push(Metric::scalar("other_seconds", "seconds", "0.000001".into()));
        let json = section.to_json_object(4, 2);
        assert_eq!(
            json,
            "{\n    \"l2_walk\": { \"seconds\": 0.123456, \"entries\": 7 },\n    \
             \"other_seconds\": 0.000001\n  }"
        );
        let mut reg = MetricsRegistry::new();
        reg.section("breakdown").push(Metric::scalar("x", "", "1".into()));
        let doc = crate::trace::Json::parse(&reg.to_json()).expect("registry JSON parses");
        assert!(doc.get("breakdown").is_some());
    }

    #[test]
    fn series_bucket_queue_depth_and_occupancy() {
        let us = SimTime::from_micros;
        let trace = Trace::merge(vec![vec![
            TraceEvent::instant(Track::Core(0), TraceEventKind::OpAdmitted, us(1), 0, 3),
            TraceEvent::instant(Track::Core(0), TraceEventKind::OpAdmitted, us(12), 0, 5),
            TraceEvent::span(Track::Core(0), TraceEventKind::OpSpan, us(1), us(15), 0, 8),
            TraceEvent::span(Track::DramBank(0), TraceEventKind::DramRead, us(0), us(5), 0, 1),
            TraceEvent::instant(Track::Core(0), TraceEventKind::TxnAbort, us(2), 1, 0),
            TraceEvent::instant(Track::Core(0), TraceEventKind::TxnCommit, us(3), 2, 1),
        ]]);
        let series = series_from_trace(&trace, us(10));
        let by_name = |n: &str| series.iter().find(|s| s.name == n).expect(n);
        assert_eq!(by_name("queue_depth_max").ys(), vec![3.0, 5.0]);
        assert_eq!(by_name("inflight_ops").ys(), vec![1.0, 1.0]);
        assert_eq!(by_name("completed_ops").ys(), vec![0.0, 1.0]);
        // 5 µs of burst in a 10 µs bucket on one bank → 0.5 occupancy.
        assert_eq!(by_name("bank_occupancy").ys(), vec![0.5, 0.0]);
        // One abort + one commit in bucket 0.
        assert_eq!(by_name("abort_rate").ys(), vec![0.5, 0.0]);
        // No sheds → no series.
        assert!(series.iter().all(|s| s.name != "shed_ops"));
        // X labels are µs with ms precision.
        assert_eq!(by_name("queue_depth_max").points[1].0, "10.000");
    }

    #[test]
    fn default_bucket_is_positive() {
        assert!(default_bucket(&Trace::default(), 40).as_picos() >= 1_000);
    }
}
