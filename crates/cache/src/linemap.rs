//! A flat open-addressed map from cache-line addresses to arrival times.
//!
//! Replaces the `HashMap<u64, SimTime>` that tracked in-flight prefetch
//! fills in the hot path of [`CacheHierarchy`](crate::CacheHierarchy). The
//! table is a power-of-two slot array probed linearly with a
//! multiply-shift hash — no SipHash, no per-entry allocation, and removal
//! uses backward-shift deletion so there are no tombstones to skip over.
//! Because the hierarchy now removes entries when their line leaves the L2
//! (see `hierarchy.rs`), occupancy is bounded by L2 residency; the map
//! still grows by doubling if a configuration ever exceeds that.

use relmem_sim::SimTime;

/// Sentinel for a free slot. Line addresses are line-aligned, so
/// `u64::MAX` never collides with a real key.
const FREE: u64 = u64::MAX;

/// Minimum table size (slots); power of two.
const MIN_CAPACITY: usize = 1024;

/// Open-addressed `line address → SimTime` map with linear probing.
#[derive(Debug, Clone)]
pub(crate) struct LineMap {
    keys: Vec<u64>,
    values: Vec<SimTime>,
    len: usize,
    mask: usize,
}

impl LineMap {
    pub(crate) fn new() -> Self {
        LineMap {
            keys: vec![FREE; MIN_CAPACITY],
            values: vec![SimTime::ZERO; MIN_CAPACITY],
            len: 0,
            mask: MIN_CAPACITY - 1,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Fibonacci hashing on the line number; lines differ in the low
        // bits once the 6-bit offset is dropped.
        let h = (key >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn clear(&mut self) {
        self.keys.fill(FREE);
        self.len = 0;
    }

    /// Inserts or overwrites.
    pub(crate) fn insert(&mut self, key: u64, value: SimTime) {
        debug_assert_ne!(key, FREE);
        let mut slot = self.home(key);
        loop {
            match self.keys[slot] {
                FREE => break,
                k if k == key => {
                    self.values[slot] = value;
                    return;
                }
                _ => slot = (slot + 1) & self.mask,
            }
        }
        // A new entry: keep the load factor below 7/8 so probe chains stay
        // short (growing only here means overwrites never trigger a rehash).
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
            slot = self.home(key);
            while self.keys[slot] != FREE {
                slot = (slot + 1) & self.mask;
            }
        }
        self.keys[slot] = key;
        self.values[slot] = value;
        self.len += 1;
    }

    /// Removes `key`, returning its value if present.
    pub(crate) fn remove(&mut self, key: u64) -> Option<SimTime> {
        let mut slot = self.home(key);
        loop {
            match self.keys[slot] {
                FREE => return None,
                k if k == key => break,
                _ => slot = (slot + 1) & self.mask,
            }
        }
        let value = self.values[slot];
        self.len -= 1;
        // Backward-shift deletion: pull displaced entries over the hole so
        // every surviving entry stays reachable from its home slot.
        let mut hole = slot;
        let mut probe = (slot + 1) & self.mask;
        while self.keys[probe] != FREE {
            let home = self.home(self.keys[probe]);
            // `probe` may move into `hole` iff its home lies outside the
            // (cyclic) interval (hole, probe].
            let displaced = (probe.wrapping_sub(home)) & self.mask;
            let distance = (probe.wrapping_sub(hole)) & self.mask;
            if displaced >= distance {
                self.keys[hole] = self.keys[probe];
                self.values[hole] = self.values[probe];
                self.keys[probe] = FREE;
                hole = probe;
            }
            probe = (probe + 1) & self.mask;
        }
        self.keys[hole] = FREE;
        Some(value)
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![FREE; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![SimTime::ZERO; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k != FREE {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn insert_overwrite_remove() {
        let mut m = LineMap::new();
        m.insert(64, t(1));
        m.insert(128, t(2));
        m.insert(64, t(3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(64), Some(t(3)));
        assert_eq!(m.remove(64), None);
        assert_eq!(m.remove(4096), None);
        assert_eq!(m.remove(128), Some(t(2)));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = LineMap::new();
        for i in 0..10_000u64 {
            m.insert(i * 64, t(i));
        }
        assert_eq!(m.len(), 10_000);
        for i in (0..10_000u64).rev() {
            assert_eq!(m.remove(i * 64), Some(t(i)));
        }
    }

    proptest! {
        /// Interleaved inserts/removes agree with std's HashMap, including
        /// under heavy same-slot collision pressure (keys spanning a small
        /// line range collide after the multiply-shift).
        #[test]
        fn matches_hashmap_reference(
            ops in proptest::collection::vec((0u64..512, any::<bool>(), 0u64..1_000), 1..2_000),
        ) {
            let mut map = LineMap::new();
            let mut reference: HashMap<u64, SimTime> = HashMap::new();
            for (line, is_insert, val) in ops {
                let key = line * 64;
                if is_insert {
                    map.insert(key, t(val));
                    reference.insert(key, t(val));
                } else {
                    prop_assert_eq!(map.remove(key), reference.remove(&key));
                }
                prop_assert_eq!(map.len(), reference.len());
            }
            // Drain: every surviving key must be found with its value.
            for (k, v) in reference {
                prop_assert_eq!(map.remove(k), Some(v));
            }
            prop_assert_eq!(map.len(), 0);
        }
    }
}
