//! Sequential stream prefetcher.
//!
//! The Cortex-A53's L1 prefetcher recognises sequential access streams and
//! runs ahead of them; the paper observes that it tracks *up to four*
//! concurrent streams, which is why direct columnar access stops scaling at
//! a projectivity of four (Figure 9). This module reproduces that behaviour:
//! streams are detected from consecutive line-granular misses, at most
//! `max_streams` streams are tracked (LRU replacement), and an established
//! stream prefetches `degree` lines ahead of the demand pointer.

use std::collections::VecDeque;

/// Outcome of training the prefetcher with one demand access.
///
/// Prefetch targets are always a contiguous run of lines, so the decision
/// stores the run as `(first_line_number, count)` instead of materialising
/// a `Vec<u64>` — training happens on every L1 miss, and the allocation was
/// one of the simulator's hottest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchDecision {
    /// First line *number* (address / line size) to prefetch.
    first_line: u64,
    /// Number of consecutive lines to prefetch.
    count: u64,
    /// Line size, to turn line numbers back into addresses.
    line_bytes: u64,
    /// Whether the access continued an established stream.
    pub stream_hit: bool,
}

impl PrefetchDecision {
    fn run(first_line: u64, count: u64, line_bytes: u64, stream_hit: bool) -> Self {
        PrefetchDecision {
            first_line,
            count,
            line_bytes,
            stream_hit,
        }
    }

    /// Number of lines to prefetch.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether there is nothing to prefetch.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The line *addresses* to prefetch, in ascending order.
    pub fn lines(self) -> impl Iterator<Item = u64> {
        (self.first_line..self.first_line + self.count).map(move |l| l * self.line_bytes)
    }
}

#[derive(Debug, Clone)]
struct Stream {
    /// The last line demanded by the program on this stream.
    last_demand: u64,
    /// The furthest line already requested by the prefetcher.
    last_prefetched: u64,
    /// LRU tick of the last touch.
    touched: u64,
}

/// A next-line stream prefetcher with a bounded number of stream trackers.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    line_bytes: u64,
    line_shift: u32,
    max_streams: usize,
    degree: usize,
    streams: Vec<Stream>,
    /// Recently missed lines used to detect new streams.
    recent: VecDeque<u64>,
    tick: u64,
    issued: u64,
    stream_hits: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher.
    ///
    /// * `line_bytes` — cache line size.
    /// * `max_streams` — number of concurrent streams tracked (4 on the A53).
    /// * `degree` — how many lines ahead of the demand pointer to run.
    pub fn new(line_bytes: usize, max_streams: usize, degree: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        StreamPrefetcher {
            line_bytes: line_bytes as u64,
            line_shift: line_bytes.trailing_zeros(),
            max_streams,
            degree,
            streams: Vec::new(),
            recent: VecDeque::with_capacity(16),
            tick: 0,
            issued: 0,
            stream_hits: 0,
        }
    }

    /// Number of prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of demand accesses that continued an established stream.
    pub fn stream_hits(&self) -> u64 {
        self.stream_hits
    }

    /// Number of streams currently tracked.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Forgets all streams and history (e.g. between queries).
    pub fn reset(&mut self) {
        self.streams.clear();
        self.recent.clear();
    }

    /// Trains the prefetcher with a demand access to `addr` and returns the
    /// lines to prefetch. `max_streams == 0` disables prefetching entirely.
    ///
    /// Inlined aggressively: training runs on every L1 miss, and during a
    /// sequential scan every call takes the stream-continuation branch
    /// below — a handful of compares over at most `max_streams` trackers.
    /// The detection/allocation machinery only runs when no stream matches
    /// and lives in the outlined `train_no_stream`.
    #[inline(always)]
    pub fn train(&mut self, addr: u64) -> PrefetchDecision {
        if self.max_streams == 0 || self.degree == 0 {
            return PrefetchDecision::default();
        }
        self.tick += 1;
        let line = addr >> self.line_shift;

        // Continuation of an existing stream? Allow the demand pointer to be
        // anywhere between the stream head and its prefetch horizon.
        if let Some(idx) = self.streams.iter().position(|s| {
            line > s.last_demand && line <= s.last_prefetched + 1
        }) {
            let degree = self.degree as u64;
            let stream = &mut self.streams[idx];
            stream.last_demand = line;
            stream.touched = self.tick;
            let target = line + degree;
            let from = stream.last_prefetched + 1;
            let mut count = 0;
            if target >= from {
                count = target - from + 1;
                stream.last_prefetched = target;
            }
            self.issued += count;
            self.stream_hits += 1;
            return PrefetchDecision::run(from, count, self.line_bytes, true);
        }
        self.train_no_stream(line)
    }

    /// The cold half of [`train`](Self::train): no tracked stream matched.
    fn train_no_stream(&mut self, line: u64) -> PrefetchDecision {
        // New stream detection: this line follows a recently missed line.
        let predecessor = line.checked_sub(1);
        let detected = predecessor.is_some_and(|p| self.recent.contains(&p));
        self.remember(line);
        if !detected {
            return PrefetchDecision::default();
        }

        // Allocate (possibly evicting the LRU stream).
        if self.streams.len() == self.max_streams {
            if let Some(lru) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.touched)
                .map(|(i, _)| i)
            {
                self.streams.swap_remove(lru);
            }
        }
        let degree = self.degree as u64;
        let last_prefetched = line + degree;
        self.issued += degree;
        self.streams.push(Stream {
            last_demand: line,
            last_prefetched,
            touched: self.tick,
        });
        PrefetchDecision::run(line + 1, degree, self.line_bytes, false)
    }

    fn remember(&mut self, line: u64) {
        if self.recent.len() == 16 {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: u64 = 64;

    fn feed_sequential(pf: &mut StreamPrefetcher, start_line: u64, n: u64) -> u64 {
        let mut prefetched = 0;
        for i in 0..n {
            let d = pf.train((start_line + i) * LINE);
            prefetched += d.len() as u64;
        }
        prefetched
    }

    #[test]
    fn sequential_stream_is_detected_and_prefetched() {
        let mut pf = StreamPrefetcher::new(64, 4, 4);
        // First access: nothing known yet.
        assert!(pf.train(0).is_empty());
        // Second sequential access allocates a stream and prefetches ahead.
        let d = pf.train(64);
        assert_eq!(d.lines().collect::<Vec<_>>(), vec![128, 192, 256, 320]);
        // Third access continues the stream one line further.
        let d = pf.train(128);
        assert!(d.stream_hit);
        assert_eq!(d.lines().collect::<Vec<_>>(), vec![384]);
        assert_eq!(pf.active_streams(), 1);
    }

    #[test]
    fn random_accesses_do_not_prefetch() {
        let mut pf = StreamPrefetcher::new(64, 4, 4);
        for addr in [0u64, 1024, 8192, 640, 70_000] {
            assert!(pf.train(addr).is_empty());
        }
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn at_most_max_streams_are_tracked() {
        let mut pf = StreamPrefetcher::new(64, 4, 2);
        // Establish 6 interleaved streams far apart; only 4 survive.
        for s in 0..6u64 {
            let base = s * 1_000; // line number base
            feed_sequential(&mut pf, base, 3);
        }
        assert_eq!(pf.active_streams(), 4);
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut pf = StreamPrefetcher::new(64, 0, 8);
        assert_eq!(feed_sequential(&mut pf, 0, 50), 0);
        let mut pf2 = StreamPrefetcher::new(64, 4, 0);
        assert_eq!(feed_sequential(&mut pf2, 0, 50), 0);
    }

    #[test]
    fn established_stream_keeps_pace_with_demand() {
        let mut pf = StreamPrefetcher::new(64, 4, 8);
        feed_sequential(&mut pf, 0, 2);
        // From now on every demand access should trigger exactly one new
        // prefetch (steady state).
        for i in 2..20u64 {
            let d = pf.train(i * LINE);
            assert!(d.stream_hit, "access {i} should continue the stream");
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn reset_forgets_streams() {
        let mut pf = StreamPrefetcher::new(64, 4, 4);
        feed_sequential(&mut pf, 0, 5);
        assert!(pf.active_streams() > 0);
        pf.reset();
        assert_eq!(pf.active_streams(), 0);
        // After reset the next access is treated as cold again.
        assert!(pf.train(10 * LINE).is_empty());
    }
}
