//! Set-associative cache hierarchy model (L1D + shared L2) with a stream
//! prefetcher and a pluggable memory backend.
//!
//! The paper's performance story is largely a cache story: direct row-wise
//! accesses pollute the caches with unwanted fields, direct columnar
//! accesses create one sequential stream per projected column (of which the
//! A53's prefetcher can track only four), and the RME feeds the caches a
//! dense buffer that contains nothing but useful bytes. This crate models
//! exactly those effects:
//!
//! * [`Cache`] — a tag-only set-associative cache with LRU replacement and
//!   request/hit/miss counters (Figure 8 is read straight off these).
//! * [`StreamPrefetcher`] — detects sequential line streams and issues
//!   prefetches for a configurable number of concurrent streams.
//! * [`CacheHierarchy`] — ties L1, L2 and the prefetcher together over a
//!   [`MemoryBackend`], which is either the DRAM controller (normal route)
//!   or the Relational Memory Engine (ephemeral route).

pub mod cache;
pub mod hierarchy;
mod linemap;
pub mod prefetch;
pub mod stats;

pub use cache::Cache;
pub use hierarchy::{AccessOutcome, CacheHierarchy, HitLevel, MemoryBackend};
pub use prefetch::StreamPrefetcher;
pub use stats::{CacheLevelStats, HierarchyStats};
