//! Set-associative cache hierarchy model (per-core L1Ds + a shared, banked
//! L2) with a stream prefetcher and a pluggable memory backend.
//!
//! The paper's performance story is largely a cache story: direct row-wise
//! accesses pollute the caches with unwanted fields, direct columnar
//! accesses create one sequential stream per projected column (of which the
//! A53's prefetcher can track only four), and the RME feeds the caches a
//! dense buffer that contains nothing but useful bytes. This crate models
//! exactly those effects:
//!
//! * [`Cache`] — a tag-only set-associative cache with LRU replacement and
//!   request/hit/miss counters (Figure 8 is read straight off these).
//! * [`StreamPrefetcher`] — detects sequential line streams and issues
//!   prefetches for a configurable number of concurrent streams.
//! * [`CoreFrontend`] — one core's private side: L1, prefetcher,
//!   miss-status registers and per-core counters.
//! * [`SharedL2`] — the L2 all cores share: tag store, pending fills and a
//!   banked occupancy model that makes concurrent lookups *contend* (only
//!   engaged for multi-core clusters; a single core bypasses it and stays
//!   bit-identical to the original single-hierarchy model).
//! * [`CacheHierarchy`] — one frontend packaged with its own `SharedL2`,
//!   the single-core composition, over a [`MemoryBackend`] — either the
//!   DRAM controller (normal route) or the Relational Memory Engine
//!   (ephemeral route).
//!
//! # One access, end to end
//!
//! ```
//! use relmem_cache::{CacheHierarchy, FixedLatencyBackend, HitLevel};
//! use relmem_sim::{PlatformConfig, SimTime};
//!
//! let mut caches = CacheHierarchy::new(&PlatformConfig::zcu102());
//! let mut memory = FixedLatencyBackend::new(SimTime::from_nanos(100));
//!
//! // Cold: the line is fetched from the backend.
//! let first = caches.access(0x1000, 8, SimTime::ZERO, &mut memory);
//! assert_eq!(first.level, HitLevel::Memory);
//! // Warm: the next field of the same 64-byte line hits in L1.
//! let second = caches.access(0x1008, 8, first.completion, &mut memory);
//! assert_eq!(second.level, HitLevel::L1);
//! assert_eq!(caches.stats().l1.hits, 1);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod profile;
pub mod shared_l2;
pub mod stats;

pub use cache::Cache;
pub use hierarchy::{
    AccessOutcome, CacheHierarchy, CoreFrontend, FixedLatencyBackend, HitLevel, MemoryBackend,
};
pub use prefetch::StreamPrefetcher;
pub use shared_l2::{CoreL2Share, SharedL2, SharedL2Stats};
pub use stats::{CacheLevelStats, HierarchyStats};
