//! Cache statistics, the raw material of the paper's Figure 8.
//!
//! Counters are kept *per core* in each
//! [`CoreFrontend`](crate::CoreFrontend); cluster-wide numbers are obtained
//! with [`HierarchyStats::merge`], which is exactly what `relmem-core`'s
//! `System` reports for a multi-core measurement.

use relmem_sim::SimTime;

/// Counters for a single cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Lookups presented to this level (demand + prefetch).
    pub requests: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheLevelStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CacheLevelStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Counters for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache counters.
    pub l1: CacheLevelStats,
    /// L2 counters (demand L1 misses + prefetches).
    pub l2: CacheLevelStats,
    /// Lines requested from the backend (DRAM or RME).
    pub backend_fills: u64,
    /// Prefetch requests issued by the stream prefetcher.
    pub prefetches_issued: u64,
    /// Demand misses that found their line already in flight thanks to the
    /// prefetcher.
    pub prefetch_hits: u64,
    /// L2 lookups (demand + prefetch) from this core that found their bank
    /// busy with another lookup. Always zero when a single core is
    /// simulated — the shared-L2 contention model only engages for
    /// multi-core clusters.
    pub l2_contended_lookups: u64,
    /// Total time this core's L2 lookups spent waiting for a busy bank.
    pub l2_contention_delay: SimTime,
}

impl HierarchyStats {
    /// Merges another hierarchy's counters into this one.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.backend_fills += other.backend_fills;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.l2_contended_lookups += other.l2_contended_lookups;
        self.l2_contention_delay += other.l2_contention_delay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        let s = CacheLevelStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        let s2 = CacheLevelStats {
            requests: 10,
            hits: 6,
            misses: 4,
        };
        assert!((s2.miss_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = HierarchyStats::default();
        a.l1.requests = 5;
        a.backend_fills = 2;
        let mut b = HierarchyStats::default();
        b.l1.requests = 3;
        b.backend_fills = 1;
        b.prefetches_issued = 7;
        a.merge(&b);
        assert_eq!(a.l1.requests, 8);
        assert_eq!(a.backend_fills, 3);
        assert_eq!(a.prefetches_issued, 7);
    }
}
