//! A tag-only set-associative cache with true-LRU replacement.
//!
//! The model tracks which line addresses are resident; data always comes
//! from the functional layer (`relmem_dram::PhysicalMemory` or the RME's
//! reorganization buffer), so the cache only needs tags. This keeps the
//! model fast enough to sweep gigabyte tables while still producing the
//! request/miss counts of Figure 8.
//!
//! # Layout
//!
//! Tags live in one flat, set-major `Vec<u64>` (`tags[set * assoc + way]`)
//! with a parallel packed array of per-way recency stamps (`stamps`). A
//! lookup touches one contiguous `assoc`-sized slice — no per-set `Vec`
//! allocations, no `remove`/`insert` element shifting — which is what lets
//! `System::scan` simulate millions of field accesses per wall-second.
//!
//! Recency is a monotonically increasing stamp written on every touch:
//! "promote to MRU" is a single store instead of re-ranking the set, and
//! the eviction victim is the occupied way with the smallest stamp. Stamps
//! are strictly increasing, so the stamp order *is* the recency order the
//! previous `Vec<Vec<u64>>` representation kept positionally — replacement
//! decisions (and therefore all downstream timing and statistics) are
//! bit-identical, which `flat_tags_match_vec_of_vecs_reference` below
//! asserts against a faithful reimplementation of the old structure.

use relmem_sim::CacheLevelConfig;

use crate::stats::CacheLevelStats;

/// Sentinel marking an unoccupied way. Real line addresses are aligned to
/// the (power-of-two, ≥ 2) line size, so `u64::MAX` can never collide.
const EMPTY: u64 = u64::MAX;

/// A set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheLevelConfig,
    sets: usize,
    assoc: usize,
    /// `log2(line_bytes)` — the line size is asserted to be a power of two.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common case);
    /// lets the set index be a mask instead of a modulo.
    set_mask: Option<u64>,
    /// Flat set-major tag array: `tags[set * assoc + way]`.
    tags: Vec<u64>,
    /// Recency stamps parallel to `tags`; larger is more recent. Only
    /// meaningful for occupied ways.
    stamps: Vec<u64>,
    /// Dirty bits parallel to `tags`: set by [`mark_dirty`](Self::mark_dirty)
    /// (a CPU write touched the line), cleared on install. Dirty state never
    /// influences lookup or replacement — it only reports whether an evicted
    /// line owes the backend a writeback — so tracking it is unobservable to
    /// every caller that never asks.
    dirty: Vec<bool>,
    /// Source of strictly increasing recency stamps.
    tick: u64,
    stats: CacheLevelStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or ways, or a
    /// non-power-of-two line size).
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(cfg.associativity >= 1, "cache must have at least one way");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets,
            assoc: cfg.associativity,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets
                .is_power_of_two()
                .then_some(sets as u64 - 1),
            tags: vec![EMPTY; sets * cfg.associativity],
            stamps: vec![0; sets * cfg.associativity],
            dirty: vec![false; sets * cfg.associativity],
            tick: 0,
            cfg,
            stats: CacheLevelStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    #[inline]
    fn set_base(&self, line_addr: u64) -> usize {
        let line_number = line_addr >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => line_number & mask,
            None => line_number % self.sets as u64,
        };
        set as usize * self.assoc
    }

    /// Index of the way holding `line` in the set starting at `base`.
    /// Branchless full-set scan: no early exit, so the compiler can unroll
    /// and vectorise it (a set is one or two cache lines of tags). The two
    /// associativities real configurations use (4-way L1, 16-way L2) get
    /// fixed-trip-count instantiations of the single shared body, which
    /// LLVM turns into SIMD.
    #[inline]
    fn find_way(&self, base: usize, line: u64) -> Option<usize> {
        // One body for every arm: a literal slice scan.
        macro_rules! scan {
            ($set:expr) => {{
                let mut found = usize::MAX;
                for (way, &tag) in $set.iter().enumerate() {
                    if tag == line {
                        found = way;
                    }
                }
                (found != usize::MAX).then_some(found)
            }};
        }
        let set = &self.tags[base..base + self.assoc];
        match self.assoc {
            16 => scan!(<&[u64; 16]>::try_from(set).expect("16-way set")),
            4 => scan!(<&[u64; 4]>::try_from(set).expect("4-way set")),
            _ => scan!(set),
        }
    }

    /// The eviction candidate of a set: the way with the smallest stamp.
    /// Empty ways keep stamp 0 (below every real stamp, which start at 1),
    /// so a single branchless min over the stamp array prefers empty ways
    /// and otherwise picks the least-recently-used — no tag reads at all.
    #[inline]
    fn victim_way(&self, base: usize) -> usize {
        macro_rules! arg_min {
            ($stamps:expr) => {{
                let mut victim = 0usize;
                let mut best = u64::MAX;
                for (way, &stamp) in $stamps.iter().enumerate() {
                    if stamp < best {
                        best = stamp;
                        victim = way;
                    }
                }
                victim
            }};
        }
        let stamps = &self.stamps[base..base + self.assoc];
        match self.assoc {
            16 => arg_min!(<&[u64; 16]>::try_from(stamps).expect("16-way set")),
            4 => arg_min!(<&[u64; 4]>::try_from(stamps).expect("4-way set")),
            _ => arg_min!(stamps),
        }
    }

    #[inline]
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Residency probe that refreshes the line's recency on a hit but does
    /// not touch the request/hit/miss counters. This is the hierarchy's
    /// hot-path entry point: level counters are kept once, in
    /// [`HierarchyStats`](crate::stats::HierarchyStats).
    #[inline]
    pub fn probe(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        match self.find_way(base, line) {
            Some(way) => {
                self.stamps[base + way] = self.next_tick();
                true
            }
            None => false,
        }
    }

    /// Looks up the line containing `addr`, updating LRU order and counters.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.requests += 1;
        if self.probe(addr) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks residency without updating LRU order or counters.
    pub fn peek(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        self.find_way(self.set_base(line), line).is_some()
    }

    /// One-walk combination of [`probe`](Self::probe) and
    /// [`fill`](Self::fill): refreshes recency and reports `None` if the
    /// line is resident, otherwise installs it as MRU in the same set walk
    /// and reports `Some(evicted)`. This is the hierarchy's per-miss entry
    /// point — it halves the set scans of a probe-then-fill pair, and is
    /// state-equivalent as long as nothing else touches this cache level
    /// between the lookup and the fill (which is the case in the
    /// hierarchy: prefetches only touch the L2, demand fills only follow
    /// their own lookup).
    #[inline]
    pub fn probe_else_fill(&mut self, addr: u64) -> Option<Option<u64>> {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        // Pass 1: residency. A tight tags-only scan — the hit case (the
        // overwhelming majority of walks) never touches the stamp array.
        if let Some(way) = self.find_way(base, line) {
            self.stamps[base + way] = self.next_tick();
            return None;
        }
        // Pass 2 (miss only): pick an empty way, else the least-recent.
        let victim = self.victim_way(base);
        let old = self.tags[base + victim];
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.next_tick();
        self.dirty[base + victim] = false;
        Some((old != EMPTY).then_some(old))
    }

    /// Like [`probe_else_fill`](Self::probe_else_fill), but reports the
    /// evicted line's dirty status alongside its address — the entry point
    /// for levels that owe the backend writebacks of dirty victims.
    #[inline]
    pub fn probe_else_fill_dirty(&mut self, addr: u64) -> Option<(Option<u64>, bool)> {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        if let Some(way) = self.find_way(base, line) {
            self.stamps[base + way] = self.next_tick();
            return None;
        }
        let victim = self.victim_way(base);
        let old = self.tags[base + victim];
        let was_dirty = self.dirty[base + victim];
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.next_tick();
        self.dirty[base + victim] = false;
        Some(((old != EMPTY).then_some(old), was_dirty && old != EMPTY))
    }

    /// Marks the line containing `addr` dirty if resident, without touching
    /// LRU order or counters (so the mark is unobservable to replacement
    /// and timing). Returns whether the line was resident.
    #[inline]
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        match self.find_way(base, line) {
            Some(way) => {
                self.dirty[base + way] = true;
                true
            }
            None => false,
        }
    }

    /// Whether the line containing `addr` is resident and dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        self.find_way(base, line)
            .is_some_and(|way| self.dirty[base + way])
    }

    /// Inserts a line the caller knows is absent (a just-missed probe) as
    /// MRU, returning the evicted line address if the set was full. Skips
    /// the residency re-check [`fill`](Self::fill) pays.
    #[inline]
    pub fn fill_absent(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        debug_assert!(self.find_way(base, line).is_none(), "line already resident");
        let victim = self.victim_way(base);
        let old = self.tags[base + victim];
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.next_tick();
        self.dirty[base + victim] = false;
        (old != EMPTY).then_some(old)
    }

    /// Inserts the line containing `addr` as MRU, returning the evicted line
    /// address if the set was full. Filling an already-resident line only
    /// refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        if let Some(way) = self.find_way(base, line) {
            self.stamps[base + way] = self.next_tick();
            return None;
        }
        self.fill_absent(addr)
    }

    /// Removes a specific line if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let base = self.set_base(line);
        if let Some(way) = self.find_way(base, line) {
            self.tags[base + way] = EMPTY;
            self.stamps[base + way] = 0;
            self.dirty[base + way] = false;
        }
    }

    /// Empties the cache (keeps statistics).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
        self.dirty.fill(false);
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Counters accumulated so far (only tracked through
    /// [`access`](Self::access); the hierarchy counts at its own level).
    pub fn stats(&self) -> &CacheLevelStats {
        &self.stats
    }

    /// Resets counters to zero (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheLevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_cache(assoc: usize, sets: usize) -> Cache {
        Cache::new(CacheLevelConfig {
            size_bytes: assoc * sets * 64,
            associativity: assoc,
            line_bytes: 64,
            hit_latency_cycles: 2,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache(2, 4);
        assert!(!c.access(100));
        c.fill(100);
        assert!(c.access(100));
        assert!(c.access(127)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats().requests, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2, 1);
        c.fill(0); // line 0
        c.fill(64); // line 1 — set is now full
        assert!(c.access(0)); // touch line 0 so line 1 becomes LRU
        let evicted = c.fill(128); // line 2 must evict line 1
        assert_eq!(evicted, Some(64));
        assert!(c.peek(0));
        assert!(!c.peek(64));
        assert!(c.peek(128));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64);
        assert_eq!(c.fill(0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn fill_refreshes_lru_position_of_resident_line() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64); // order (MRU→LRU): 64, 0
        c.fill(0); // refresh: 0, 64
        assert_eq!(c.fill(128), Some(64));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small_cache(4, 2);
        c.fill(0);
        c.fill(64);
        c.invalidate(0);
        assert!(!c.peek(0));
        assert!(c.peek(64));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        let mut c = small_cache(4, 1);
        for line in [0u64, 64, 128, 192] {
            c.fill(line);
        }
        // Order (MRU→LRU): 192, 128, 64, 0. Drop 128 from the middle.
        c.invalidate(128);
        // Set has a free way; next fill evicts nothing.
        assert_eq!(c.fill(256), None);
        // Now full with order: 256, 192, 64, 0 — filling evicts 0, then 64.
        assert_eq!(c.fill(320), Some(0));
        assert_eq!(c.fill(384), Some(64));
    }

    #[test]
    fn probe_refreshes_recency_without_counting() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64);
        assert!(c.probe(0)); // 0 becomes MRU, 64 LRU
        assert!(!c.probe(128));
        assert_eq!(c.stats().requests, 0);
        assert_eq!(c.fill_absent(128), Some(64));
    }

    #[test]
    fn dirty_bits_track_writes_and_clear_on_install() {
        let mut c = small_cache(2, 1);
        assert!(!c.mark_dirty(0), "marking an absent line is a no-op");
        c.fill(0);
        assert!(!c.is_dirty(0));
        assert!(c.mark_dirty(0));
        assert!(c.is_dirty(0));
        c.fill(64);
        // Evicting the dirty line (LRU is 0 after 64's fill refreshed
        // nothing — touch 64 so 0 stays LRU) reports its dirty status.
        assert!(c.probe(64));
        let (evicted, was_dirty) = c.probe_else_fill_dirty(128).expect("miss");
        assert_eq!(evicted, Some(0));
        assert!(was_dirty, "the evicted line was written");
        // The recycled way starts clean.
        assert!(!c.is_dirty(128));
        // A clean eviction reports clean.
        let (evicted, was_dirty) = c.probe_else_fill_dirty(192).expect("miss");
        assert_eq!(evicted, Some(64));
        assert!(!was_dirty);
        // Invalidate and flush clear dirty state.
        c.mark_dirty(128);
        c.invalidate(128);
        c.fill(128);
        assert!(!c.is_dirty(128));
        c.mark_dirty(128);
        c.flush();
        c.fill(128);
        assert!(!c.is_dirty(128));
    }

    #[test]
    fn mark_dirty_does_not_touch_lru_order() {
        let mut a = small_cache(2, 1);
        let mut b = small_cache(2, 1);
        for c in [&mut a, &mut b] {
            c.fill(0);
            c.fill(64); // order (MRU→LRU): 64, 0
        }
        a.mark_dirty(0); // must NOT promote line 0
        let (ea, eb) = (a.fill(128), b.fill(128));
        assert_eq!(ea, eb, "replacement diverged");
        assert_eq!(ea, Some(0));
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let c = small_cache(1, 8);
        // Lines 0..8 should map to 8 distinct sets.
        let sets: std::collections::HashSet<usize> =
            (0..8u64).map(|i| c.set_base(i * 64)).collect();
        assert_eq!(sets.len(), 8);
    }

    /// Reference model: the seed's `Vec<Vec<u64>>` MRU-ordered cache. The
    /// flat-array implementation must match it decision-for-decision.
    struct VecCache {
        sets: usize,
        assoc: usize,
        ways: Vec<Vec<u64>>,
    }

    impl VecCache {
        fn new(assoc: usize, sets: usize) -> Self {
            VecCache {
                sets,
                assoc,
                ways: vec![Vec::new(); sets],
            }
        }
        fn set(&mut self, line: u64) -> &mut Vec<u64> {
            let s = ((line / 64) % self.sets as u64) as usize;
            &mut self.ways[s]
        }
        fn access(&mut self, addr: u64) -> bool {
            let line = addr & !63;
            let ways = self.set(line);
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                true
            } else {
                false
            }
        }
        fn fill(&mut self, addr: u64) -> Option<u64> {
            let line = addr & !63;
            let assoc = self.assoc;
            let ways = self.set(line);
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                return None;
            }
            let evicted = if ways.len() == assoc { ways.pop() } else { None };
            ways.insert(0, line);
            evicted
        }
        fn invalidate(&mut self, addr: u64) {
            let line = addr & !63;
            self.set(line).retain(|&l| l != line);
        }
    }

    proptest! {
        #[test]
        fn residency_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
            let mut c = small_cache(4, 8);
            for a in addrs {
                if !c.access(a) {
                    c.fill_absent(a);
                }
                prop_assert!(c.resident_lines() <= 4 * 8);
            }
        }

        #[test]
        fn peek_agrees_with_access_hit(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut c = small_cache(2, 4);
            for a in addrs {
                let resident = c.peek(a);
                let hit = c.access(a);
                prop_assert_eq!(resident, hit);
                if !hit {
                    c.fill(a);
                }
            }
        }

        /// Bit-identical replacement vs. the seed's Vec<Vec<u64>> model
        /// under an arbitrary interleaving of accesses, fills and
        /// invalidations.
        #[test]
        fn flat_tags_match_vec_of_vecs_reference(
            ops in proptest::collection::vec((0u64..4_096, 0u8..8), 1..600),
        ) {
            let mut flat = small_cache(4, 4);
            let mut reference = VecCache::new(4, 4);
            for (addr, op) in ops {
                match op {
                    // Bias towards the demand pattern: access, fill on miss.
                    0..=4 => {
                        let hit = flat.access(addr);
                        prop_assert_eq!(hit, reference.access(addr));
                        if !hit {
                            prop_assert_eq!(flat.fill_absent(addr), reference.fill(addr));
                        }
                    }
                    5..=6 => prop_assert_eq!(flat.fill(addr), reference.fill(addr)),
                    _ => {
                        flat.invalidate(addr);
                        reference.invalidate(addr);
                    }
                }
            }
        }
    }
}
