//! A tag-only set-associative cache with true-LRU replacement.
//!
//! The model tracks which line addresses are resident; data always comes
//! from the functional layer (`relmem_dram::PhysicalMemory` or the RME's
//! reorganization buffer), so the cache only needs tags. This keeps the
//! model fast enough to sweep gigabyte tables while still producing the
//! request/miss counts of Figure 8.

use relmem_sim::CacheLevelConfig;

use crate::stats::CacheLevelStats;

/// A set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheLevelConfig,
    sets: usize,
    /// `ways[set]` holds resident line addresses ordered from MRU (front) to
    /// LRU (back).
    ways: Vec<Vec<u64>>,
    stats: CacheLevelStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(cfg.associativity >= 1, "cache must have at least one way");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets,
            ways: vec![Vec::with_capacity(cfg.associativity); sets],
            cfg,
            stats: CacheLevelStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    /// Line-aligns an address.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes as u64) % self.sets as u64) as usize
    }

    /// Looks up the line containing `addr`, updating LRU order and counters.
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.requests += 1;
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit_line = ways.remove(pos);
            ways.insert(0, hit_line);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks residency without updating LRU order or counters.
    pub fn peek(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        self.ways[set].contains(&line)
    }

    /// Inserts the line containing `addr` as MRU, returning the evicted line
    /// address if the set was full. Filling an already-resident line only
    /// refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let assoc = self.cfg.associativity;
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            return None;
        }
        let evicted = if ways.len() == assoc { ways.pop() } else { None };
        ways.insert(0, line);
        evicted
    }

    /// Removes a specific line if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        self.ways[set].retain(|&l| l != line);
    }

    /// Empties the cache (keeps statistics).
    pub fn flush(&mut self) {
        for set in &mut self.ways {
            set.clear();
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().map(|w| w.len()).sum()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheLevelStats {
        &self.stats
    }

    /// Resets counters to zero (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheLevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_cache(assoc: usize, sets: usize) -> Cache {
        Cache::new(CacheLevelConfig {
            size_bytes: assoc * sets * 64,
            associativity: assoc,
            line_bytes: 64,
            hit_latency_cycles: 2,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache(2, 4);
        assert!(!c.access(100));
        c.fill(100);
        assert!(c.access(100));
        assert!(c.access(127)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats().requests, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2, 1);
        c.fill(0); // line 0
        c.fill(64); // line 1 — set is now full
        assert!(c.access(0)); // touch line 0 so line 1 becomes LRU
        let evicted = c.fill(128); // line 2 must evict line 1
        assert_eq!(evicted, Some(64));
        assert!(c.peek(0));
        assert!(!c.peek(64));
        assert!(c.peek(128));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64);
        assert_eq!(c.fill(0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small_cache(4, 2);
        c.fill(0);
        c.fill(64);
        c.invalidate(0);
        assert!(!c.peek(0));
        assert!(c.peek(64));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let c = small_cache(1, 8);
        // Lines 0..8 should map to 8 distinct sets.
        let sets: std::collections::HashSet<usize> =
            (0..8u64).map(|i| c.set_index(i * 64)).collect();
        assert_eq!(sets.len(), 8);
    }

    proptest! {
        #[test]
        fn residency_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
            let mut c = small_cache(4, 8);
            for a in addrs {
                if !c.access(a) {
                    c.fill(a);
                }
                prop_assert!(c.resident_lines() <= 4 * 8);
            }
        }

        #[test]
        fn peek_agrees_with_access_hit(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut c = small_cache(2, 4);
            for a in addrs {
                let resident = c.peek(a);
                let hit = c.access(a);
                prop_assert_eq!(resident, hit);
                if !hit {
                    c.fill(a);
                }
            }
        }
    }
}
