//! A tag-only set-associative cache with true-LRU replacement.
//!
//! The model tracks which line addresses are resident; data always comes
//! from the functional layer (`relmem_dram::PhysicalMemory` or the RME's
//! reorganization buffer), so the cache only needs tags. This keeps the
//! model fast enough to sweep gigabyte tables while still producing the
//! request/miss counts of Figure 8.
//!
//! # Layout
//!
//! Tags live in one flat, set-major `Vec<u32>` (`tags[set * assoc + way]`)
//! with a parallel packed array of per-way recency ranks (`ranks`). A
//! lookup touches one contiguous `assoc`-sized slice — no per-set `Vec`
//! allocations, no `remove`/`insert` element shifting — which is what lets
//! `System::scan` simulate millions of field accesses per wall-second.
//!
//! Tags are stored *set-relative*: `tag = line_number / sets`, so a 16-way
//! set is one 64-byte cache line of `u32`s and the branchless set walk
//! vectorises twice as wide as the previous full-`u64`-address layout. The
//! stored tag uniquely identifies the line within its set
//! (`line_number = tag * sets + set`), so evicted line addresses are
//! reconstructed exactly. Set-relative tags fit `u32` for every real
//! geometry including the ephemeral region (base `1 << 40`, line number
//! `2^34`, over ≥ 64 sets a tag of at most `2^28`); the walk asserts the
//! bound so an address outside it can never silently alias.
//!
//! Recency is a per-set permutation of byte *ranks* (`ranks[set * assoc +
//! way]`, higher = more recent): "promote to MRU" rewrites the set's
//! `assoc` rank bytes (a single SIMD compare/decrement for the real
//! geometries), and the eviction victim is the lowest-index empty way if
//! one exists, else the rank-0 (least-recent) way. An earlier revision
//! kept a `u64` recency stamp per way instead; ranks hold the exact same
//! ordering in one-eighth the bytes (a 16-way set is 16 rank bytes, not
//! two cache lines of stamps), which is what the host's cache sees on
//! every set walk of a multi-megabyte simulated scan. Rank order *is* the
//! recency order the seed's `Vec<Vec<u64>>` representation kept
//! positionally — replacement decisions (and therefore all downstream
//! timing and statistics) are bit-identical, which
//! `flat_tags_match_vec_of_vecs_reference` below asserts against a
//! faithful reimplementation of the old structure.

use relmem_sim::CacheLevelConfig;

use crate::stats::CacheLevelStats;

/// Sentinel marking an unoccupied way. The tag walk asserts every real
/// set-relative tag stays below it, so it can never collide.
const EMPTY: u32 = u32::MAX;

/// Entries in the walk memo (see [`Cache::probe_else_fill_dirty_slot`]):
/// enough that a prefetcher running its degree (4) ahead of the demand
/// stream — per tracked stream — still finds its install slot memoized
/// when the demand catches up.
const MEMO_WAYS: usize = 16;

/// A set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheLevelConfig,
    sets: usize,
    assoc: usize,
    /// `log2(line_bytes)` — the line size is asserted to be a power of two.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common case);
    /// lets the set index be a mask instead of a modulo.
    set_mask: Option<u64>,
    /// `log2(sets)`; only meaningful when `set_mask` is `Some`.
    set_shift: u32,
    /// Flat set-major array of set-relative tags (`line_number / sets`):
    /// `tags[set * assoc + way]`.
    tags: Vec<u32>,
    /// Per-set recency permutation parallel to `tags`:
    /// `ranks[set * assoc + way]` is the way's recency rank within its
    /// set (0 = least recent, `assoc - 1` = MRU). Every set's ranks are
    /// a permutation of `0..assoc` at all times; ranks of empty ways are
    /// placeholders that keep the permutation closed (victim selection
    /// prefers empty ways by tag, never by rank).
    ranks: Vec<u8>,
    /// Dirty bits parallel to `tags`: set by [`mark_dirty`](Self::mark_dirty)
    /// (a CPU write touched the line), cleared on install. Dirty state never
    /// influences lookup or replacement — it only reports whether an evicted
    /// line owes the backend a writeback — so tracking it is unobservable to
    /// every caller that never asks.
    dirty: Vec<bool>,
    /// Direct-mapped memo of recent
    /// [`probe_else_fill_dirty_slot`](Self::probe_else_fill_dirty_slot)
    /// results: line number → flat way slot, indexed by the line number's
    /// low bits. Entries are *hints*, verified against the tag store
    /// before use, so they never need invalidating — a stale slot simply
    /// fails the tag check and the full set walk runs. The payoff is the
    /// prefetch-then-demand pattern: the demand lookup lands on exactly
    /// the slot the prefetch installed a few lines earlier and skips the
    /// set scan for a single tag compare.
    memo_lines: [u64; MEMO_WAYS],
    memo_slots: [u32; MEMO_WAYS],
    stats: CacheLevelStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or ways, or a
    /// non-power-of-two line size).
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(cfg.associativity >= 1, "cache must have at least one way");
        assert!(
            cfg.associativity <= 256,
            "byte recency ranks support at most 256 ways"
        );
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets,
            assoc: cfg.associativity,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets
                .is_power_of_two()
                .then_some(sets as u64 - 1),
            set_shift: sets.trailing_zeros(),
            tags: vec![EMPTY; sets * cfg.associativity],
            ranks: Self::identity_ranks(sets, cfg.associativity),
            dirty: vec![false; sets * cfg.associativity],
            // `u64::MAX` is not a reachable line number (line numbers are
            // addresses shifted right), so fresh entries can never verify.
            memo_lines: [u64::MAX; MEMO_WAYS],
            memo_slots: [0; MEMO_WAYS],
            cfg,
            stats: CacheLevelStats::default(),
        }
    }

    /// The initial rank permutation: `ranks[way] = way` in every set, so
    /// an empty cache fills ways in index order (matching both the old
    /// stamp scheme's all-zero tie-break and the seed's `Vec` push order).
    fn identity_ranks(sets: usize, assoc: usize) -> Vec<u8> {
        (0..sets * assoc).map(|i| (i % assoc) as u8).collect()
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Set base index of a line address (the tag-free half of
    /// [`locate`](Self::locate); kept for tests that check set mapping).
    #[cfg(test)]
    #[inline]
    fn set_base(&self, line_addr: u64) -> usize {
        let line_number = line_addr >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => line_number & mask,
            None => line_number % self.sets as u64,
        };
        set as usize * self.assoc
    }

    /// Splits a line address into its set's base index and its
    /// set-relative tag. The tag uniquely identifies the line within the
    /// set (`line_number = tag * sets + set`), so nothing is lost by not
    /// storing the full address.
    ///
    /// # Panics
    /// Panics if the set-relative tag does not fit below the `u32` empty
    /// sentinel — truncation could silently alias two distant lines, so
    /// the bound is a hard assert (one predictable branch per walk).
    #[inline(always)]
    fn locate(&self, line_addr: u64) -> (usize, u32) {
        let line_number = line_addr >> self.line_shift;
        let (set, tag) = match self.set_mask {
            Some(mask) => (line_number & mask, line_number >> self.set_shift),
            None => (
                line_number % self.sets as u64,
                line_number / self.sets as u64,
            ),
        };
        assert!(
            tag < EMPTY as u64,
            "line address {line_addr:#x} exceeds the u32 set-relative tag range"
        );
        (set as usize * self.assoc, tag as u32)
    }

    /// Reconstructs the line address stored as `tag` in the set whose base
    /// index is `base` (the exact inverse of [`locate`](Self::locate)).
    #[inline(always)]
    fn line_of(&self, base: usize, tag: u32) -> u64 {
        let set = (base / self.assoc) as u64;
        (tag as u64 * self.sets as u64 + set) << self.line_shift
    }

    /// Index of the way holding `tag` in the set starting at `base`.
    /// Branchless full-set scan: no early exit, so the compiler can unroll
    /// and vectorise it (a 16-way set of `u32` tags is exactly one cache
    /// line). The two associativities real configurations use (4-way L1,
    /// 16-way L2) get fixed-trip-count instantiations of the single shared
    /// body, which LLVM turns into SIMD.
    #[inline(always)]
    fn find_way(&self, base: usize, tag: u32) -> Option<usize> {
        // One body for every arm: a literal slice scan.
        macro_rules! scan {
            ($set:expr) => {{
                let mut found = usize::MAX;
                for (way, &t) in $set.iter().enumerate() {
                    if t == tag {
                        found = way;
                    }
                }
                (found != usize::MAX).then_some(found)
            }};
        }
        let set = &self.tags[base..base + self.assoc];
        match self.assoc {
            16 => scan!(<&[u32; 16]>::try_from(set).expect("16-way set")),
            4 => scan!(<&[u32; 4]>::try_from(set).expect("4-way set")),
            _ => scan!(set),
        }
    }

    /// One pass over a set's tags reporting both the way holding `tag`
    /// and the lowest-index empty way (each if any) — the fused form of
    /// `find_way` plus the empty half of victim selection, so a miss+fill
    /// walk scans the tag line exactly once. The fixed-associativity arms
    /// reduce to two branchless lane masks decoded with `trailing_zeros`,
    /// which naturally picks the lowest index, matching the old stamp
    /// scheme's "smallest stamp, lowest index on ties" rule (empty ways
    /// held stamp 0 there, below every real stamp). On x86-64 the 16-way
    /// arm is explicit SSE2 (baseline on that architecture): four
    /// compare/movemask rounds against each needle instead of a 16-step
    /// scalar reduction.
    #[inline(always)]
    fn scan_set(&self, base: usize, tag: u32) -> (Option<usize>, Option<usize>) {
        let set = &self.tags[base..base + self.assoc];
        let (match_mask, empty_mask) = match self.assoc {
            16 => Self::scan16(<&[u32; 16]>::try_from(set).expect("16-way set"), tag),
            4 => Self::scan4(<&[u32; 4]>::try_from(set).expect("4-way set"), tag),
            // Arbitrary associativities (tests go up to 256 ways, past the
            // mask width) take plain first-index scans.
            _ => {
                return (
                    set.iter().position(|&t| t == tag),
                    set.iter().position(|&t| t == EMPTY),
                )
            }
        };
        (
            (match_mask != 0).then(|| match_mask.trailing_zeros() as usize),
            (empty_mask != 0).then(|| empty_mask.trailing_zeros() as usize),
        )
    }

    /// Lane masks of `tag` matches and empty ways over a 16-way set.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn scan16(set: &[u32; 16], tag: u32) -> (u32, u32) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI, and the four
        // 16-byte loads cover exactly the 64-byte tag array.
        unsafe {
            use std::arch::x86_64::*;
            let needle = _mm_set1_epi32(tag as i32);
            let empty = _mm_set1_epi32(EMPTY as i32);
            let p = set.as_ptr() as *const __m128i;
            let mut match_mask = 0u32;
            let mut empty_mask = 0u32;
            for i in 0..4 {
                let v = _mm_loadu_si128(p.add(i));
                let m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, needle)));
                let e = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, empty)));
                match_mask |= (m as u32) << (4 * i);
                empty_mask |= (e as u32) << (4 * i);
            }
            (match_mask, empty_mask)
        }
    }

    /// Portable fallback for [`scan16`](Self::scan16).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn scan16(set: &[u32; 16], tag: u32) -> (u32, u32) {
        let mut match_mask = 0u32;
        let mut empty_mask = 0u32;
        for (way, &t) in set.iter().enumerate() {
            match_mask |= u32::from(t == tag) << way;
            empty_mask |= u32::from(t == EMPTY) << way;
        }
        (match_mask, empty_mask)
    }

    /// Lane masks of `tag` matches and empty ways over a 4-way set — the
    /// whole set is exactly one SSE register.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn scan4(set: &[u32; 4], tag: u32) -> (u32, u32) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI; the single
        // 16-byte load covers exactly the 16-byte tag array.
        unsafe {
            use std::arch::x86_64::*;
            let v = _mm_loadu_si128(set.as_ptr() as *const __m128i);
            let m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(
                v,
                _mm_set1_epi32(tag as i32),
            )));
            let e = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(
                v,
                _mm_set1_epi32(EMPTY as i32),
            )));
            (m as u32, e as u32)
        }
    }

    /// Portable fallback for [`scan4`](Self::scan4).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn scan4(set: &[u32; 4], tag: u32) -> (u32, u32) {
        let mut match_mask = 0u32;
        let mut empty_mask = 0u32;
        for (way, &t) in set.iter().enumerate() {
            match_mask |= u32::from(t == tag) << way;
            empty_mask |= u32::from(t == EMPTY) << way;
        }
        (match_mask, empty_mask)
    }

    /// Fused victim selection + MRU promotion for a *full* set: the
    /// permutation rotates — every rank slides down one and the rank-0
    /// (least-recent) way wraps to the top — and the way that held rank 0
    /// is returned as the victim. One compare/decrement pass, no separate
    /// "find the LRU way" scan.
    #[inline(always)]
    fn rotate_lru(&mut self, base: usize) -> usize {
        macro_rules! rotate {
            ($set:expr) => {{
                let set = $set;
                let top = (self.assoc - 1) as u8;
                let mut victim = 0usize;
                for (way, r) in set.iter_mut().enumerate() {
                    if *r == 0 {
                        victim = way;
                        *r = top;
                    } else {
                        *r -= 1;
                    }
                }
                victim
            }};
        }
        let set = &mut self.ranks[base..base + self.assoc];
        match self.assoc {
            16 => Self::rotate16(<&mut [u8; 16]>::try_from(set).expect("16-way set")),
            4 => rotate!(<&mut [u8; 4]>::try_from(set).expect("4-way set")),
            _ => rotate!(set),
        }
    }

    /// [`rotate_lru`](Self::rotate_lru) for a 16-way set: one SSE2 round —
    /// find the zero lane with compare/movemask, decrement everything, and
    /// blend the top rank into the zero lane.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn rotate16(set: &mut [u8; 16]) -> usize {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI; the load and
        // store cover exactly the 16-byte rank array.
        unsafe {
            use std::arch::x86_64::*;
            let p = set.as_mut_ptr() as *mut __m128i;
            let v = _mm_loadu_si128(p);
            let is_zero = _mm_cmpeq_epi8(v, _mm_setzero_si128());
            let victim = (_mm_movemask_epi8(is_zero) as u32).trailing_zeros() as usize;
            let dec = _mm_sub_epi8(v, _mm_set1_epi8(1));
            let top = _mm_set1_epi8(15);
            let rotated = _mm_or_si128(
                _mm_andnot_si128(is_zero, dec),
                _mm_and_si128(is_zero, top),
            );
            _mm_storeu_si128(p, rotated);
            victim
        }
    }

    /// Portable fallback for [`rotate16`](Self::rotate16).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn rotate16(set: &mut [u8; 16]) -> usize {
        let mut victim = 0usize;
        for (way, r) in set.iter_mut().enumerate() {
            if *r == 0 {
                victim = way;
                *r = 15;
            } else {
                *r -= 1;
            }
        }
        victim
    }

    /// The way a fill should install into: the lowest-index empty way
    /// (already promoted to MRU here) if the tag scan found one, else the
    /// LRU way via the rotation. Callers overwrite the returned way's tag.
    #[inline(always)]
    fn claim_victim(&mut self, base: usize, first_empty: Option<usize>) -> usize {
        match first_empty {
            Some(way) => {
                self.touch(base, way);
                way
            }
            None => self.rotate_lru(base),
        }
    }

    /// Promotes `way` to MRU within its set: every way ranked above it
    /// slides down one, and it takes the top rank — the permutation
    /// analogue of the seed's `Vec::remove` + `insert(0)`. One compare/
    /// decrement pass over `assoc` bytes, which LLVM vectorises for the
    /// fixed 4- and 16-way instantiations below.
    #[inline(always)]
    fn touch(&mut self, base: usize, way: usize) {
        macro_rules! promote {
            ($set:expr) => {{
                let set = $set;
                let r = set[way];
                for rank in set.iter_mut() {
                    if *rank > r {
                        *rank -= 1;
                    }
                }
                set[way] = (self.assoc - 1) as u8;
            }};
        }
        let set = &mut self.ranks[base..base + self.assoc];
        match self.assoc {
            16 => Self::promote16(<&mut [u8; 16]>::try_from(set).expect("16-way set"), way),
            4 => promote!(<&mut [u8; 4]>::try_from(set).expect("4-way set")),
            _ => promote!(set),
        }
    }

    /// [`touch`](Self::touch) for a 16-way set: SSE2 compare-greater gives
    /// a −1 mask on the lanes ranked above the touched way, so adding the
    /// mask decrements exactly those lanes in one round. Rank values stay
    /// below 16, far inside `i8` range, so the signed compare is exact.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn promote16(set: &mut [u8; 16], way: usize) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI; the load and
        // store cover exactly the 16-byte rank array.
        unsafe {
            use std::arch::x86_64::*;
            let r = set[way];
            let p = set.as_mut_ptr() as *mut __m128i;
            let v = _mm_loadu_si128(p);
            let above = _mm_cmpgt_epi8(v, _mm_set1_epi8(r as i8));
            _mm_storeu_si128(p, _mm_add_epi8(v, above));
            set[way] = 15;
        }
    }

    /// Portable fallback for [`promote16`](Self::promote16).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn promote16(set: &mut [u8; 16], way: usize) {
        let r = set[way];
        for rank in set.iter_mut() {
            if *rank > r {
                *rank -= 1;
            }
        }
        set[way] = 15;
    }

    /// Residency probe that refreshes the line's recency on a hit but does
    /// not touch the request/hit/miss counters. This is the hierarchy's
    /// hot-path entry point: level counters are kept once, in
    /// [`HierarchyStats`](crate::stats::HierarchyStats).
    #[inline]
    pub fn probe(&mut self, addr: u64) -> bool {
        let (base, tag) = self.locate(self.line_addr(addr));
        match self.find_way(base, tag) {
            Some(way) => {
                self.touch(base, way);
                true
            }
            None => false,
        }
    }

    /// Looks up the line containing `addr`, updating LRU order and counters.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.requests += 1;
        if self.probe(addr) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks residency without updating LRU order or counters.
    pub fn peek(&self, addr: u64) -> bool {
        let (base, tag) = self.locate(self.line_addr(addr));
        self.find_way(base, tag).is_some()
    }

    /// One-walk combination of [`probe`](Self::probe) and
    /// [`fill`](Self::fill): refreshes recency and reports `None` if the
    /// line is resident, otherwise installs it as MRU in the same set walk
    /// and reports `Some(evicted)`. This is the hierarchy's per-miss entry
    /// point — it halves the set scans of a probe-then-fill pair, and is
    /// state-equivalent as long as nothing else touches this cache level
    /// between the lookup and the fill (which is the case in the
    /// hierarchy: prefetches only touch the L2, demand fills only follow
    /// their own lookup).
    #[inline(always)]
    pub fn probe_else_fill(&mut self, addr: u64) -> Option<Option<u64>> {
        let (base, tag) = self.locate(self.line_addr(addr));
        // One tag-line scan answers both residency and (on a miss) where
        // to install.
        let (found, first_empty) = self.scan_set(base, tag);
        if let Some(way) = found {
            self.touch(base, way);
            return None;
        }
        let victim = self.claim_victim(base, first_empty);
        let old = self.tags[base + victim];
        self.tags[base + victim] = tag;
        self.dirty[base + victim] = false;
        Some((old != EMPTY).then(|| self.line_of(base, old)))
    }

    /// Like [`probe_else_fill`](Self::probe_else_fill), but reports the
    /// evicted line's dirty status alongside its address — the entry point
    /// for levels that owe the backend writebacks of dirty victims.
    #[inline]
    pub fn probe_else_fill_dirty(&mut self, addr: u64) -> Option<(Option<u64>, bool)> {
        self.probe_else_fill_dirty_slot(addr).1
    }

    /// [`probe_else_fill_dirty`](Self::probe_else_fill_dirty) exposing the
    /// touched way's flat slot index (`set * assoc + way` — the hit way on
    /// a hit, the filled way on a miss). Owners key parallel per-way
    /// metadata off it: the shared L2 stores pending-fill arrival times in
    /// a slot-indexed array, so the metadata of a line is found by the set
    /// walk that just located it instead of a second, hashed lookup.
    #[inline(always)]
    pub(crate) fn probe_else_fill_dirty_slot(
        &mut self,
        addr: u64,
    ) -> (usize, Option<(Option<u64>, bool)>) {
        let line = self.line_addr(addr);
        let ln = line >> self.line_shift;
        let idx = ln as usize & (MEMO_WAYS - 1);
        let (base, tag) = self.locate(line);
        // Memoized hit: the memo slot was this exact line's walk result
        // once, so it lies in this line's set; if the tag still matches,
        // the line is resident there (a set holds each line at most once)
        // and the full walk would find the same way. Promote and return —
        // state and result identical to the scan below.
        if self.memo_lines[idx] == ln {
            let slot = self.memo_slots[idx] as usize;
            if self.tags[slot] == tag {
                self.touch(base, slot - base);
                return (slot, None);
            }
        }
        let (found, first_empty) = self.scan_set(base, tag);
        if let Some(way) = found {
            self.touch(base, way);
            self.memo_lines[idx] = ln;
            self.memo_slots[idx] = (base + way) as u32;
            return (base + way, None);
        }
        let victim = self.claim_victim(base, first_empty);
        let old = self.tags[base + victim];
        let was_dirty = self.dirty[base + victim];
        self.tags[base + victim] = tag;
        self.dirty[base + victim] = false;
        self.memo_lines[idx] = ln;
        self.memo_slots[idx] = (base + victim) as u32;
        (
            base + victim,
            Some((
                (old != EMPTY).then(|| self.line_of(base, old)),
                was_dirty && old != EMPTY,
            )),
        )
    }

    /// Total way slots (`sets * associativity`): the index space of the
    /// slot indices reported by
    /// [`probe_else_fill_dirty_slot`](Self::probe_else_fill_dirty_slot).
    #[inline]
    pub(crate) fn slots(&self) -> usize {
        self.tags.len()
    }

    /// Marks the line containing `addr` dirty if resident, without touching
    /// LRU order or counters (so the mark is unobservable to replacement
    /// and timing). Returns whether the line was resident.
    #[inline]
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (base, tag) = self.locate(self.line_addr(addr));
        match self.find_way(base, tag) {
            Some(way) => {
                self.dirty[base + way] = true;
                true
            }
            None => false,
        }
    }

    /// Whether the line containing `addr` is resident and dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let (base, tag) = self.locate(self.line_addr(addr));
        self.find_way(base, tag)
            .is_some_and(|way| self.dirty[base + way])
    }

    /// Inserts a line the caller knows is absent (a just-missed probe) as
    /// MRU, returning the evicted line address if the set was full. Skips
    /// the residency re-check [`fill`](Self::fill) pays.
    #[inline]
    pub fn fill_absent(&mut self, addr: u64) -> Option<u64> {
        let (base, tag) = self.locate(self.line_addr(addr));
        let (found, first_empty) = self.scan_set(base, tag);
        debug_assert!(found.is_none(), "line already resident");
        let victim = self.claim_victim(base, first_empty);
        let old = self.tags[base + victim];
        self.tags[base + victim] = tag;
        self.dirty[base + victim] = false;
        (old != EMPTY).then(|| self.line_of(base, old))
    }

    /// Inserts the line containing `addr` as MRU, returning the evicted line
    /// address if the set was full. Filling an already-resident line only
    /// refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let (base, tag) = self.locate(self.line_addr(addr));
        if let Some(way) = self.find_way(base, tag) {
            self.touch(base, way);
            return None;
        }
        self.fill_absent(addr)
    }

    /// Removes a specific line if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let (base, tag) = self.locate(self.line_addr(addr));
        if let Some(way) = self.find_way(base, tag) {
            self.tags[base + way] = EMPTY;
            // The way's rank stays in place: it keeps the set's permutation
            // closed, and victim selection prefers empty ways by tag, so a
            // stale rank can never influence replacement.
            self.dirty[base + way] = false;
        }
    }

    /// Empties the cache (keeps statistics).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.ranks = Self::identity_ranks(self.sets, self.assoc);
        self.dirty.fill(false);
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Counters accumulated so far (only tracked through
    /// [`access`](Self::access); the hierarchy counts at its own level).
    pub fn stats(&self) -> &CacheLevelStats {
        &self.stats
    }

    /// Resets counters to zero (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheLevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_cache(assoc: usize, sets: usize) -> Cache {
        Cache::new(CacheLevelConfig {
            size_bytes: assoc * sets * 64,
            associativity: assoc,
            line_bytes: 64,
            hit_latency_cycles: 2,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache(2, 4);
        assert!(!c.access(100));
        c.fill(100);
        assert!(c.access(100));
        assert!(c.access(127)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats().requests, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2, 1);
        c.fill(0); // line 0
        c.fill(64); // line 1 — set is now full
        assert!(c.access(0)); // touch line 0 so line 1 becomes LRU
        let evicted = c.fill(128); // line 2 must evict line 1
        assert_eq!(evicted, Some(64));
        assert!(c.peek(0));
        assert!(!c.peek(64));
        assert!(c.peek(128));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64);
        assert_eq!(c.fill(0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn fill_refreshes_lru_position_of_resident_line() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64); // order (MRU→LRU): 64, 0
        c.fill(0); // refresh: 0, 64
        assert_eq!(c.fill(128), Some(64));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small_cache(4, 2);
        c.fill(0);
        c.fill(64);
        c.invalidate(0);
        assert!(!c.peek(0));
        assert!(c.peek(64));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        let mut c = small_cache(4, 1);
        for line in [0u64, 64, 128, 192] {
            c.fill(line);
        }
        // Order (MRU→LRU): 192, 128, 64, 0. Drop 128 from the middle.
        c.invalidate(128);
        // Set has a free way; next fill evicts nothing.
        assert_eq!(c.fill(256), None);
        // Now full with order: 256, 192, 64, 0 — filling evicts 0, then 64.
        assert_eq!(c.fill(320), Some(0));
        assert_eq!(c.fill(384), Some(64));
    }

    #[test]
    fn probe_refreshes_recency_without_counting() {
        let mut c = small_cache(2, 1);
        c.fill(0);
        c.fill(64);
        assert!(c.probe(0)); // 0 becomes MRU, 64 LRU
        assert!(!c.probe(128));
        assert_eq!(c.stats().requests, 0);
        assert_eq!(c.fill_absent(128), Some(64));
    }

    #[test]
    fn dirty_bits_track_writes_and_clear_on_install() {
        let mut c = small_cache(2, 1);
        assert!(!c.mark_dirty(0), "marking an absent line is a no-op");
        c.fill(0);
        assert!(!c.is_dirty(0));
        assert!(c.mark_dirty(0));
        assert!(c.is_dirty(0));
        c.fill(64);
        // Evicting the dirty line (LRU is 0 after 64's fill refreshed
        // nothing — touch 64 so 0 stays LRU) reports its dirty status.
        assert!(c.probe(64));
        let (evicted, was_dirty) = c.probe_else_fill_dirty(128).expect("miss");
        assert_eq!(evicted, Some(0));
        assert!(was_dirty, "the evicted line was written");
        // The recycled way starts clean.
        assert!(!c.is_dirty(128));
        // A clean eviction reports clean.
        let (evicted, was_dirty) = c.probe_else_fill_dirty(192).expect("miss");
        assert_eq!(evicted, Some(64));
        assert!(!was_dirty);
        // Invalidate and flush clear dirty state.
        c.mark_dirty(128);
        c.invalidate(128);
        c.fill(128);
        assert!(!c.is_dirty(128));
        c.mark_dirty(128);
        c.flush();
        c.fill(128);
        assert!(!c.is_dirty(128));
    }

    #[test]
    fn mark_dirty_does_not_touch_lru_order() {
        let mut a = small_cache(2, 1);
        let mut b = small_cache(2, 1);
        for c in [&mut a, &mut b] {
            c.fill(0);
            c.fill(64); // order (MRU→LRU): 64, 0
        }
        a.mark_dirty(0); // must NOT promote line 0
        let (ea, eb) = (a.fill(128), b.fill(128));
        assert_eq!(ea, eb, "replacement diverged");
        assert_eq!(ea, Some(0));
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let c = small_cache(1, 8);
        // Lines 0..8 should map to 8 distinct sets.
        let sets: std::collections::HashSet<usize> =
            (0..8u64).map(|i| c.set_base(i * 64)).collect();
        assert_eq!(sets.len(), 8);
    }

    /// Reference model: the seed's `Vec<Vec<u64>>` MRU-ordered cache. The
    /// flat-array implementation must match it decision-for-decision.
    struct VecCache {
        sets: usize,
        assoc: usize,
        ways: Vec<Vec<u64>>,
    }

    impl VecCache {
        fn new(assoc: usize, sets: usize) -> Self {
            VecCache {
                sets,
                assoc,
                ways: vec![Vec::new(); sets],
            }
        }
        fn set(&mut self, line: u64) -> &mut Vec<u64> {
            let s = ((line / 64) % self.sets as u64) as usize;
            &mut self.ways[s]
        }
        fn access(&mut self, addr: u64) -> bool {
            let line = addr & !63;
            let ways = self.set(line);
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                true
            } else {
                false
            }
        }
        fn fill(&mut self, addr: u64) -> Option<u64> {
            let line = addr & !63;
            let assoc = self.assoc;
            let ways = self.set(line);
            if let Some(pos) = ways.iter().position(|&l| l == line) {
                let l = ways.remove(pos);
                ways.insert(0, l);
                return None;
            }
            let evicted = if ways.len() == assoc { ways.pop() } else { None };
            ways.insert(0, line);
            evicted
        }
        fn invalidate(&mut self, addr: u64) {
            let line = addr & !63;
            self.set(line).retain(|&l| l != line);
        }
    }

    proptest! {
        #[test]
        fn residency_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
            let mut c = small_cache(4, 8);
            for a in addrs {
                if !c.access(a) {
                    c.fill_absent(a);
                }
                prop_assert!(c.resident_lines() <= 4 * 8);
            }
        }

        #[test]
        fn peek_agrees_with_access_hit(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut c = small_cache(2, 4);
            for a in addrs {
                let resident = c.peek(a);
                let hit = c.access(a);
                prop_assert_eq!(resident, hit);
                if !hit {
                    c.fill(a);
                }
            }
        }

        /// Bit-identical replacement vs. the seed's Vec<Vec<u64>> model
        /// under an arbitrary interleaving of accesses, fills and
        /// invalidations.
        #[test]
        fn flat_tags_match_vec_of_vecs_reference(
            ops in proptest::collection::vec((0u64..4_096, 0u8..8), 1..600),
        ) {
            let mut flat = small_cache(4, 4);
            let mut reference = VecCache::new(4, 4);
            for (addr, op) in ops {
                match op {
                    // Bias towards the demand pattern: access, fill on miss.
                    0..=4 => {
                        let hit = flat.access(addr);
                        prop_assert_eq!(hit, reference.access(addr));
                        if !hit {
                            prop_assert_eq!(flat.fill_absent(addr), reference.fill(addr));
                        }
                    }
                    5..=6 => prop_assert_eq!(flat.fill(addr), reference.fill(addr)),
                    _ => {
                        flat.invalidate(addr);
                        reference.invalidate(addr);
                    }
                }
            }
        }
    }
}
