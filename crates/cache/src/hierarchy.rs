//! The L1 + L2 cache hierarchy over a pluggable memory backend.
//!
//! Every CPU memory reference in the query engine funnels through a
//! [`CoreFrontend`] — one core's private L1, stream prefetcher and
//! miss-status registers — backed by a [`SharedL2`] that all cores of the
//! cluster share. An access:
//!
//! * looks the line up in the core's L1, then the shared L2,
//! * on an L2 miss asks the [`MemoryBackend`] (DRAM controller for normal
//!   addresses, the RME for ephemeral addresses) to fill the line,
//! * trains the stream prefetcher on L1 misses and issues its prefetches to
//!   the same backend, so prefetched lines arrive early and demand misses on
//!   them only pay the residual latency,
//! * accumulates the per-level request/miss counters reported in Figure 8
//!   (per core; aggregate counters are the merge across cores).
//!
//! [`CacheHierarchy`] packages one frontend with its own shared L2 — the
//! single-core composition every pre-multi-core caller (and any experiment
//! that doesn't shard work) uses. Multi-core callers (`relmem-core`'s
//! `System`) own N frontends and one `SharedL2` directly, and pass the L2
//! into every access; lookups then contend on the L2's banks (see the
//! `shared_l2` module docs for the contention model and the single-core
//! bypass that keeps `cores == 1` timing bit-identical).
//!
//! # Line-resident fast path
//!
//! Row scans touch several fields of the same 64-byte line back to back, so
//! the overwhelmingly common case is "the line I touched an instant ago".
//! The hierarchy remembers the last line it made MRU in the L1; a repeat
//! touch of that line short-circuits the set walk, the prefetcher (only
//! trained on misses) and the pending-fill probe, charging the L1 hit
//! latency and bumping the same counters the full walk would. Because the
//! line is by construction still the MRU way of its set, skipping the LRU
//! update is state-identical too — the fast path cannot be observed in
//! timing or statistics, only in wall-clock speed. `set_fast_path(false)`
//! disables it; the equivalence tests in `relmem-core` and this crate run
//! both configurations against each other.
//!
//! # Hot-path data structures
//!
//! In-flight fill completions (the MSHR occupancy model) live in a
//! fixed-capacity `MissSlots` pool (private to this module) sized to the
//! core's miss-status-holding-register count — a handful of `SimTime`s
//! scanned in registers, instead of the seed's unbounded `Vec` with an
//! `O(n)` `retain` plus `min_by_key` per miss. Pending prefetch arrivals
//! live in a slot-indexed array parallel to the L2's way slots, addressed
//! by the same set walk that locates the line; a fill that recycles a way
//! clears the slot, so a later refill of the same line can never read a
//! stale arrival time (the seed implementation kept a line-address map and
//! let entries linger until a threshold purge, over-counting
//! `prefetch_hits`).

use relmem_sim::{PlatformConfig, SimTime, TraceEvent, TraceEventKind, Tracer, Track};

use crate::cache::Cache;
use crate::prefetch::StreamPrefetcher;
use crate::profile;
use crate::shared_l2::SharedL2;
use crate::stats::HierarchyStats;

/// Where a memory access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by the memory backend (DRAM or RME).
    Memory,
}

/// Timing outcome of one CPU memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Time at which the data is available to the core.
    pub completion: SimTime,
    /// Deepest level that had to be consulted.
    pub level: HitLevel,
}

/// A source of cache-line fills behind the L2.
pub trait MemoryBackend {
    /// Requests the 64-byte line containing `line_addr` (already
    /// line-aligned), issued at `ready`. Returns the time the line arrives
    /// at the L2.
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime;

    /// Whether the backend is willing to serve a *prefetch* of this line
    /// right now. Demand fills are always served; the Relational Memory
    /// Engine declines prefetches that run past the frame currently
    /// resident in its Reorganization Buffer, so the prefetcher cannot
    /// force a premature frame turnover.
    fn prefetchable(&self, _line_addr: u64) -> bool {
        true
    }

    /// Notifies the backend that a dirty line was evicted from the L2 at
    /// `ready` and owes main memory a write. Default: ignored — the
    /// occupancy DRAM model's timing is read/write-symmetric and its golden
    /// fixtures predate writeback traffic, so only backends that route to
    /// the cycle-accurate model in event-driven mode turn this into a real
    /// DRAM write (where tWR/tWTR exist to observe it). Fire-and-forget by
    /// design: the evicting access never waits on the writeback, it
    /// contends with it at the DRAM.
    fn writeback_line(&mut self, _line_addr: u64, _ready: SimTime) {}
}

/// Blanket implementation so `&mut T` can be passed where a backend is
/// expected.
impl<T: MemoryBackend + ?Sized> MemoryBackend for &mut T {
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime {
        (**self).fill_line(line_addr, ready)
    }

    fn prefetchable(&self, line_addr: u64) -> bool {
        (**self).prefetchable(line_addr)
    }

    fn writeback_line(&mut self, line_addr: u64, ready: SimTime) {
        (**self).writeback_line(line_addr, ready)
    }
}

/// Sentinel for "no MRU line cached" (never a valid line address).
const NO_LINE: u64 = u64::MAX;

/// Fixed-capacity pool of in-flight fill completion times (the MSHR
/// model). Capacity is the configured `max_outstanding_misses` — small on
/// every real core — so membership, expiry and earliest-slot queries are
/// plain unordered scans over a few machine words.
#[derive(Debug, Clone)]
struct MissSlots {
    completions: Vec<SimTime>,
    len: usize,
}

impl MissSlots {
    fn new(capacity: usize) -> Self {
        MissSlots {
            completions: vec![SimTime::ZERO; capacity],
            len: 0,
        }
    }

    fn clear(&mut self) {
        self.len = 0;
    }

    /// Drops every completion at or before `now`.
    #[inline]
    fn expire(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.len {
            if self.completions[i] <= now {
                self.len -= 1;
                self.completions.swap(i, self.len);
            } else {
                i += 1;
            }
        }
    }

    /// Whether a new fill can issue without waiting.
    #[inline]
    fn has_free_slot(&self) -> bool {
        self.len < self.completions.len()
    }

    /// Removes and returns the earliest completion.
    #[inline]
    fn take_earliest(&mut self) -> SimTime {
        debug_assert!(self.len > 0);
        let mut idx = 0;
        let mut earliest = self.completions[0];
        for (i, &t) in self.completions[1..self.len].iter().enumerate() {
            if t < earliest {
                earliest = t;
                idx = i + 1;
            }
        }
        self.len -= 1;
        self.completions.swap(idx, self.len);
        earliest
    }

    /// Records a fill in flight until `completion`.
    #[inline]
    fn record(&mut self, completion: SimTime) {
        debug_assert!(self.len < self.completions.len());
        self.completions[self.len] = completion;
        self.len += 1;
    }
}

/// One core's private cache frontend: the L1 data cache, the stream
/// prefetcher and the miss-status registers, plus that core's counters.
///
/// The frontend does not own an L2 — every access is given the cluster's
/// [`SharedL2`], so N frontends over one `SharedL2` model an N-core cluster
/// whose lookups contend on the L2's banks.
///
/// ```
/// use relmem_cache::{CoreFrontend, FixedLatencyBackend, SharedL2};
/// use relmem_sim::{PlatformConfig, SimTime};
///
/// let cfg = PlatformConfig::zcu102();
/// let mut l2 = SharedL2::new(&cfg, 2);
/// let mut cores = [CoreFrontend::new(&cfg), CoreFrontend::new(&cfg)];
/// let mut mem = FixedLatencyBackend::new(SimTime::from_nanos(80));
/// // Both cores touch different lines at t=0; each keeps its own counters.
/// cores[0].access(0, 8, SimTime::ZERO, &mut l2, &mut mem);
/// cores[1].access(1 << 20, 8, SimTime::ZERO, &mut l2, &mut mem);
/// assert_eq!(cores[0].stats().l1.requests, 1);
/// assert_eq!(cores[1].stats().l1.requests, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoreFrontend {
    l1: Cache,
    prefetcher: StreamPrefetcher,
    /// Completion times of fills currently in flight. The pool's capacity
    /// is the core's miss-status-holding-register count, which is what
    /// limits how much DRAM bandwidth a single in-order core can extract —
    /// a first-order effect in the paper's comparison against the RME's
    /// sixteen outstanding PL-side transactions.
    inflight: MissSlots,
    l1_hit: SimTime,
    l2_hit: SimTime,
    line_bytes: u64,
    /// The last line made MRU in the L1, or [`NO_LINE`].
    mru_line: u64,
    /// Whether the line-resident fast path is enabled (it always is outside
    /// of equivalence tests).
    fast_path: bool,
    /// This core's index in the cluster — used to attribute its lookups in
    /// the shared L2's per-core breakdown.
    core: usize,
    stats: HierarchyStats,
    /// Observability hook (no-op unless recording; see `relmem_sim::trace`).
    tracer: Tracer,
}

impl CoreFrontend {
    /// Builds one core's frontend described by `cfg` (as core 0; multi-core
    /// owners use [`for_core`](Self::for_core)).
    pub fn new(cfg: &PlatformConfig) -> Self {
        CoreFrontend::for_core(cfg, 0)
    }

    /// Builds the frontend of core number `core` described by `cfg`.
    pub fn for_core(cfg: &PlatformConfig, core: usize) -> Self {
        let cpu = cfg.cpu_clock();
        CoreFrontend {
            l1: Cache::new(cfg.l1),
            prefetcher: StreamPrefetcher::new(
                cfg.line_bytes(),
                cfg.prefetch_streams,
                cfg.prefetch_degree,
            ),
            inflight: MissSlots::new(cfg.cpu.max_outstanding_misses.max(1)),
            l1_hit: cpu.cycles(cfg.l1.hit_latency_cycles),
            l2_hit: cpu.cycles(cfg.l2.hit_latency_cycles),
            line_bytes: cfg.line_bytes() as u64,
            mru_line: NO_LINE,
            fast_path: true,
            core,
            stats: HierarchyStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// This core's index in the cluster.
    pub fn core(&self) -> usize {
        self.core
    }

    /// This core's trace hook (recording is controlled by the system).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// This core's accumulated counters (its own L1/L2 requests, backend
    /// fills, prefetches and the contention delay its lookups suffered).
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets this core's counters (keeps cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Enables or disables the line-resident fast path. Timing and
    /// statistics are identical either way (asserted by the cross-path
    /// equivalence tests); disabling exists so tests and benchmarks can
    /// compare against the full walk.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
        if !enabled {
            self.mru_line = NO_LINE;
        }
    }

    /// Flushes the private L1, forgets prefetch streams and in-flight
    /// fills. Does not touch the shared L2 — the owner flushes that once
    /// for the whole cluster.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.prefetcher.reset();
        self.inflight.clear();
        self.mru_line = NO_LINE;
    }

    /// Books a miss-status slot for a fill issued at `ready`: if every slot
    /// is occupied, the issue is delayed until the earliest in-flight fill
    /// returns. Returns the possibly delayed issue time.
    #[inline(always)]
    fn book_miss_slot(&mut self, ready: SimTime, now: SimTime) -> SimTime {
        // Lazy expiry: while a slot is free the already-returned fills
        // still pooled here don't need to be swept — expiry at a later
        // `now` drops a superset of what it would drop today, and
        // `take_earliest` only ever runs behind an up-to-date sweep, so
        // the issue times are identical to sweeping eagerly.
        if self.inflight.has_free_slot() {
            return ready;
        }
        self.inflight.expire(now);
        if self.inflight.has_free_slot() {
            return ready;
        }
        ready.max(self.inflight.take_earliest())
    }

    #[inline]
    fn record_inflight(&mut self, completion: SimTime) {
        self.inflight.record(completion);
    }

    /// Performs a CPU read of `bytes` bytes at `addr`, issued at `now`, and
    /// returns when the data is available. Accesses that straddle a line
    /// boundary touch both lines. Misses walk the given shared L2.
    #[inline]
    pub fn access<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) -> AccessOutcome {
        let first_line = addr & !(self.line_bytes - 1);
        let last_line = (addr + bytes.max(1) as u64 - 1) & !(self.line_bytes - 1);
        if first_line == last_line {
            return self.access_line(first_line, now, l2, backend);
        }
        let mut completion = now;
        let mut level = HitLevel::L1;
        let mut line = first_line;
        loop {
            let outcome = self.access_line(line, now, l2, backend);
            completion = completion.max(outcome.completion);
            level = level.max(outcome.level);
            if line == last_line {
                break;
            }
            line += self.line_bytes;
        }
        AccessOutcome { completion, level }
    }

    /// Performs `fields` back-to-back CPU reads that all land in the single
    /// cache line starting at `line_addr` (the caller guarantees no field
    /// straddles out of the line), issued at `now`, returning when the last
    /// field's data is available.
    ///
    /// This is the batched form of calling [`access`](Self::access) once
    /// per field: after the first touch the line is by construction the L1
    /// MRU line, so fields `2..=n` are exactly the line-resident fast path
    /// — an L1 request + hit and one L1-hit latency each. The batch replays
    /// that arithmetically (`SimTime` is integer picoseconds, so
    /// `l1_hit * (n-1)` equals the per-field chain bit for bit) instead of
    /// re-entering the hierarchy per field. With the fast path disabled
    /// ([`set_fast_path`](Self::set_fast_path)) the batch degenerates to
    /// the per-field loop, keeping the two configurations comparable the
    /// same way they are for `access`.
    #[inline]
    pub fn access_run<B: MemoryBackend>(
        &mut self,
        line_addr: u64,
        fields: u32,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) -> AccessOutcome {
        debug_assert!(fields >= 1);
        debug_assert_eq!(line_addr & (self.line_bytes - 1), 0);
        if !self.fast_path {
            // Reference behavior: the fast path is off, so every field
            // walks the full hierarchy (fields 2..n hit in L1).
            let mut out = self.access_line(line_addr, now, l2, backend);
            for _ in 1..fields {
                out = self.access_line(line_addr, out.completion, l2, backend);
            }
            return out;
        }
        let extra = u64::from(fields) - 1;
        if line_addr == self.mru_line {
            self.stats.l1.requests += extra + 1;
            self.stats.l1.hits += extra + 1;
            return AccessOutcome {
                completion: now + self.l1_hit * (extra + 1),
                level: HitLevel::L1,
            };
        }
        let first = self.access_line(line_addr, now, l2, backend);
        // access_line made the line MRU (fast path is on), so fields 2..n
        // are MRU fast-path hits: replay their counters and latency.
        self.stats.l1.requests += extra;
        self.stats.l1.hits += extra;
        AccessOutcome {
            completion: first.completion + self.l1_hit * extra,
            level: first.level,
        }
    }

    /// Performs a CPU write; with a write-allocate, write-back cache the
    /// timing model is identical to a read, plus the touched L2 lines are
    /// marked dirty so their eventual eviction owes the backend a
    /// writeback. Marking never alters LRU order or timing — with a
    /// backend that ignores [`MemoryBackend::writeback_line`] (the
    /// default) a write remains observationally identical to a read.
    pub fn write<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) -> AccessOutcome {
        let outcome = self.access(addr, bytes, now, l2, backend);
        let first_line = addr & !(self.line_bytes - 1);
        let last_line = (addr + bytes.max(1) as u64 - 1) & !(self.line_bytes - 1);
        let mut line = first_line;
        loop {
            l2.mark_dirty(line);
            if line == last_line {
                break;
            }
            line += self.line_bytes;
        }
        outcome
    }

    /// Monomorphization dispatcher for [`access_line_impl`]: the hot loop
    /// pays one profiling-enabled check per line here instead of one
    /// atomic load per guard site inside the walk.
    #[inline]
    fn access_line<B: MemoryBackend>(
        &mut self,
        line: u64,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) -> AccessOutcome {
        if profile::enabled() {
            self.access_line_impl::<B, true>(line, now, l2, backend)
        } else {
            self.access_line_impl::<B, false>(line, now, l2, backend)
        }
    }

    #[inline]
    fn access_line_impl<B: MemoryBackend, const PROF: bool>(
        &mut self,
        line: u64,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) -> AccessOutcome {
        // Fast path: a repeat touch of the line most recently made MRU in
        // the L1. It is guaranteed resident and already rank-0 in its set,
        // so the full walk would change no cache state; count the same L1
        // request + hit and charge the same latency.
        if line == self.mru_line {
            self.stats.l1.requests += 1;
            self.stats.l1.hits += 1;
            return AccessOutcome {
                completion: now + self.l1_hit,
                level: HitLevel::L1,
            };
        }

        // L1 lookup, fused with the (inevitable on a miss) MRU fill into a
        // single set walk. Nothing between the demand lookup and the fill
        // can touch the L1 — prefetches only go to the L2 — so installing
        // the line up front is state-equivalent to the seed's
        // lookup-then-fill ordering.
        self.stats.l1.requests += 1;
        let l1_missed = {
            let _p = PROF.then(|| profile::phase(profile::Phase::L1Walk));
            self.l1.probe_else_fill(line).is_some()
        };
        if !l1_missed {
            self.stats.l1.hits += 1;
            self.note_mru(line);
            return AccessOutcome {
                completion: now + self.l1_hit,
                level: HitLevel::L1,
            };
        }
        self.stats.l1.misses += 1;
        self.note_mru(line);

        // Train the prefetcher on the L1 miss stream and issue its requests.
        let decision = {
            let _p = PROF.then(|| profile::phase(profile::Phase::PrefetchTrain));
            self.prefetcher.train(line)
        };
        for pline in decision.lines() {
            self.issue_prefetch::<B, PROF>(pline, now, l2, backend);
        }

        // L2 lookup, same single-walk fusion (the backend fill between the
        // seed's lookup and fill never reads the L2). The lookup reaches
        // the L2 after the L1 latency and may first wait for its bank
        // (identity when the contention model is off, i.e. one core).
        let _p = PROF.then(|| profile::phase(profile::Phase::L2Walk));
        self.stats.l2.requests += 1;
        let (lookup_start, waited) = l2.book_bank(self.core, line, now + self.l1_hit);
        self.note_l2_wait(waited);
        let l2_lookup_done = lookup_start + self.l2_hit;
        let (slot, filled) = l2.walk(line);
        match filled {
            None => {
                self.stats.l2.hits += 1;
                // The line may still be in flight if it was prefetched
                // recently.
                let arrival = l2.pending_take(slot);
                if !arrival.is_zero() {
                    self.stats.prefetch_hits += 1;
                }
                AccessOutcome {
                    completion: l2_lookup_done.max(arrival),
                    level: HitLevel::L2,
                }
            }
            Some((evicted, evicted_dirty)) => {
                self.stats.l2.misses += 1;
                // Any pending arrival at this slot belonged to the way's
                // previous occupant — clear it with the eviction.
                l2.pending_take(slot);
                if let Some(evicted) = evicted {
                    if evicted_dirty {
                        let _p = PROF.then(|| profile::phase(profile::Phase::BackendFill));
                        backend.writeback_line(evicted, l2_lookup_done);
                        let core = self.core as u32;
                        self.tracer.emit(|| {
                            TraceEvent::instant(
                                Track::Core(core),
                                TraceEventKind::Writeback,
                                l2_lookup_done,
                                evicted,
                                0,
                            )
                        });
                    }
                }
                // Demand fill from the backend, subject to the
                // outstanding-miss cap.
                self.stats.backend_fills += 1;
                let issue = self.book_miss_slot(l2_lookup_done, now);
                let arrival = {
                    let _p = PROF.then(|| profile::phase(profile::Phase::BackendFill));
                    backend.fill_line(line, issue)
                };
                self.record_inflight(arrival);
                // Demand fills only: prefetch fills overlap demand windows
                // freely, so tracing them as sync spans would break the
                // per-track nesting invariant. Their DRAM-side activity is
                // on the bank tracks either way.
                let core = self.core as u32;
                self.tracer.emit(|| {
                    TraceEvent::span(
                        Track::Core(core),
                        TraceEventKind::LineFill,
                        issue,
                        arrival,
                        line,
                        0,
                    )
                });
                AccessOutcome {
                    completion: arrival.max(l2_lookup_done),
                    level: HitLevel::Memory,
                }
            }
        }
    }

    #[inline]
    fn note_mru(&mut self, line: u64) {
        if self.fast_path {
            self.mru_line = line;
        }
    }

    /// Records a bank wait reported by [`SharedL2::book_bank`] in this
    /// core's counters.
    #[inline]
    fn note_l2_wait(&mut self, waited: SimTime) {
        if !waited.is_zero() {
            self.stats.l2_contended_lookups += 1;
            self.stats.l2_contention_delay += waited;
        }
    }

    fn issue_prefetch<B: MemoryBackend, const PROF: bool>(
        &mut self,
        line: u64,
        now: SimTime,
        l2: &mut SharedL2,
        backend: &mut B,
    ) {
        if !backend.prefetchable(line) {
            return;
        }
        let _p = PROF.then(|| profile::phase(profile::Phase::PrefetchIssue));
        // Prefetches that would hit in L2 are dropped (they count as L2
        // lookups, which is what inflates the L2 request counts in Fig. 8).
        // Like demand lookups they occupy the line's bank when the
        // contention model is on.
        self.stats.l2.requests += 1;
        let (lookup_start, waited) = l2.book_bank(self.core, line, now);
        self.note_l2_wait(waited);
        let (slot, filled) = l2.walk(line);
        let (evicted, evicted_dirty) = match filled {
            None => {
                self.stats.l2.hits += 1;
                return;
            }
            Some(evicted) => evicted,
        };
        self.stats.l2.misses += 1;
        // The recycled way's previous pending entry (if any) dies with it.
        l2.pending_take(slot);
        if let Some(evicted) = evicted {
            if evicted_dirty {
                let _p = PROF.then(|| profile::phase(profile::Phase::BackendFill));
                backend.writeback_line(evicted, lookup_start);
                let core = self.core as u32;
                self.tracer.emit(|| {
                    TraceEvent::instant(
                        Track::Core(core),
                        TraceEventKind::Writeback,
                        lookup_start,
                        evicted,
                        0,
                    )
                });
            }
        }
        self.stats.prefetches_issued += 1;
        self.stats.backend_fills += 1;
        let issue = self.book_miss_slot(lookup_start, now);
        let arrival = {
            let _p = PROF.then(|| profile::phase(profile::Phase::BackendFill));
            backend.fill_line(line, issue)
        };
        self.record_inflight(arrival);
        l2.pending_set(slot, arrival);
    }
}

/// The modelled two-level cache hierarchy of one core: a [`CoreFrontend`]
/// packaged with its own (uncontended) [`SharedL2`]. This is the
/// composition every single-core caller uses; its timing is bit-identical
/// to the pre-multi-core hierarchy.
///
/// ```
/// use relmem_cache::{CacheHierarchy, FixedLatencyBackend, HitLevel};
/// use relmem_sim::{PlatformConfig, SimTime};
///
/// let mut h = CacheHierarchy::new(&PlatformConfig::zcu102());
/// let mut mem = FixedLatencyBackend::new(SimTime::from_nanos(100));
/// let cold = h.access(0, 8, SimTime::ZERO, &mut mem);
/// assert_eq!(cold.level, HitLevel::Memory);
/// let warm = h.access(8, 8, cold.completion, &mut mem);
/// assert_eq!(warm.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    front: CoreFrontend,
    l2: SharedL2,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &PlatformConfig) -> Self {
        CacheHierarchy {
            front: CoreFrontend::new(cfg),
            l2: SharedL2::new(cfg, 1),
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.front.line_bytes()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        self.front.stats()
    }

    /// Resets statistics (keeps cache contents).
    pub fn reset_stats(&mut self) {
        self.front.reset_stats();
        self.l2.reset_stats();
    }

    /// Enables or disables the line-resident fast path (see
    /// [`CoreFrontend::set_fast_path`]).
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.front.set_fast_path(enabled);
    }

    /// Number of pending (in-flight prefetch) fills currently tracked.
    pub fn pending_fills(&self) -> usize {
        self.l2.pending_fills()
    }

    /// Flushes both cache levels, forgets prefetch streams and in-flight
    /// fills. Used to make "cold" measurements.
    pub fn flush(&mut self) {
        self.front.flush();
        self.l2.flush();
    }

    /// Performs a CPU read of `bytes` bytes at `addr`, issued at `now`, and
    /// returns when the data is available. Accesses that straddle a line
    /// boundary touch both lines.
    #[inline]
    pub fn access<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        backend: &mut B,
    ) -> AccessOutcome {
        self.front.access(addr, bytes, now, &mut self.l2, backend)
    }

    /// Performs a CPU write; with a write-allocate, write-back cache the
    /// timing model is identical to a read, and the touched L2 lines are
    /// marked dirty (see [`CoreFrontend::write`]).
    pub fn write<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        backend: &mut B,
    ) -> AccessOutcome {
        self.front.write(addr, bytes, now, &mut self.l2, backend)
    }
}

/// A trivially simple backend with a fixed fill latency, used by unit tests
/// in this crate and by the CPU cost-model calibration tests in
/// `relmem-core`.
#[derive(Debug, Clone)]
pub struct FixedLatencyBackend {
    /// Latency charged per fill.
    pub latency: SimTime,
    /// Number of fills served.
    pub fills: u64,
    /// Dirty-eviction writebacks notified (never charged any time).
    pub writebacks: u64,
}

impl FixedLatencyBackend {
    /// Creates a backend with the given fill latency.
    pub fn new(latency: SimTime) -> Self {
        FixedLatencyBackend {
            latency,
            fills: 0,
            writebacks: 0,
        }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn fill_line(&mut self, _line_addr: u64, ready: SimTime) -> SimTime {
        self.fills += 1;
        ready + self.latency
    }

    fn writeback_line(&mut self, _line_addr: u64, _ready: SimTime) {
        self.writebacks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> PlatformConfig {
        PlatformConfig::tiny_for_tests()
    }

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn l1_hit_after_fill_is_cheap() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(100));
        let first = h.access(0, 8, SimTime::ZERO, &mut mem);
        assert_eq!(first.level, HitLevel::Memory);
        assert!(first.completion >= ns(100));
        let second = h.access(8, 8, first.completion, &mut mem);
        assert_eq!(second.level, HitLevel::L1);
        assert!(second.completion.saturating_sub(first.completion) < ns(5));
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(100));
        let out = h.access(60, 8, SimTime::ZERO, &mut mem);
        assert_eq!(out.level, HitLevel::Memory);
        // Both lines (0 and 64) are filled; the prefetcher may fill more.
        assert!(mem.fills >= 2);
        assert_eq!(h.stats().l1.requests, 2);
        // Both halves now hit in L1.
        assert_eq!(h.access(60, 8, out.completion, &mut mem).level, HitLevel::L1);
    }

    #[test]
    fn l2_serves_lines_evicted_from_l1() {
        let cfg = cfg(); // 1 KB L1 (16 lines), 8 KB L2 (128 lines)
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;
        // Touch 64 distinct lines: far more than L1 holds, fits in L2.
        // Use a 3-line stride so the accesses are neither sequential (which
        // would engage the prefetcher) nor aliased to a single L2 set.
        for i in 0..64u64 {
            now = h.access(i * 192, 4, now, &mut mem).completion;
        }
        let fills_after_first_pass = mem.fills;
        assert_eq!(fills_after_first_pass, 64);
        // Second pass: L1 cannot hold them all, so we must see L2 hits and
        // no new backend fills.
        let mut saw_l2 = false;
        for i in 0..64u64 {
            let out = h.access(i * 192, 4, now, &mut mem);
            now = out.completion;
            if out.level == HitLevel::L2 {
                saw_l2 = true;
            }
            assert_ne!(out.level, HitLevel::Memory, "line {i} should be cached");
        }
        assert!(saw_l2);
        assert_eq!(mem.fills, fills_after_first_pass);
    }

    #[test]
    fn sequential_scan_benefits_from_prefetching() {
        let cfg = PlatformConfig::zcu102();
        let lines = 512u64;

        // With prefetching.
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;
        for i in 0..lines {
            now = h.access(i * 64, 8, now, &mut mem).completion;
        }
        let with_pf = now;
        assert!(h.stats().prefetches_issued > 0);
        assert!(h.stats().prefetch_hits > 0);

        // Without prefetching.
        let mut cfg_no = cfg.clone();
        cfg_no.prefetch_streams = 0;
        let mut h2 = CacheHierarchy::new(&cfg_no);
        let mut mem2 = FixedLatencyBackend::new(ns(100));
        let mut now2 = SimTime::ZERO;
        for i in 0..lines {
            now2 = h2.access(i * 64, 8, now2, &mut mem2).completion;
        }
        let without_pf = now2;
        assert!(
            with_pf.as_nanos_f64() < 0.6 * without_pf.as_nanos_f64(),
            "prefetching should hide most of the fixed fill latency: {with_pf} vs {without_pf}"
        );
    }

    #[test]
    fn flush_makes_accesses_cold_again() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(50));
        h.access(0, 8, SimTime::ZERO, &mut mem);
        assert_eq!(h.access(0, 8, ns(1_000), &mut mem).level, HitLevel::L1);
        h.flush();
        assert_eq!(h.access(0, 8, ns(2_000), &mut mem).level, HitLevel::Memory);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(50));
        for i in 0..16u64 {
            h.access(i * 64, 4, SimTime::ZERO, &mut mem);
        }
        let s = h.stats();
        assert_eq!(s.l1.requests, 16);
        assert!(s.l1.misses > 0);
        assert!(s.backend_fills > 0);
        h.reset_stats();
        assert_eq!(h.stats().l1.requests, 0);
    }

    #[test]
    fn repeat_touches_use_the_fast_path_with_identical_outcome() {
        let mut fast = CacheHierarchy::new(&cfg());
        let mut full = CacheHierarchy::new(&cfg());
        full.set_fast_path(false);
        let mut mem_a = FixedLatencyBackend::new(ns(80));
        let mut mem_b = FixedLatencyBackend::new(ns(80));
        let mut now_a = SimTime::ZERO;
        let mut now_b = SimTime::ZERO;
        // Field-by-field row scan: 4 touches per 64-byte line.
        for field in 0..4_000u64 {
            let addr = field * 16;
            let a = fast.access(addr, 8, now_a, &mut mem_a);
            let b = full.access(addr, 8, now_b, &mut mem_b);
            assert_eq!(a, b, "outcome diverged at field {field}");
            now_a = a.completion;
            now_b = b.completion;
        }
        assert_eq!(fast.stats(), full.stats());
        assert_eq!(mem_a.fills, mem_b.fills);
    }

    /// A write is observationally identical to a read in timing, levels
    /// and statistics; only the dirty marks (and hence later writeback
    /// notifications) differ.
    #[test]
    fn writes_time_like_reads_and_mark_dirty() {
        let mut reads = CacheHierarchy::new(&cfg());
        let mut writes = CacheHierarchy::new(&cfg());
        let mut mem_r = FixedLatencyBackend::new(ns(80));
        let mut mem_w = FixedLatencyBackend::new(ns(80));
        let mut now_r = SimTime::ZERO;
        let mut now_w = SimTime::ZERO;
        for i in 0..64u64 {
            let addr = i * 192;
            let a = reads.access(addr, 8, now_r, &mut mem_r);
            let b = writes.write(addr, 8, now_w, &mut mem_w);
            assert_eq!(a, b);
            now_r = a.completion;
            now_w = b.completion;
        }
        assert_eq!(reads.stats(), writes.stats());
        assert_eq!(mem_r.fills, mem_w.fills);
        assert_eq!(mem_r.writebacks, 0, "no evictions yet in either run");
        assert!(writes.l2.cache().is_dirty(0), "written lines are dirty");
        assert!(!reads.l2.cache().is_dirty(0), "read lines stay clean");
    }

    /// Dirty L2 victims notify the backend exactly once, at eviction.
    #[test]
    fn dirty_evictions_notify_the_backend() {
        let cfg = cfg(); // L2: 8 KB, 16-way, 8 sets
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;
        // Dirty one line, then flood its L2 set with 17 distinct clean
        // lines (stride = sets × line so they alias; large stride keeps
        // the prefetcher out of the picture).
        now = h.write(0, 8, now, &mut mem).completion;
        let set_stride = 8 * 64u64;
        for i in 1..=17u64 {
            now = h.access(i * set_stride, 8, now, &mut mem).completion;
            now += ns(1);
        }
        assert_eq!(mem.writebacks, 1, "exactly the dirty victim wrote back");
        // Re-filling and cleanly evicting it again adds nothing.
        now = h.access(0, 8, now, &mut mem).completion;
        for i in 1..=17u64 {
            now = h.access(i * set_stride, 8, now, &mut mem).completion;
            now += ns(1);
        }
        assert_eq!(mem.writebacks, 1, "clean evictions never write back");
    }

    /// Regression test for the stale pending-fill leak: a prefetched line
    /// that is evicted from the L2 and later refilled must not report a
    /// phantom prefetch hit from its old arrival entry.
    #[test]
    fn evicted_prefetch_entries_cannot_go_stale() {
        let cfg = cfg(); // L2: 8 KB, 16-way, 8 sets
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;

        // Establish a sequential stream so lines ahead get prefetched into
        // the L2 with pending arrival entries.
        for i in 0..4u64 {
            now = h.access(i * 64, 8, now, &mut mem).completion;
        }
        assert!(h.pending_fills() > 0, "prefetches should be pending");
        // Pick a prefetched-but-never-demanded line.
        let victim = 6 * 64u64;

        // Evict it from the L2: flood its set (stride = sets * line) with
        // 16+ distinct lines. Large stride ⇒ no new prefetcher streams.
        let set_stride = 8 * 64u64;
        for i in 1..=17u64 {
            now = h.access(victim + i * set_stride, 8, now, &mut mem).completion;
            now += ns(1);
        }

        // The victim's pending entry must have died with its L2 residency.
        // Re-access it: a clean L2/memory path with no phantom prefetch hit.
        let out = h.access(victim, 8, now, &mut mem);
        assert_eq!(out.level, HitLevel::Memory, "victim was evicted from L2");
        // …and a subsequent L1 eviction + L2 hit must not see a stale time.
        let mut now = out.completion;
        let l1_set_stride = 4 * 64u64; // L1: 1 KB, 4-way, 4 sets
        for i in 1..=5u64 {
            now = h.access(victim + i * l1_set_stride, 8, now, &mut mem).completion;
        }
        let before = h.stats().prefetch_hits;
        let again = h.access(victim, 8, now, &mut mem);
        assert_eq!(again.level, HitLevel::L2);
        assert_eq!(
            h.stats().prefetch_hits,
            before,
            "stale pending entry produced a phantom prefetch hit"
        );
        assert_eq!(again.completion, now + h.front.l1_hit + h.front.l2_hit);
    }

    proptest! {
        /// The fast path must be unobservable: arbitrary access sequences
        /// (with heavy same-line repetition) produce identical timing,
        /// levels, statistics and backend traffic with and without it.
        #[test]
        fn fast_path_is_timing_and_stats_identical(
            ops in proptest::collection::vec((0u64..2_000, 1usize..=16, any::<bool>()), 1..800),
        ) {
            let mut fast = CacheHierarchy::new(&cfg());
            let mut full = CacheHierarchy::new(&cfg());
            full.set_fast_path(false);
            let mut mem_a = FixedLatencyBackend::new(ns(90));
            let mut mem_b = FixedLatencyBackend::new(ns(90));
            let mut now_a = SimTime::ZERO;
            let mut now_b = SimTime::ZERO;
            let mut last = 0u64;
            for (addr, bytes, repeat) in ops {
                // Half the ops re-touch the previous address: the scan
                // pattern the fast path exists for.
                let addr = if repeat { last } else { addr };
                last = addr;
                let a = fast.access(addr, bytes, now_a, &mut mem_a);
                let b = full.access(addr, bytes, now_b, &mut mem_b);
                prop_assert_eq!(a, b);
                now_a = a.completion;
                now_b = b.completion;
            }
            prop_assert_eq!(fast.stats(), full.stats());
            prop_assert_eq!(mem_a.fills, mem_b.fills);
        }
    }
}
