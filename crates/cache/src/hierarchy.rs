//! The L1 + L2 cache hierarchy over a pluggable memory backend.
//!
//! Every CPU memory reference in the query engine funnels through
//! [`CacheHierarchy::access`]. The hierarchy:
//!
//! * looks the line up in L1, then L2,
//! * on an L2 miss asks the [`MemoryBackend`] (DRAM controller for normal
//!   addresses, the RME for ephemeral addresses) to fill the line,
//! * trains the stream prefetcher on L1 misses and issues its prefetches to
//!   the same backend, so prefetched lines arrive early and demand misses on
//!   them only pay the residual latency,
//! * accumulates the per-level request/miss counters reported in Figure 8.

use std::collections::HashMap;

use relmem_sim::{PlatformConfig, SimTime};

use crate::cache::Cache;
use crate::prefetch::StreamPrefetcher;
use crate::stats::HierarchyStats;

/// Where a memory access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by the memory backend (DRAM or RME).
    Memory,
}

/// Timing outcome of one CPU memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Time at which the data is available to the core.
    pub completion: SimTime,
    /// Deepest level that had to be consulted.
    pub level: HitLevel,
}

/// A source of cache-line fills behind the L2.
pub trait MemoryBackend {
    /// Requests the 64-byte line containing `line_addr` (already
    /// line-aligned), issued at `ready`. Returns the time the line arrives
    /// at the L2.
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime;

    /// Whether the backend is willing to serve a *prefetch* of this line
    /// right now. Demand fills are always served; the Relational Memory
    /// Engine declines prefetches that run past the frame currently
    /// resident in its Reorganization Buffer, so the prefetcher cannot
    /// force a premature frame turnover.
    fn prefetchable(&self, _line_addr: u64) -> bool {
        true
    }
}

/// Blanket implementation so `&mut T` can be passed where a backend is
/// expected.
impl<T: MemoryBackend + ?Sized> MemoryBackend for &mut T {
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime {
        (**self).fill_line(line_addr, ready)
    }

    fn prefetchable(&self, line_addr: u64) -> bool {
        (**self).prefetchable(line_addr)
    }
}

/// The modelled two-level cache hierarchy of one core.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    prefetcher: StreamPrefetcher,
    /// Lines whose fill is still in flight (typically prefetches), mapped to
    /// their arrival time at L2.
    pending: HashMap<u64, SimTime>,
    /// Completion times of fills currently in flight. The length of this
    /// list is capped at the core's miss-status-holding-register count,
    /// which is what limits how much DRAM bandwidth a single in-order core
    /// can extract — a first-order effect in the paper's comparison against
    /// the RME's sixteen outstanding PL-side transactions.
    inflight: Vec<SimTime>,
    max_outstanding: usize,
    l1_hit: SimTime,
    l2_hit: SimTime,
    line_bytes: u64,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &PlatformConfig) -> Self {
        let cpu = cfg.cpu_clock();
        CacheHierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            prefetcher: StreamPrefetcher::new(
                cfg.line_bytes(),
                cfg.prefetch_streams,
                cfg.prefetch_degree,
            ),
            pending: HashMap::new(),
            inflight: Vec::new(),
            max_outstanding: cfg.cpu.max_outstanding_misses.max(1),
            l1_hit: cpu.cycles(cfg.l1.hit_latency_cycles),
            l2_hit: cpu.cycles(cfg.l2.hit_latency_cycles),
            line_bytes: cfg.line_bytes() as u64,
            stats: HierarchyStats::default(),
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets statistics (keeps cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Flushes both cache levels, forgets prefetch streams and in-flight
    /// fills. Used to make "cold" measurements.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.prefetcher.reset();
        self.pending.clear();
        self.inflight.clear();
    }

    /// Books a miss-status slot for a fill issued at `ready`: if every slot
    /// is occupied, the issue is delayed until the earliest in-flight fill
    /// returns. Records the fill's own completion and returns the possibly
    /// delayed issue time.
    fn book_miss_slot(&mut self, ready: SimTime, now: SimTime) -> SimTime {
        self.inflight.retain(|&t| t > now);
        if self.inflight.len() < self.max_outstanding {
            return ready;
        }
        let (idx, &earliest) = self
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("inflight is non-empty");
        self.inflight.swap_remove(idx);
        ready.max(earliest)
    }

    fn record_inflight(&mut self, completion: SimTime) {
        self.inflight.push(completion);
    }

    /// Performs a CPU read of `bytes` bytes at `addr`, issued at `now`, and
    /// returns when the data is available. Accesses that straddle a line
    /// boundary touch both lines.
    pub fn access<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        backend: &mut B,
    ) -> AccessOutcome {
        let first_line = addr & !(self.line_bytes - 1);
        let last_line = (addr + bytes.max(1) as u64 - 1) & !(self.line_bytes - 1);
        let mut completion = now;
        let mut level = HitLevel::L1;
        let mut line = first_line;
        loop {
            let outcome = self.access_line(line, now, backend);
            completion = completion.max(outcome.completion);
            level = level.max(outcome.level);
            if line == last_line {
                break;
            }
            line += self.line_bytes;
        }
        AccessOutcome { completion, level }
    }

    /// Performs a CPU write; with a write-allocate, write-back cache the
    /// timing model is identical to a read.
    pub fn write<B: MemoryBackend>(
        &mut self,
        addr: u64,
        bytes: usize,
        now: SimTime,
        backend: &mut B,
    ) -> AccessOutcome {
        self.access(addr, bytes, now, backend)
    }

    fn access_line<B: MemoryBackend>(
        &mut self,
        line: u64,
        now: SimTime,
        backend: &mut B,
    ) -> AccessOutcome {
        self.stats.l1.requests += 1;
        if self.l1.access(line) {
            self.stats.l1.hits += 1;
            return AccessOutcome {
                completion: now + self.l1_hit,
                level: HitLevel::L1,
            };
        }
        self.stats.l1.misses += 1;

        // Train the prefetcher on the L1 miss stream and issue its requests.
        let decision = self.prefetcher.train(line);
        for pline in decision.prefetch_lines {
            self.issue_prefetch(pline, now, backend);
        }
        if self.pending.len() > 4096 {
            self.pending.retain(|_, arrival| *arrival > now);
        }

        // L2 lookup.
        self.stats.l2.requests += 1;
        let l2_lookup_done = now + self.l1_hit + self.l2_hit;
        if self.l2.access(line) {
            self.stats.l2.hits += 1;
            // The line may still be in flight if it was prefetched recently.
            let arrival = self.pending.remove(&line).unwrap_or(SimTime::ZERO);
            if !arrival.is_zero() {
                self.stats.prefetch_hits += 1;
            }
            self.l1.fill(line);
            return AccessOutcome {
                completion: l2_lookup_done.max(arrival),
                level: HitLevel::L2,
            };
        }
        self.stats.l2.misses += 1;

        // Demand fill from the backend, subject to the outstanding-miss cap.
        self.stats.backend_fills += 1;
        let issue = self.book_miss_slot(now + self.l1_hit + self.l2_hit, now);
        let arrival = backend.fill_line(line, issue);
        self.record_inflight(arrival);
        self.l2.fill(line);
        self.l1.fill(line);
        AccessOutcome {
            completion: arrival.max(l2_lookup_done),
            level: HitLevel::Memory,
        }
    }

    fn issue_prefetch<B: MemoryBackend>(&mut self, line: u64, now: SimTime, backend: &mut B) {
        if !backend.prefetchable(line) {
            return;
        }
        // Prefetches that would hit in L2 are dropped (they count as L2
        // lookups, which is what inflates the L2 request counts in Fig. 8).
        self.stats.l2.requests += 1;
        if self.l2.access(line) {
            self.stats.l2.hits += 1;
            return;
        }
        self.stats.l2.misses += 1;
        self.stats.prefetches_issued += 1;
        self.stats.backend_fills += 1;
        let issue = self.book_miss_slot(now, now);
        let arrival = backend.fill_line(line, issue);
        self.record_inflight(arrival);
        self.l2.fill(line);
        self.pending.insert(line, arrival);
    }
}

/// A trivially simple backend with a fixed fill latency, used by unit tests
/// in this crate and by the CPU cost-model calibration tests in
/// `relmem-core`.
#[derive(Debug, Clone)]
pub struct FixedLatencyBackend {
    /// Latency charged per fill.
    pub latency: SimTime,
    /// Number of fills served.
    pub fills: u64,
}

impl FixedLatencyBackend {
    /// Creates a backend with the given fill latency.
    pub fn new(latency: SimTime) -> Self {
        FixedLatencyBackend { latency, fills: 0 }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn fill_line(&mut self, _line_addr: u64, ready: SimTime) -> SimTime {
        self.fills += 1;
        ready + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlatformConfig {
        PlatformConfig::tiny_for_tests()
    }

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn l1_hit_after_fill_is_cheap() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(100));
        let first = h.access(0, 8, SimTime::ZERO, &mut mem);
        assert_eq!(first.level, HitLevel::Memory);
        assert!(first.completion >= ns(100));
        let second = h.access(8, 8, first.completion, &mut mem);
        assert_eq!(second.level, HitLevel::L1);
        assert!(second.completion.saturating_sub(first.completion) < ns(5));
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(100));
        let out = h.access(60, 8, SimTime::ZERO, &mut mem);
        assert_eq!(out.level, HitLevel::Memory);
        // Both lines (0 and 64) are filled; the prefetcher may fill more.
        assert!(mem.fills >= 2);
        assert_eq!(h.stats().l1.requests, 2);
        // Both halves now hit in L1.
        assert_eq!(h.access(60, 8, out.completion, &mut mem).level, HitLevel::L1);
    }

    #[test]
    fn l2_serves_lines_evicted_from_l1() {
        let cfg = cfg(); // 1 KB L1 (16 lines), 8 KB L2 (128 lines)
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;
        // Touch 64 distinct lines: far more than L1 holds, fits in L2.
        // Use a 3-line stride so the accesses are neither sequential (which
        // would engage the prefetcher) nor aliased to a single L2 set.
        for i in 0..64u64 {
            now = h.access(i * 192, 4, now, &mut mem).completion;
        }
        let fills_after_first_pass = mem.fills;
        assert_eq!(fills_after_first_pass, 64);
        // Second pass: L1 cannot hold them all, so we must see L2 hits and
        // no new backend fills.
        let mut saw_l2 = false;
        for i in 0..64u64 {
            let out = h.access(i * 192, 4, now, &mut mem);
            now = out.completion;
            if out.level == HitLevel::L2 {
                saw_l2 = true;
            }
            assert_ne!(out.level, HitLevel::Memory, "line {i} should be cached");
        }
        assert!(saw_l2);
        assert_eq!(mem.fills, fills_after_first_pass);
    }

    #[test]
    fn sequential_scan_benefits_from_prefetching() {
        let cfg = PlatformConfig::zcu102();
        let lines = 512u64;

        // With prefetching.
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = FixedLatencyBackend::new(ns(100));
        let mut now = SimTime::ZERO;
        for i in 0..lines {
            now = h.access(i * 64, 8, now, &mut mem).completion;
        }
        let with_pf = now;
        assert!(h.stats().prefetches_issued > 0);
        assert!(h.stats().prefetch_hits > 0);

        // Without prefetching.
        let mut cfg_no = cfg.clone();
        cfg_no.prefetch_streams = 0;
        let mut h2 = CacheHierarchy::new(&cfg_no);
        let mut mem2 = FixedLatencyBackend::new(ns(100));
        let mut now2 = SimTime::ZERO;
        for i in 0..lines {
            now2 = h2.access(i * 64, 8, now2, &mut mem2).completion;
        }
        let without_pf = now2;
        assert!(
            with_pf.as_nanos_f64() < 0.6 * without_pf.as_nanos_f64(),
            "prefetching should hide most of the fixed fill latency: {with_pf} vs {without_pf}"
        );
    }

    #[test]
    fn flush_makes_accesses_cold_again() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(50));
        h.access(0, 8, SimTime::ZERO, &mut mem);
        assert_eq!(h.access(0, 8, ns(1_000), &mut mem).level, HitLevel::L1);
        h.flush();
        assert_eq!(h.access(0, 8, ns(2_000), &mut mem).level, HitLevel::Memory);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut h = CacheHierarchy::new(&cfg());
        let mut mem = FixedLatencyBackend::new(ns(50));
        for i in 0..16u64 {
            h.access(i * 64, 4, SimTime::ZERO, &mut mem);
        }
        let s = h.stats();
        assert_eq!(s.l1.requests, 16);
        assert!(s.l1.misses > 0);
        assert!(s.backend_fills > 0);
        h.reset_stats();
        assert_eq!(h.stats().l1.requests, 0);
    }
}
