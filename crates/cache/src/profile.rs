//! Wall-time attribution of the scan miss path (the `miss-profile` feature).
//!
//! The scan hot loop spends its time in a handful of per-line phases —
//! the L1 tag walk, prefetcher training, prefetch-side L2 bookkeeping,
//! the demand L2 walk and the backend (DRAM/RME) booking — and which
//! lever is worth pulling depends entirely on how the ~tens of
//! nanoseconds split between them. This module measures that split with
//! scoped phase guards placed in `hierarchy.rs`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when the feature is off.** Every entry point compiles
//!    to nothing; the guards are unit structs.
//! 2. **Near-zero cost when compiled in but disabled.** Each guard costs
//!    one relaxed atomic load and a predictable branch. Benchmarks keep
//!    the feature compiled (so one binary produces both the headline
//!    numbers and the breakdown) but only enable it for a dedicated
//!    attribution rep.
//! 3. **Honest numbers when enabled.** Phases are measured with the TSC
//!    (`rdtsc` on x86_64, `Instant` elsewhere) in *self time*: entering a
//!    nested phase suspends the parent, so the backend booking inside a
//!    prefetch issue is charged to the backend, not double-counted. The
//!    guard overhead itself is calibrated with an empty-guard loop at
//!    report time and subtracted per phase boundary, and the report
//!    carries the calibration alongside the shares so the subtraction is
//!    inspectable rather than silent.
//!
//! The profiler is thread-local: each thread attributes its own work.
//! The simulator's measured scans are single-threaded, which is the only
//! use this is built for.

/// The measured phases of one cache-hierarchy access walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// L1 tag walk + MRU install (`Cache::probe_else_fill`).
    L1Walk = 0,
    /// Stream-prefetcher training (`StreamPrefetcher::train`).
    PrefetchTrain = 1,
    /// Prefetch-side L2 bookkeeping: bank booking, tag walk, pending-fill
    /// insert and MSHR booking for issued prefetches (excluding the
    /// nested backend fill, which is charged to [`Phase::BackendFill`]).
    PrefetchIssue = 2,
    /// Demand-side L2 walk: bank booking, tag walk, pending-fill removal
    /// and MSHR booking (again excluding the nested backend fill).
    L2Walk = 3,
    /// Backend line fills — DRAM occupancy booking or RME service — for
    /// both demand misses and prefetches.
    BackendFill = 4,
}

/// Number of phases (length of the accumulator arrays).
pub const NUM_PHASES: usize = 5;

/// Phase names, indexed by `Phase as usize`; stable keys for reports.
pub const PHASE_NAMES: [&str; NUM_PHASES] = [
    "l1_tag_walk",
    "prefetch_train",
    "prefetch_issue",
    "l2_walk",
    "backend_fill",
];

/// One phase's accumulated self time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseReport {
    /// Attributed self time in seconds, guard overhead subtracted.
    pub seconds: f64,
    /// Raw attributed self time in seconds, before the overhead
    /// subtraction.
    pub raw_seconds: f64,
    /// Number of times the phase was entered.
    pub entries: u64,
}

/// A full attribution report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-phase self times, indexed like [`PHASE_NAMES`].
    pub phases: [PhaseReport; NUM_PHASES],
    /// Estimated cost of one guard enter/exit pair in seconds (the
    /// calibration subtracted from each phase entry).
    pub guard_overhead_seconds: f64,
}

impl ProfileReport {
    /// Total attributed (overhead-corrected) seconds across phases.
    pub fn attributed_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }
}

#[cfg(feature = "miss-profile")]
mod imp {
    use super::{NUM_PHASES, Phase, PhaseReport, ProfileReport};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Whether guards record anything. Relaxed is enough: the flag is
    /// flipped between measurement passes, never concurrently with them.
    static ENABLED: AtomicBool = AtomicBool::new(false);

    thread_local! {
        /// Self-time tick accumulator per phase.
        static TICKS: [Cell<u64>; NUM_PHASES] = Default::default();
        /// Entry count per phase.
        static ENTRIES: [Cell<u64>; NUM_PHASES] = Default::default();
        /// The phase currently being charged (`usize::MAX` = outside any
        /// phase, i.e. charged to the caller's "other" remainder).
        static CURRENT: Cell<usize> = const { Cell::new(usize::MAX) };
        /// Tick of the last phase boundary.
        static LAST_SWITCH: Cell<u64> = const { Cell::new(0) };
    }

    /// Monotonic tick source: the TSC where available, `Instant`
    /// nanoseconds elsewhere. Ticks are converted to seconds through
    /// [`calibrate_tick_seconds`], so the unit never leaks.
    #[inline(always)]
    fn ticks() -> u64 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: RDTSC is unprivileged and side-effect-free.
        unsafe {
            core::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            use std::time::Instant;
            thread_local! {
                static EPOCH: Instant = Instant::now();
            }
            EPOCH.with(|e| e.elapsed().as_nanos() as u64)
        }
    }

    /// Charges the span since the last boundary to the current phase and
    /// makes `next` current. Returns the previous phase index.
    #[inline]
    fn switch_to(next: usize) -> usize {
        let now = ticks();
        let prev = CURRENT.with(|c| c.replace(next));
        let last = LAST_SWITCH.with(|l| l.replace(now));
        if prev != usize::MAX {
            TICKS.with(|t| {
                let cell = &t[prev];
                cell.set(cell.get().wrapping_add(now.wrapping_sub(last)));
            });
        }
        prev
    }

    /// Scoped guard charging its lifetime (minus nested guards) to one
    /// phase.
    pub struct PhaseGuard {
        /// Phase to restore on drop; `usize::MAX - 1` marks an inert
        /// guard created while profiling was disabled.
        prev: usize,
    }

    const INERT: usize = usize::MAX - 1;

    impl Drop for PhaseGuard {
        #[inline]
        fn drop(&mut self) {
            if self.prev != INERT {
                switch_to(self.prev);
            }
        }
    }

    /// Whether recording is currently enabled. Hot callers branch on this
    /// once and take a guard-free code path when it is off, instead of
    /// paying one atomic load per guard site.
    #[inline(always)]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Enters `phase` (self-time accounting) until the guard drops.
    #[inline]
    pub fn phase(phase: Phase) -> PhaseGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return PhaseGuard { prev: INERT };
        }
        let idx = phase as usize;
        ENTRIES.with(|e| {
            let cell = &e[idx];
            cell.set(cell.get() + 1);
        });
        PhaseGuard {
            prev: switch_to(idx),
        }
    }

    /// Turns recording on or off (off by default).
    pub fn set_enabled(on: bool) {
        if on {
            // Restart the boundary clock so a span from a previous
            // session is never charged across the gap.
            CURRENT.with(|c| c.set(usize::MAX));
            LAST_SWITCH.with(|l| l.set(ticks()));
        }
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Clears the current thread's accumulators.
    pub fn reset() {
        TICKS.with(|t| t.iter().for_each(|c| c.set(0)));
        ENTRIES.with(|e| e.iter().for_each(|c| c.set(0)));
        CURRENT.with(|c| c.set(usize::MAX));
        LAST_SWITCH.with(|l| l.set(ticks()));
    }

    /// Seconds per tick, measured against `Instant` over a short busy
    /// wait (the TSC frequency is not architecturally discoverable).
    fn calibrate_tick_seconds() -> f64 {
        use std::time::Instant;
        let wall_start = Instant::now();
        let t0 = ticks();
        // ~2 ms busy wait: long enough to swamp both clocks' read costs.
        while wall_start.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let dt = ticks().wrapping_sub(t0);
        let secs = wall_start.elapsed().as_secs_f64();
        if dt == 0 { 0.0 } else { secs / dt as f64 }
    }

    /// Measures the self-time cost of one empty guard pair, in ticks.
    fn calibrate_guard_ticks() -> f64 {
        const N: u64 = 200_000;
        reset();
        set_enabled(true);
        for _ in 0..N {
            let _g = phase(Phase::L1Walk);
        }
        set_enabled(false);
        let ticks = TICKS.with(|t| t[Phase::L1Walk as usize].get());
        ticks as f64 / N as f64
    }

    /// Produces the report for the current thread's accumulated phases,
    /// with per-entry guard overhead calibrated and subtracted. Clears
    /// nothing; call [`reset`] to start a fresh session.
    pub fn report() -> ProfileReport {
        let snapshot_ticks: Vec<u64> = TICKS.with(|t| t.iter().map(Cell::get).collect());
        let snapshot_entries: Vec<u64> = ENTRIES.with(|e| e.iter().map(Cell::get).collect());
        let tick_secs = calibrate_tick_seconds();
        let guard_ticks = calibrate_guard_ticks();
        // Calibration ran through the accumulators; restore the snapshot.
        TICKS.with(|t| {
            for (cell, &v) in t.iter().zip(&snapshot_ticks) {
                cell.set(v);
            }
        });
        ENTRIES.with(|e| {
            for (cell, &v) in e.iter().zip(&snapshot_entries) {
                cell.set(v);
            }
        });
        let mut phases = [PhaseReport::default(); NUM_PHASES];
        for (i, out) in phases.iter_mut().enumerate() {
            let raw = snapshot_ticks[i] as f64 * tick_secs;
            let overhead = guard_ticks * snapshot_entries[i] as f64 * tick_secs;
            *out = PhaseReport {
                seconds: (raw - overhead).max(0.0),
                raw_seconds: raw,
                entries: snapshot_entries[i],
            };
        }
        ProfileReport {
            phases,
            guard_overhead_seconds: guard_ticks * tick_secs,
        }
    }
}

#[cfg(not(feature = "miss-profile"))]
mod imp {
    use super::{Phase, ProfileReport};

    /// Inert guard; the compiler erases it entirely.
    pub struct PhaseGuard;

    /// No-op without the `miss-profile` feature.
    #[inline(always)]
    pub fn phase(_phase: Phase) -> PhaseGuard {
        PhaseGuard
    }

    /// Always false without the `miss-profile` feature.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `miss-profile` feature.
    pub fn set_enabled(_on: bool) {}

    /// No-op without the `miss-profile` feature.
    pub fn reset() {}

    /// Empty report without the `miss-profile` feature.
    pub fn report() -> ProfileReport {
        ProfileReport::default()
    }
}

pub use imp::{PhaseGuard, enabled, phase, report, reset, set_enabled};

#[cfg(all(test, feature = "miss-profile"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_guards_record_nothing() {
        reset();
        set_enabled(false);
        for _ in 0..100 {
            let _g = phase(Phase::L2Walk);
        }
        let r = report();
        assert_eq!(r.phases[Phase::L2Walk as usize].entries, 0);
        assert_eq!(r.phases[Phase::L2Walk as usize].raw_seconds, 0.0);
    }

    #[test]
    fn nested_phases_attribute_self_time() {
        reset();
        set_enabled(true);
        {
            let _outer = phase(Phase::PrefetchIssue);
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = phase(Phase::BackendFill);
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        set_enabled(false);
        let r = report();
        let outer = r.phases[Phase::PrefetchIssue as usize];
        let inner = r.phases[Phase::BackendFill as usize];
        assert_eq!(outer.entries, 1);
        assert_eq!(inner.entries, 1);
        // Each phase holds its own ~4 ms, not the nested sum.
        assert!(outer.seconds > 0.002 && outer.seconds < 0.008, "{outer:?}");
        assert!(inner.seconds > 0.002 && inner.seconds < 0.008, "{inner:?}");
        reset();
    }
}
