//! The shared, banked L2 cache behind every core's private L1.
//!
//! [`SharedL2`] owns what all cores see in common: the L2 tag store, the
//! pending-fill table (lines whose backend fill is still in flight), and a
//! pool of bank servers that model *contention* — when several cores are
//! simulated, lookups that map to the same bank serialize on its occupancy.
//!
//! # Contention model
//!
//! Each lookup (demand or prefetch) books the line's bank — selected by the
//! line number modulo [`PlatformConfig::l2_banks`] — for
//! `l2_bank_occupancy_cycles` CPU cycles, starting no earlier than the time
//! the request reaches the L2. Occupancy is shorter than the hit *latency*
//! (`l2.hit_latency_cycles`): the bank pipeline accepts a new lookup every
//! few cycles even though each one takes the full latency to answer, the
//! same occupancy-vs-latency split the DRAM model uses for tCCD vs tCAS.
//! The delay a request suffers waiting for its bank is reported per core in
//! [`HierarchyStats::l2_contention_delay`](crate::stats::HierarchyStats) and
//! in aggregate in [`SharedL2Stats`].
//!
//! # Single-core bypass
//!
//! With `cores == 1` the bank booking is bypassed entirely, keeping every
//! timestamp bit-identical to the pre-multi-core hierarchy (which charged
//! no bank occupancy at all) — the cross-path equivalence tests assert
//! this against the preserved naive scan. Note the bypass is a fidelity
//! choice, not a physical law: a core's stream prefetches are issued at
//! the same instant as its demand lookup, so even one core *can* collide
//! with itself on a bank. On a multi-core `SharedL2` that self-contention
//! is modelled (and shows up in the issuing core's counters alongside
//! genuine cross-core contention, exactly as a hardware bank-conflict
//! counter would report it); on a single-core build it is below the
//! model's resolution, as it was in the paper-faithful original.
//!
//! ```
//! use relmem_cache::SharedL2;
//! use relmem_sim::PlatformConfig;
//!
//! let cfg = PlatformConfig::zcu102();
//! let l2 = SharedL2::new(&cfg, 4);
//! assert!(l2.is_contended());
//! assert_eq!(SharedL2::new(&cfg, 1).is_contended(), false);
//! ```

use relmem_sim::{MultiResource, PlatformConfig, SimTime, TraceEvent, TraceEventKind, Tracer, Track};

use crate::cache::Cache;

/// Aggregate contention counters of the shared L2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedL2Stats {
    /// Lookups presented to the banks (demand + prefetch, all cores).
    pub lookups: u64,
    /// Lookups that found their bank busy and had to wait.
    pub contended_lookups: u64,
    /// Total time lookups spent waiting for a busy bank.
    pub contention_delay: SimTime,
}

/// One core's share of the shared-L2 bank traffic — the per-stream
/// attribution the HTAP workload harness reports (each core runs one query
/// stream, so core index ≡ stream index). The sum over cores equals
/// [`SharedL2Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreL2Share {
    /// Bank lookups this core presented (demand + prefetch).
    pub lookups: u64,
    /// Of those, how many found their bank busy.
    pub contended_lookups: u64,
    /// Total time this core's lookups spent waiting for a busy bank.
    pub contention_delay: SimTime,
}

/// The shared L2: tag store + pending fills + banked contention model.
#[derive(Debug, Clone)]
pub struct SharedL2 {
    cache: Cache,
    /// Arrival times of fills still in flight (typically prefetches),
    /// indexed by the owning line's way slot in `cache` (`SimTime::ZERO` =
    /// none). Keying by slot instead of by line address means the set walk
    /// that locates a line has already located its pending entry — no
    /// second, hashed lookup — and stale entries die structurally: a fill
    /// that recycles a way clears the slot, so the departed occupant's
    /// arrival can never serve a later refill. (An earlier revision kept
    /// an open-addressed line-address map and dropped entries at eviction
    /// for the same guarantee, paying the extra probe on every walk.)
    pending: Vec<SimTime>,
    /// Number of non-zero entries in `pending`.
    pending_len: usize,
    banks: MultiResource,
    /// Whether bank occupancy is modelled (true iff built for > 1 core).
    contended: bool,
    line_shift: u32,
    bank_occupancy: SimTime,
    stats: SharedL2Stats,
    /// Per-core traffic attribution (indexed by core, grown on demand).
    per_core: Vec<CoreL2Share>,
    /// Observability hook (no-op unless recording; see `relmem_sim::trace`).
    tracer: Tracer,
}

impl SharedL2 {
    /// Builds the shared L2 described by `cfg`, serving `cores` cores.
    /// Contention is modelled only when `cores > 1` (see module docs).
    pub fn new(cfg: &PlatformConfig, cores: usize) -> Self {
        let cache = Cache::new(cfg.l2);
        SharedL2 {
            pending: vec![SimTime::ZERO; cache.slots()],
            pending_len: 0,
            cache,
            banks: MultiResource::new("l2-banks", cfg.l2_banks.max(1)),
            contended: cores > 1,
            line_shift: cfg.l2.line_bytes.trailing_zeros(),
            bank_occupancy: cfg.cpu_clock().cycles(cfg.l2_bank_occupancy_cycles),
            stats: SharedL2Stats::default(),
            per_core: vec![CoreL2Share::default(); cores],
            tracer: Tracer::new(),
        }
    }

    /// The cache's trace hook (recording is controlled by the system).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Whether the bank contention model is active.
    pub fn is_contended(&self) -> bool {
        self.contended
    }

    /// Aggregate contention counters.
    pub fn stats(&self) -> &SharedL2Stats {
        &self.stats
    }

    /// Per-core attribution of the bank traffic (index = core = stream).
    pub fn core_shares(&self) -> &[CoreL2Share] {
        &self.per_core
    }

    /// Resets contention counters (keeps cache contents and occupancy).
    pub fn reset_stats(&mut self) {
        self.stats = SharedL2Stats::default();
        self.per_core.iter_mut().for_each(|s| *s = CoreL2Share::default());
    }

    /// The bank a line maps to.
    #[inline]
    pub fn bank_of(&self, line: u64) -> usize {
        ((line >> self.line_shift) % self.banks.capacity() as u64) as usize
    }

    /// Books the line's bank for one lookup arriving at `ready`. Returns
    /// `(start, waited)`: the time the lookup actually starts and how long
    /// it waited for the bank (`(ready, 0)` when uncontended). The caller
    /// charges the hit latency on top of the returned start and records
    /// `waited` in its own per-core counters; `core` attributes the lookup
    /// in this cache's own [`core_shares`](Self::core_shares) breakdown.
    #[inline(always)]
    pub fn book_bank(&mut self, core: usize, line: u64, ready: SimTime) -> (SimTime, SimTime) {
        if !self.contended {
            return (ready, SimTime::ZERO);
        }
        self.stats.lookups += 1;
        if self.per_core.len() <= core {
            self.per_core.resize(core + 1, CoreL2Share::default());
        }
        self.per_core[core].lookups += 1;
        let bank = self.bank_of(line);
        let (start, _end) = self.banks.acquire_server(bank, ready, self.bank_occupancy);
        let waited = start.saturating_sub(ready);
        if !waited.is_zero() {
            self.stats.contended_lookups += 1;
            self.stats.contention_delay += waited;
            self.per_core[core].contended_lookups += 1;
            self.per_core[core].contention_delay += waited;
        }
        self.tracer.emit(|| {
            TraceEvent::instant(
                Track::L2Bank(bank as u32),
                TraceEventKind::L2BankBook,
                start,
                core as u64,
                waited.as_picos(),
            )
        });
        (start, waited)
    }

    /// Dirty-aware probe-or-install, exposing the touched way's slot index
    /// so the caller can address this line's pending-fill entry without a
    /// second lookup (see [`Cache::probe_else_fill_dirty_slot`]). `None`
    /// in the second component means a hit.
    #[inline(always)]
    pub(crate) fn walk(&mut self, line: u64) -> (usize, Option<(Option<u64>, bool)>) {
        self.cache.probe_else_fill_dirty_slot(line)
    }

    /// Marks a resident line dirty (a CPU write touched it). Never alters
    /// LRU order, bank occupancy or counters.
    #[inline]
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        self.cache.mark_dirty(line)
    }

    /// Records that the line occupying `slot` has a fill in flight until
    /// `arrival`. A `SimTime::ZERO` arrival is indistinguishable from "no
    /// pending fill" — which is exactly how the hierarchy already treats
    /// it (a zero arrival never counts as a prefetch hit nor delays a
    /// completion), so nothing observable changes.
    #[inline(always)]
    pub(crate) fn pending_set(&mut self, slot: usize, arrival: SimTime) {
        debug_assert!(self.pending[slot].is_zero(), "slot already pending");
        if !arrival.is_zero() {
            self.pending_len += 1;
        }
        self.pending[slot] = arrival;
    }

    /// Takes `slot`'s in-flight arrival time, leaving the slot clear.
    /// Returns `SimTime::ZERO` when no fill was pending.
    #[inline(always)]
    pub(crate) fn pending_take(&mut self, slot: usize) -> SimTime {
        let arrival = self.pending[slot];
        if !arrival.is_zero() {
            self.pending[slot] = SimTime::ZERO;
            self.pending_len -= 1;
        }
        arrival
    }

    /// Number of pending (in-flight prefetch) fills currently tracked.
    pub fn pending_fills(&self) -> usize {
        self.pending_len
    }

    /// The L2 tag store (read access, for capacity checks in tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Flushes the tag store, forgets pending fills and frees every bank.
    pub fn flush(&mut self) {
        self.cache.flush();
        self.pending.fill(SimTime::ZERO);
        self.pending_len = 0;
        self.banks.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn uncontended_booking_is_the_identity() {
        let cfg = PlatformConfig::zcu102();
        let mut l2 = SharedL2::new(&cfg, 1);
        // Back-to-back same-bank requests at the same instant: no delay,
        // no bookkeeping.
        assert_eq!(l2.book_bank(0, 0, ns(10)), (ns(10), SimTime::ZERO));
        assert_eq!(l2.book_bank(0, 0, ns(10)), (ns(10), SimTime::ZERO));
        assert_eq!(l2.stats(), &SharedL2Stats::default());
    }

    #[test]
    fn contended_same_bank_lookups_serialize() {
        let cfg = PlatformConfig::zcu102();
        let mut l2 = SharedL2::new(&cfg, 2);
        let occ = cfg.cpu_clock().cycles(cfg.l2_bank_occupancy_cycles);
        assert_eq!(l2.book_bank(0, 0, ns(10)), (ns(10), SimTime::ZERO));
        // Same line → same bank → the second lookup waits out the occupancy.
        assert_eq!(l2.book_bank(0, 0, ns(10)), (ns(10) + occ, occ));
        assert_eq!(l2.stats().contended_lookups, 1);
        assert_eq!(l2.stats().contention_delay, occ);
    }

    #[test]
    fn different_banks_do_not_contend() {
        let cfg = PlatformConfig::zcu102();
        let mut l2 = SharedL2::new(&cfg, 2);
        let line = 64u64;
        assert_ne!(l2.bank_of(0), l2.bank_of(line));
        l2.book_bank(0, 0, ns(10));
        assert_eq!(l2.book_bank(0, line, ns(10)), (ns(10), SimTime::ZERO));
        assert_eq!(l2.stats().contended_lookups, 0);
    }

    #[test]
    fn per_core_shares_attribute_contention() {
        let cfg = PlatformConfig::zcu102();
        let mut l2 = SharedL2::new(&cfg, 2);
        let occ = cfg.cpu_clock().cycles(cfg.l2_bank_occupancy_cycles);
        l2.book_bank(0, 0, ns(10));
        l2.book_bank(1, 0, ns(10)); // same bank: core 1 waits out core 0
        assert_eq!(l2.core_shares()[0].lookups, 1);
        assert_eq!(l2.core_shares()[0].contended_lookups, 0);
        assert_eq!(l2.core_shares()[1].contended_lookups, 1);
        assert_eq!(l2.core_shares()[1].contention_delay, occ);
        // The per-core shares sum to the aggregate counters.
        let total: u64 = l2.core_shares().iter().map(|s| s.lookups).sum();
        assert_eq!(total, l2.stats().lookups);
        l2.reset_stats();
        assert_eq!(l2.core_shares()[1], CoreL2Share::default());
    }

    #[test]
    fn flush_frees_banks_and_pending() {
        let cfg = PlatformConfig::zcu102();
        let mut l2 = SharedL2::new(&cfg, 2);
        l2.book_bank(0, 0, ns(10));
        let (slot, filled) = l2.walk(0);
        assert!(filled.is_some(), "cold walk installs the line");
        l2.pending_set(slot, ns(99));
        assert_eq!(l2.pending_fills(), 1);
        assert_eq!(l2.pending_take(slot), ns(99));
        assert_eq!(l2.pending_take(slot), SimTime::ZERO, "take clears");
        l2.pending_set(slot, ns(99));
        l2.flush();
        assert_eq!(l2.pending_fills(), 0);
        assert_eq!(l2.book_bank(0, 0, ns(10)), (ns(10), SimTime::ZERO));
    }
}
