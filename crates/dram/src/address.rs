//! Physical address → DRAM coordinate mapping.
//!
//! The controller needs to know which bank and which DRAM row a request
//! touches in order to model open-row hits and bank-level parallelism. We
//! use the common "row : bank : column" interleaving where consecutive DRAM
//! rows of the same bank are `banks × row_bytes` apart, which spreads
//! sequential streams across banks — the behaviour the RME's Requestor
//! exploits when it issues outstanding fetches.
//!
//! # Bank-index hashing
//!
//! The plain interleaving has a pathology: two streams whose start
//! addresses differ by a multiple of `banks × row_bytes` (e.g. the shards
//! of a sharded scan over a power-of-two-sized table) land on the *same*
//! bank at every step and serialize there while the other banks idle. Real
//! controllers break the pattern by hashing higher address bits into the
//! bank index; [`AddressMapping::with_hash`] implements the standard
//! row-XOR permutation (`bank = bank_bits ⊕ row_bits`, an additive
//! rotation for non-power-of-two bank counts). The permutation is exact —
//! [`encode`](AddressMapping::encode) inverts it — and is enabled by
//! default through `DramConfig::xor_bank_hash`.

/// Maps physical addresses to (bank, row, column) coordinates.
///
/// Decoding runs once per simulated DRAM access, so the power-of-two
/// geometries every real configuration uses are decoded with shifts and
/// masks; arbitrary geometries (exercised by the property tests) fall back
/// to division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    banks: usize,
    row_bytes: usize,
    /// `log2(row_bytes)` when `row_bytes` is a power of two.
    row_shift: Option<u32>,
    /// `banks - 1` when `banks` is a power of two.
    bank_mask: Option<u64>,
    /// `log2(banks)` when `banks` is a power of two.
    bank_shift: u32,
    /// Whether the row-XOR bank permutation is applied (see module docs).
    xor_hash: bool,
}

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCoord {
    /// Bank index in `[0, banks)`.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub column: usize,
}

impl AddressMapping {
    /// Creates a mapping for `banks` banks of `row_bytes`-byte rows with
    /// the plain "row : bank : column" interleaving (no bank hashing).
    pub fn new(banks: usize, row_bytes: usize) -> Self {
        AddressMapping::with_hash(banks, row_bytes, false)
    }

    /// Creates a mapping with the bank-index hash switched on or off (see
    /// the module docs for what the hash buys).
    pub fn with_hash(banks: usize, row_bytes: usize, xor_hash: bool) -> Self {
        assert!(banks >= 1 && row_bytes >= 1);
        AddressMapping {
            banks,
            row_bytes,
            row_shift: row_bytes
                .is_power_of_two()
                .then(|| row_bytes.trailing_zeros()),
            bank_mask: banks.is_power_of_two().then_some(banks as u64 - 1),
            bank_shift: banks.trailing_zeros(),
            xor_hash,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// DRAM row size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Decodes an address.
    #[inline]
    pub fn decode(&self, addr: u64) -> DramCoord {
        let (row_global, column) = match self.row_shift {
            Some(shift) => (addr >> shift, (addr & (self.row_bytes as u64 - 1)) as usize),
            None => (
                addr / self.row_bytes as u64,
                (addr % self.row_bytes as u64) as usize,
            ),
        };
        let (bank_raw, row) = match self.bank_mask {
            Some(mask) => (
                (row_global & mask) as usize,
                row_global >> self.bank_shift,
            ),
            None => (
                (row_global % self.banks as u64) as usize,
                row_global / self.banks as u64,
            ),
        };
        DramCoord {
            bank: self.hash_bank(bank_raw, row),
            row,
            column,
        }
    }

    /// Applies the bank permutation for a given DRAM row: XOR with the low
    /// row bits when the bank count is a power of two, an additive rotation
    /// by `row mod banks` otherwise. Identity when hashing is off.
    #[inline]
    fn hash_bank(&self, bank_raw: usize, row: u64) -> usize {
        if !self.xor_hash {
            return bank_raw;
        }
        match self.bank_mask {
            Some(mask) => bank_raw ^ (row & mask) as usize,
            None => (bank_raw + (row % self.banks as u64) as usize) % self.banks,
        }
    }

    /// Inverts [`hash_bank`](Self::hash_bank): recovers the raw
    /// interleaving index from a (hashed) bank number and its row.
    #[inline]
    fn unhash_bank(&self, bank: usize, row: u64) -> usize {
        if !self.xor_hash {
            return bank;
        }
        match self.bank_mask {
            // XOR is an involution.
            Some(mask) => bank ^ (row & mask) as usize,
            None => {
                let rot = (row % self.banks as u64) as usize;
                (bank + self.banks - rot) % self.banks
            }
        }
    }

    /// Re-encodes a coordinate back into an address (inverse of
    /// [`decode`](Self::decode)).
    pub fn encode(&self, coord: DramCoord) -> u64 {
        let bank_raw = self.unhash_bank(coord.bank, coord.row) as u64;
        let row_global = coord.row * self.banks as u64 + bank_raw;
        row_global * self.row_bytes as u64 + coord.column as u64
    }

    /// Splits a byte range `[addr, addr+len)` into per-DRAM-row chunks, so a
    /// long burst that crosses a row boundary is charged as two accesses.
    /// Returns a lazy iterator: the common case (a cache-line fill inside
    /// one DRAM row) allocates nothing on this per-miss path.
    pub fn split_by_row(&self, addr: u64, len: usize) -> RowChunks {
        RowChunks {
            cur: addr,
            end: addr + len as u64,
            row_bytes: self.row_bytes as u64,
            row_mask: self.row_shift.map(|_| self.row_bytes as u64 - 1),
        }
    }
}

/// Iterator over the per-DRAM-row chunks of a byte range (see
/// [`AddressMapping::split_by_row`]).
#[derive(Debug, Clone)]
pub struct RowChunks {
    cur: u64,
    end: u64,
    row_bytes: u64,
    /// `row_bytes - 1` when the row size is a power of two, replacing the
    /// per-chunk division with a mask on this per-access path.
    row_mask: Option<u64>,
}

impl Iterator for RowChunks {
    type Item = (u64, usize);

    #[inline]
    fn next(&mut self) -> Option<(u64, usize)> {
        if self.cur >= self.end {
            return None;
        }
        let row_end = match self.row_mask {
            Some(mask) => (self.cur | mask) + 1,
            None => (self.cur / self.row_bytes + 1) * self.row_bytes,
        };
        let chunk_end = row_end.min(self.end);
        let chunk = (self.cur, (chunk_end - self.cur) as usize);
        self.cur = chunk_end;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decode_spreads_consecutive_rows_across_banks() {
        let m = AddressMapping::new(4, 1024);
        let a = m.decode(0);
        let b = m.decode(1024);
        let c = m.decode(2048);
        assert_eq!(a.bank, 0);
        assert_eq!(b.bank, 1);
        assert_eq!(c.bank, 2);
        assert_eq!(a.row, 0);
        assert_eq!(m.decode(4 * 1024).bank, 0);
        assert_eq!(m.decode(4 * 1024).row, 1);
    }

    #[test]
    fn column_is_offset_within_row() {
        let m = AddressMapping::new(8, 2048);
        let c = m.decode(2048 * 3 + 100);
        assert_eq!(c.column, 100);
    }

    #[test]
    fn split_by_row_respects_boundaries() {
        let m = AddressMapping::new(2, 128);
        let chunks: Vec<_> = m.split_by_row(120, 20).collect();
        assert_eq!(chunks, vec![(120, 8), (128, 12)]);
        let single: Vec<_> = m.split_by_row(0, 64).collect();
        assert_eq!(single, vec![(0, 64)]);
    }

    #[test]
    fn xor_hash_decorrelates_power_of_two_strides() {
        // Addresses `banks × row_bytes` apart share a bank under the plain
        // interleaving; the hash sends each to a different bank.
        let plain = AddressMapping::new(16, 2048);
        let hashed = AddressMapping::with_hash(16, 2048, true);
        let stride = 16 * 2048u64;
        let plain_banks: std::collections::BTreeSet<usize> =
            (0..16u64).map(|i| plain.decode(i * stride).bank).collect();
        let hashed_banks: std::collections::BTreeSet<usize> =
            (0..16u64).map(|i| hashed.decode(i * stride).bank).collect();
        assert_eq!(plain_banks.len(), 1);
        assert_eq!(hashed_banks.len(), 16);
        // Within one DRAM row nothing changes: the permutation only mixes
        // row bits into the bank index.
        assert_eq!(hashed.decode(100).column, 100);
        assert_eq!(hashed.decode(0).row, hashed.decode(100).row);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(addr in 0u64..1_000_000_000u64, banks in 1usize..32, row_pow in 7u32..14) {
            let m = AddressMapping::new(banks, 1 << row_pow);
            let coord = m.decode(addr);
            prop_assert_eq!(m.encode(coord), addr);
            prop_assert!(coord.bank < banks);
            prop_assert!(coord.column < (1 << row_pow));
        }

        /// The hashed mapping stays a bijection for every geometry,
        /// power-of-two bank counts (XOR) and otherwise (rotation) alike.
        #[test]
        fn hashed_encode_decode_roundtrip(addr in 0u64..1_000_000_000u64, banks in 1usize..32, row_pow in 7u32..14) {
            let m = AddressMapping::with_hash(banks, 1 << row_pow, true);
            let coord = m.decode(addr);
            prop_assert_eq!(m.encode(coord), addr);
            prop_assert!(coord.bank < banks);
            prop_assert!(coord.column < (1 << row_pow));
        }

        #[test]
        fn split_covers_range_exactly(addr in 0u64..1_000_000u64, len in 1usize..10_000) {
            let m = AddressMapping::new(16, 2048);
            let chunks: Vec<_> = m.split_by_row(addr, len).collect();
            let total: usize = chunks.iter().map(|(_, l)| *l).sum();
            prop_assert_eq!(total, len);
            prop_assert_eq!(chunks[0].0, addr);
            // Chunks are contiguous.
            for w in chunks.windows(2) {
                prop_assert_eq!(w[0].0 + w[0].1 as u64, w[1].0);
            }
        }
    }
}
