//! Byte-accurate physical memory and a DRAM controller timing model.
//!
//! The Relational Memory paper's entire argument is about *what* crosses the
//! memory system and *how well* its latency can be overlapped, so this crate
//! models the two things that matter:
//!
//! * [`PhysicalMemory`] — the actual bytes of main memory. Row-major tables
//!   live here, and the RME really reads these bytes when it packs column
//!   groups, so functional correctness is testable end to end.
//! * [`DramController`] — a transaction-level timing model with per-bank
//!   open-row state, activate/CAS/precharge latencies, a shared data bus,
//!   and bank-level parallelism. Requests carry a `ready` time, so callers
//!   that issue multiple outstanding transactions (the MLP revision of the
//!   RME, the CPU's stream prefetcher) naturally overlap latency until the
//!   bus or the banks saturate.
//! * [`CycleAccurateDram`] — a command-level model (per-bank ACT/PRE/RD/WR
//!   state machines, tFAW activate throttling, periodic refresh, a bounded
//!   transaction queue) for experiments that need command-level effects the
//!   occupancy model folds into constants.
//!
//! Both timing models sit behind the [`DramModel`] dispatcher, selected per
//! run by `DramConfig::model`; they share the address mapping, the request
//! and completion types and the [`DramStats`] counters.

pub mod address;
pub mod controller;
pub mod controller_ca;
pub mod model;
pub mod phys;
pub mod request;

pub use address::{AddressMapping, DramCoord};
pub use controller::{DramController, DramStats};
pub use controller_ca::CycleAccurateDram;
pub use model::DramModel;
pub use phys::PhysicalMemory;
pub use request::{Completion, MemRequest, ReqKind, RequestId, Requestor};
