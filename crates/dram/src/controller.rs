//! DRAM controller timing model.
//!
//! The controller owns per-bank open-row state, a pool of bank "servers"
//! (bank-level parallelism), and a single shared data bus. A request is
//! serviced as:
//!
//! 1. split the byte range by DRAM row (a burst never spans rows for
//!    timing purposes),
//! 2. for each chunk, occupy the owning bank for the activate/CAS latency
//!    (row-buffer hit or miss),
//! 3. stream the chunk's beats over the shared data bus.
//!
//! Because every request carries its own `ready` time and the resources are
//! occupancy-tracked, callers that keep many requests in flight overlap the
//! per-bank latencies and end up limited by the data bus — exactly the
//! behaviour that separates the paper's BSL (one outstanding transaction)
//! from MLP (sixteen outstanding transactions).
//!
//! # Multi-requestor arbitration
//!
//! The controller is shared by every CPU core's cache hierarchy *and* the
//! RME's fetch units. No request queue is modelled: arbitration emerges
//! from the occupancy tracking — a request starts service at
//! `max(ready, resource_free)` on its bank and the bus, so concurrent
//! requestors interleave in ready-time order and contend exactly where the
//! hardware contends (same bank, shared data bus). Each request carries a
//! [`Requestor`] tag so traffic can be attributed per core in
//! [`DramStats::per_core_accesses`].

use relmem_sim::{DramConfig, PriorityResource, SimTime, TraceEvent, TraceEventKind, Tracer, Track};

use crate::address::AddressMapping;
use crate::request::{Completion, MemRequest, ReqKind, RequestId, Requestor};

/// Aggregate statistics kept by the controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced (after row splitting each chunk counts once).
    pub accesses: u64,
    /// Chunks that hit an open row.
    pub row_hits: u64,
    /// Chunks that required activate (+ precharge) first.
    pub row_misses: u64,
    /// Bytes actually moved over the data bus (rounded up to bus beats).
    pub bytes_transferred: u64,
    /// Bus beats transferred.
    pub beats: u64,
    /// Accesses attributed to each CPU core (indexed by core; grown on
    /// demand). All single-core traffic lands in slot 0.
    pub per_core_accesses: Vec<u64>,
    /// Accesses issued by the RME's fetch units.
    pub rme_accesses: u64,
    /// Write requests serviced (after row splitting, like
    /// [`accesses`](Self::accesses)). The occupancy model's timing is
    /// symmetric in the request kind, so this is attribution only; the
    /// cycle-accurate model additionally charges tWR/tWTR to these.
    pub writes: u64,
    /// Per-bank refresh windows applied (cycle-accurate model only: each
    /// bank is refreshed once per tREFI; a refresh closes the open row and
    /// stalls the bank for tRFC). Always zero under the occupancy model.
    pub refreshes: u64,
    /// Activates delayed by the four-activate window, tFAW (cycle-accurate
    /// model only).
    pub tfaw_stalls: u64,
    /// Requests that stalled at admission because the transaction queue was
    /// full (cycle-accurate model only).
    pub queue_stalls: u64,
    /// Sum over all requests of the number of transactions already in
    /// flight at admission (cycle-accurate model only); divide by
    /// [`accesses`](Self::accesses) for the mean queue occupancy — or use
    /// [`avg_queue_occupancy`](Self::avg_queue_occupancy).
    pub queue_occupancy_sum: u64,
    /// Maximum transactions simultaneously in flight, sampled at each
    /// admission *including* the request being admitted (cycle-accurate
    /// model only). Equal to the configured queue depth once the
    /// transaction queue has saturated at least once.
    pub queue_occupancy_max: u64,
    /// Writes that entered through the asynchronous
    /// [`issue`](DramController::issue) path (cache dirty-line writebacks).
    /// A subset of [`writes`](Self::writes): explicit synchronous writes
    /// (transaction commit durability) count only there.
    pub writebacks: u64,
    /// Cross-request FR-FCFS reorder events (cycle-accurate model only):
    /// a read scheduled past at least one older buffered write, or a
    /// buffered write promoted ahead of an older one because it hits an
    /// open row. Always zero under the occupancy model and on the
    /// synchronous path, where completions are consumed in arrival order.
    pub fr_fcfs_reorders: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean transactions in flight at admission (cycle-accurate model only;
    /// `0.0` under the occupancy model, which has no transaction queue).
    pub fn avg_queue_occupancy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.queue_occupancy_sum as f64 / self.accesses as f64
        }
    }
}

/// The pending/drained buffers behind the asynchronous `issue` /
/// `drain_completions` API, shared by both timing models. Ids are handed
/// out monotonically; draining moves every completion that finished at or
/// before `now` into a reusable buffer, ordered by `(finish, id)` so the
/// event stream the interleaver sees is deterministic regardless of how
/// the underlying schedule interleaved banks.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompletionQueue {
    next_id: u64,
    pending: Vec<(RequestId, Completion)>,
    drained: Vec<(RequestId, Completion)>,
}

impl CompletionQueue {
    /// Allocates the next request id.
    pub(crate) fn next_id(&mut self) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Records a serviced request awaiting retrieval.
    pub(crate) fn push(&mut self, id: RequestId, completion: Completion) {
        self.pending.push((id, completion));
    }

    /// Moves every completion with `finish <= now` into the drained buffer
    /// and returns it, ordered by `(finish, id)`.
    pub(crate) fn drain_due(&mut self, now: SimTime) -> &[(RequestId, Completion)] {
        self.drained.clear();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].1.finish <= now {
                self.drained.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.drained.sort_by_key(|&(id, c)| (c.finish, id));
        &self.drained
    }

    /// Drains every pending completion regardless of finish time (end of a
    /// measured run; avoids `SimTime::MAX` arithmetic entirely).
    pub(crate) fn drain_remaining(&mut self) -> &[(RequestId, Completion)] {
        self.drained.clear();
        self.drained.append(&mut self.pending);
        self.drained.sort_by_key(|&(id, c)| (c.finish, id));
        &self.drained
    }

    /// Requests issued but not yet drained.
    pub(crate) fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// The buffer the last drain produced (unchanged until the next drain).
    pub(crate) fn drained(&self) -> &[(RequestId, Completion)] {
        &self.drained
    }

    /// Clears both buffers and restarts id allocation.
    pub(crate) fn reset(&mut self) {
        self.next_id = 0;
        self.pending.clear();
        self.drained.clear();
    }
}

/// Tail state of the most recently serviced chunk, kept so a request that
/// *continues* it — next sequential address, same open DRAM row, same
/// requestor and admission class — can be booked arithmetically without
/// re-deriving what is already known (see [`DramController::access`]).
///
/// The streak is replaced on every access, so any intervening request —
/// one that conflicts on the bank (opening a different row), one from a
/// different requestor, or one admitted under the other priority class
/// (the PS–PL QoS preemption point) — automatically breaks it: the next
/// request fails the continuation test and takes the full decode path.
/// The occupancy model has no refresh events (the cycle-accurate model
/// owns those); the row boundary is the hard stop here, and a streak
/// never extends across it.
#[derive(Debug, Clone, Copy)]
struct Streak {
    /// Address one past the last serviced chunk — the continuation point.
    next_addr: u64,
    /// Exclusive end of the open DRAM row that chunk landed in. A
    /// continuation must fit strictly inside it (single chunk, guaranteed
    /// row-buffer hit).
    row_end: u64,
    /// Bank owning that row.
    bank: usize,
    /// Requestor of the tail access; attribution must match to coalesce.
    requestor: Requestor,
    /// Whether the tail access was admitted with demand priority.
    demand: bool,
}

impl Streak {
    /// A streak no request can continue (`row_end == 0` fails the
    /// containment test for every address).
    fn broken() -> Self {
        Streak {
            next_addr: u64::MAX,
            row_end: 0,
            bank: 0,
            requestor: Requestor::Core(0),
            demand: false,
        }
    }
}

/// The DRAM controller.
#[derive(Debug, Clone)]
pub struct DramController {
    cfg: DramConfig,
    mapping: AddressMapping,
    /// Open row per bank (None = precharged).
    open_rows: Vec<Option<u64>>,
    banks: Vec<PriorityResource>,
    bus: PriorityResource,
    /// Sequential same-row streak cache (see [`Streak`]).
    streak: Streak,
    /// Whether the streak fast path is used. Timing and statistics are
    /// identical either way (the differential tests below pin this);
    /// disabling exists so tests can hold the full decode path as oracle.
    coalesce: bool,
    /// Host-side count of chunks booked through the streak fast path.
    /// Deliberately *not* part of [`DramStats`]: it measures simulator
    /// implementation behaviour, not simulated hardware behaviour, and the
    /// coalesced/uncoalesced differential asserts `DramStats` equality.
    coalesced_chunks: u64,
    /// Event-driven mode: CPU (core) requests are admitted with demand
    /// priority instead of appending behind every future reservation. See
    /// [`set_event_driven`](Self::set_event_driven).
    event_mode: bool,
    /// `log2(bus_bytes)` when the bus width is a power of two (always, in
    /// practice): turns the per-access beat count into a shift.
    bus_shift: Option<u32>,
    queue: CompletionQueue,
    stats: DramStats,
    /// Observability hook (no-op unless recording; see `relmem_sim::trace`).
    tracer: Tracer,
}

impl DramController {
    /// Creates a controller from the platform's DRAM configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let mapping = AddressMapping::with_hash(cfg.banks, cfg.row_bytes, cfg.xor_bank_hash);
        DramController {
            open_rows: vec![None; cfg.banks],
            banks: (0..cfg.banks).map(|_| PriorityResource::new("dram-bank")).collect(),
            bus: PriorityResource::new("dram-bus"),
            streak: Streak::broken(),
            coalesce: true,
            coalesced_chunks: 0,
            event_mode: false,
            bus_shift: cfg
                .bus_bytes
                .is_power_of_two()
                .then(|| cfg.bus_bytes.trailing_zeros()),
            mapping,
            cfg,
            queue: CompletionQueue::default(),
            stats: DramStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// The controller's trace hook (recording is controlled by the system).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets timing state and statistics (open rows, resource occupancy).
    /// The event-driven mode flag survives, like a hardware configuration
    /// bit.
    pub fn reset(&mut self) {
        self.open_rows.iter_mut().for_each(|r| *r = None);
        self.banks.iter_mut().for_each(PriorityResource::reset);
        self.bus.reset();
        self.streak = Streak::broken();
        self.queue.reset();
        self.stats = DramStats::default();
    }

    /// Enables or disables the sequential-streak fast path in
    /// [`access`](Self::access). Completions and statistics are identical
    /// either way; the switch exists so the coalescing tests can hold the
    /// uncoalesced decode path as oracle.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
        if !on {
            self.streak = Streak::broken();
        }
    }

    /// Chunks booked through the streak fast path so far (a simulator
    /// implementation counter — see the field docs; not part of
    /// [`stats`](Self::stats)).
    pub fn coalesced_chunks(&self) -> u64 {
        self.coalesced_chunks
    }

    /// Enables or disables event-driven admission. In event-driven mode,
    /// CPU ([`Requestor::Core`]) requests are admitted with demand priority
    /// — they do not queue behind the RME's paced future reservations, the
    /// way the PS–PL interconnect's QoS arbitration serves a CPU demand
    /// read ahead of the PL requestor's prefetch stream. Engine
    /// ([`Requestor::Rme`]) traffic keeps append semantics either way, so
    /// its descriptor pacing is unchanged, and CPU requests stay FIFO among
    /// themselves, so any run whose DRAM traffic comes from a single
    /// requestor class is bit-identical in both modes (the differential
    /// equivalence suite pins this). Counters never depend on the mode.
    pub fn set_event_driven(&mut self, on: bool) {
        self.event_mode = on;
    }

    /// Whether event-driven admission is active.
    pub fn event_driven(&self) -> bool {
        self.event_mode
    }

    /// Issues a request asynchronously. The occupancy model has no request
    /// queue to defer into, so the request is scheduled eagerly (identical
    /// timing to [`access`](Self::access)) and only the *retrieval* of its
    /// completion is deferred until [`drain_completions`](Self::drain_completions)
    /// — the issue path is a timing-neutral pass-through here, which is
    /// exactly what makes the event-driven and synchronous paths
    /// counter-identical under this model.
    pub fn issue(&mut self, req: MemRequest) -> RequestId {
        let id = self.queue.next_id();
        if req.kind == ReqKind::Write {
            self.stats.writebacks += 1;
        }
        let completion = self.access(req);
        self.queue.push(id, completion);
        id
    }

    /// Returns every issued request whose completion finished at or before
    /// `now`, ordered by `(finish, id)`. Each completion is returned exactly
    /// once.
    pub fn drain_completions(&mut self, now: SimTime) -> &[(RequestId, Completion)] {
        let delivered = self.queue.drain_due(now).len() as u64;
        if delivered > 0 {
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::System,
                    TraceEventKind::CompletionDrain,
                    now,
                    delivered,
                    0,
                )
            });
        }
        self.queue.drained()
    }

    /// Drains every outstanding completion regardless of finish time (end
    /// of a measured run).
    pub fn drain_all(&mut self) -> &[(RequestId, Completion)] {
        self.queue.drain_remaining()
    }

    /// Issued requests whose completions have not been drained yet.
    pub fn outstanding(&self) -> usize {
        self.queue.outstanding()
    }

    /// Services a read (or write — timing is symmetric at this level) and
    /// returns its completion. The data itself is read from
    /// [`PhysicalMemory`](crate::PhysicalMemory) by the caller; the
    /// controller only accounts time.
    /// Inlined into callers so that on a sequential read stream only the
    /// streak test and the coalesced booking run at the call site; the full
    /// decode path stays an outlined call taken on streak breaks.
    #[inline(always)]
    pub fn access(&mut self, req: MemRequest) -> Completion {
        let bytes = req.bytes.max(1);
        let demand = self.event_mode && matches!(req.requestor, Requestor::Core(_));
        // Streak fast path: a read that continues the previous chunk —
        // next sequential address, inside the same (still open) DRAM row,
        // same requestor, same admission class — books exactly what the
        // full path's row-hit branch would book, without re-splitting and
        // re-decoding the address. Anything else (a bank conflict that
        // opened a different row, a class switch at the PS–PL QoS
        // preemption point, a row-boundary crossing) falls through to the
        // full path, which replaces the streak with its own tail.
        if self.coalesce
            && req.kind == ReqKind::Read
            && req.addr == self.streak.next_addr
            && req.addr + bytes as u64 <= self.streak.row_end
            && req.requestor == self.streak.requestor
            && demand == self.streak.demand
        {
            return self.access_coalesced(req, bytes, demand);
        }
        self.access_full(req, bytes, demand)
    }

    /// The full decode path: split by DRAM row, decode each chunk, book
    /// bank + bus per chunk. Leaves the streak pointing one past the tail
    /// chunk so a sequential successor can coalesce.
    fn access_full(&mut self, req: MemRequest, bytes: usize, demand: bool) -> Completion {
        let chunks = self.mapping.split_by_row(req.addr, bytes);
        let mut finish = req.ready;
        let mut start = SimTime::from_picos(u64::MAX);
        let mut all_hits = true;
        let mut tail = Streak::broken();

        for (addr, len) in chunks {
            let coord = self.mapping.decode(addr);
            let prev_row = self.open_rows[coord.bank];
            let row_hit = prev_row == Some(coord.row);
            // Occupancy and latency differ: back-to-back row-buffer hits
            // pipeline at the column-to-column rate (tCCD) even though each
            // access still observes the full CAS latency; a row miss keeps
            // the bank busy for the precharge + activate window.
            let (occupancy, latency) = if row_hit {
                self.stats.row_hits += 1;
                (self.cfg.t_ccd, self.cfg.row_hit_latency())
            } else {
                self.stats.row_misses += 1;
                all_hits = false;
                self.open_rows[coord.bank] = Some(coord.row);
                (
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_ccd,
                    self.cfg.row_miss_latency(),
                )
            };
            let (bank_start, _) = if demand {
                self.banks[coord.bank].acquire_demand(req.ready, occupancy)
            } else {
                self.banks[coord.bank].acquire(req.ready, occupancy)
            };
            let data_ready = bank_start + latency;
            // Then stream the beats over the shared bus.
            let beats = match self.bus_shift {
                Some(shift) => ((len + self.cfg.bus_bytes - 1) >> shift) as u64,
                None => len.div_ceil(self.cfg.bus_bytes) as u64,
            };
            let transfer = self.cfg.beat_time * beats;
            let (_, bus_end) = if demand {
                self.bus.acquire_demand(data_ready, transfer)
            } else {
                self.bus.acquire(data_ready, transfer)
            };

            if !row_hit {
                // The occupancy model folds PRE/ACT into the miss latency;
                // the trace still marks them so both models draw the same
                // command picture on a bank track.
                let bank = coord.bank as u32;
                if let Some(old) = prev_row {
                    self.tracer.emit(|| {
                        TraceEvent::instant(
                            Track::DramBank(bank),
                            TraceEventKind::DramPrecharge,
                            bank_start,
                            old,
                            0,
                        )
                    });
                }
                self.tracer.emit(|| {
                    TraceEvent::instant(
                        Track::DramBank(bank),
                        TraceEventKind::DramActivate,
                        bank_start,
                        coord.row,
                        0,
                    )
                });
            }
            {
                let kind = if req.kind == ReqKind::Write {
                    TraceEventKind::DramWrite
                } else {
                    TraceEventKind::DramRead
                };
                let bank = coord.bank as u32;
                self.tracer.emit(|| {
                    TraceEvent::span(
                        Track::DramBank(bank),
                        kind,
                        bank_start,
                        bus_end,
                        addr,
                        row_hit as u64,
                    )
                });
            }

            self.stats.accesses += 1;
            if req.kind == ReqKind::Write {
                self.stats.writes += 1;
            }
            self.stats.beats += beats;
            self.stats.bytes_transferred += beats * self.cfg.bus_bytes as u64;
            match req.requestor {
                Requestor::Core(core) => {
                    if self.stats.per_core_accesses.len() <= core {
                        self.stats.per_core_accesses.resize(core + 1, 0);
                    }
                    self.stats.per_core_accesses[core] += 1;
                }
                Requestor::Rme => self.stats.rme_accesses += 1,
            }

            start = start.min(bank_start);
            finish = finish.max(bus_end);
            tail = Streak {
                next_addr: addr + len as u64,
                row_end: addr - coord.column as u64 + self.cfg.row_bytes as u64,
                bank: coord.bank,
                requestor: req.requestor,
                demand,
            };
        }
        self.streak = tail;

        Completion {
            start: if start == SimTime::from_picos(u64::MAX) {
                req.ready
            } else {
                start
            },
            finish,
            row_hit: all_hits,
        }
    }

    /// Books a chunk that continues the current streak: guaranteed
    /// row-buffer hit on the streak's bank, single chunk, same admission
    /// class. Performs the same resource bookings and counter bumps as the
    /// full path's row-hit branch, bit for bit.
    #[inline(always)]
    fn access_coalesced(&mut self, req: MemRequest, len: usize, demand: bool) -> Completion {
        self.coalesced_chunks += 1;
        self.stats.row_hits += 1;
        let (bank_start, _) = if demand {
            self.banks[self.streak.bank].acquire_demand(req.ready, self.cfg.t_ccd)
        } else {
            self.banks[self.streak.bank].acquire(req.ready, self.cfg.t_ccd)
        };
        let data_ready = bank_start + self.cfg.row_hit_latency();
        let beats = match self.bus_shift {
            Some(shift) => ((len + self.cfg.bus_bytes - 1) >> shift) as u64,
            None => len.div_ceil(self.cfg.bus_bytes) as u64,
        };
        let transfer = self.cfg.beat_time * beats;
        let (_, bus_end) = if demand {
            self.bus.acquire_demand(data_ready, transfer)
        } else {
            self.bus.acquire(data_ready, transfer)
        };
        self.stats.accesses += 1;
        self.stats.beats += beats;
        self.stats.bytes_transferred += beats * self.cfg.bus_bytes as u64;
        match req.requestor {
            Requestor::Core(core) => {
                if self.stats.per_core_accesses.len() <= core {
                    self.stats.per_core_accesses.resize(core + 1, 0);
                }
                self.stats.per_core_accesses[core] += 1;
            }
            Requestor::Rme => self.stats.rme_accesses += 1,
        }
        let bank = self.streak.bank as u32;
        self.tracer.emit(|| {
            TraceEvent::span(
                Track::DramBank(bank),
                TraceEventKind::DramRead,
                bank_start,
                bus_end,
                req.addr,
                1,
            )
        });
        self.streak.next_addr = req.addr + len as u64;
        Completion {
            start: bank_start,
            finish: req.ready.max(bus_end),
            row_hit: true,
        }
    }

    /// Time the data bus becomes free — useful for callers that want to
    /// throttle their issue rate to the controller.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus.next_free()
    }

    /// Total busy time of the data bus so far (bandwidth-bound lower bound
    /// on any schedule of the serviced requests).
    pub fn bus_busy(&self) -> SimTime {
        self.bus.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DramController {
        DramController::new(DramConfig::default())
    }

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn first_access_is_a_row_miss_then_hits() {
        let mut c = ctl();
        let a = c.access(MemRequest::new(0, 16, SimTime::ZERO));
        assert!(!a.row_hit);
        let b = c.access(MemRequest::new(16, 16, a.finish));
        assert!(b.row_hit);
        assert!(b.latency() < a.latency());
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn larger_bursts_take_longer_on_the_bus() {
        let mut c = ctl();
        let small = c.access(MemRequest::new(0, 16, SimTime::ZERO));
        c.reset();
        let big = c.access(MemRequest::new(0, 64, SimTime::ZERO));
        let delta = big.latency().saturating_sub(small.latency());
        // 3 extra beats at 1.25 ns each.
        assert_eq!(delta, SimTime::from_picos(3 * 1_250));
    }

    #[test]
    fn different_banks_overlap_same_bank_serializes() {
        let cfg = DramConfig::default();
        let row = cfg.row_bytes as u64;
        // Two requests to different banks, both ready at 0: bank latencies overlap.
        let mut c = DramController::new(cfg);
        let a = c.access(MemRequest::new(0, 16, SimTime::ZERO));
        let b = c.access(MemRequest::new(row, 16, SimTime::ZERO));
        // b is only delayed by bus serialization (one beat), not a full bank latency.
        assert!(b.finish <= a.finish + SimTime::from_picos(1_250) + SimTime::from_picos(1));

        // Same bank, back-to-back, ready at 0: the second waits for the bank.
        // The same-bank partner is constructed through the mapping so the
        // test holds with the (default-on) bank hash as well.
        let mut c2 = DramController::new(DramConfig::default());
        let a2 = c2.access(MemRequest::new(0, 16, SimTime::ZERO));
        let bank0 = c2.mapping().decode(0).bank;
        let partner = c2.mapping().encode(crate::address::DramCoord {
            bank: bank0,
            row: 1,
            column: 0,
        });
        assert_eq!(c2.mapping().decode(partner).bank, bank0);
        let b2 = c2.access(MemRequest::new(partner, 16, SimTime::ZERO));
        assert!(b2.finish > a2.finish, "same-bank accesses must serialize");
    }

    /// Regression test for the power-of-two shard bank-camping pathology:
    /// four streams whose start addresses differ by `banks × row_bytes`
    /// (the shard layout of a sharded scan over a power-of-two table) camp
    /// on one bank under the plain interleaving but spread across banks —
    /// and finish sooner — with the XOR hash on.
    #[test]
    fn xor_hash_breaks_power_of_two_shard_bank_camping() {
        let run = |xor_bank_hash: bool| {
            let cfg = DramConfig {
                xor_bank_hash,
                ..DramConfig::default()
            };
            let stride = (cfg.banks * cfg.row_bytes) as u64; // power-of-two shard size
            let mut c = DramController::new(cfg);
            let mut banks_touched = std::collections::BTreeSet::new();
            let mut last = SimTime::ZERO;
            for shard in 0..4u64 {
                let addr = shard * stride;
                banks_touched.insert(c.mapping().decode(addr).bank);
                let done = c.access(MemRequest::new(addr, 64, SimTime::ZERO));
                last = last.max(done.finish);
            }
            (banks_touched.len(), last)
        };
        let (spread_plain, finish_plain) = run(false);
        let (spread_hashed, finish_hashed) = run(true);
        assert_eq!(
            spread_plain, 1,
            "plain mapping camps all shards on one bank"
        );
        assert_eq!(
            spread_hashed, 4,
            "hashed mapping spreads shards across banks"
        );
        assert!(
            finish_hashed < finish_plain,
            "spreading must unserialize the shard openings ({finish_hashed} vs {finish_plain})"
        );
    }

    #[test]
    fn outstanding_requests_become_bandwidth_bound() {
        // Issue 64 independent 16 B requests all ready at t=0 (maximum
        // memory-level parallelism). The total completion should approach
        // the bus transfer bound rather than 64 serial latencies.
        let mut c = ctl();
        let mut last = SimTime::ZERO;
        for i in 0..64u64 {
            let done = c.access(MemRequest::new(i * 64, 16, SimTime::ZERO));
            last = last.max(done.finish);
        }
        let serial_bound = DramConfig::default().row_miss_latency() * 64;
        assert!(
            last < serial_bound,
            "parallel issue ({last}) should beat serial latency bound ({serial_bound})"
        );
    }

    #[test]
    fn row_spanning_requests_are_split() {
        let mut c = ctl();
        let row = c.config().row_bytes as u64;
        let done = c.access(MemRequest::new(row - 8, 16, SimTime::ZERO));
        assert_eq!(c.stats().accesses, 2);
        assert!(!done.row_hit);
    }

    #[test]
    fn stats_and_reset() {
        let mut c = ctl();
        c.access(MemRequest::new(0, 64, SimTime::ZERO));
        assert_eq!(c.stats().beats, 4);
        assert_eq!(c.stats().bytes_transferred, 64);
        assert!(c.stats().row_hit_rate() < 1.0);
        assert_eq!(c.stats().writes, 0, "reads are not writes");
        c.access(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        assert_eq!(c.stats().writes, 1, "write requests are attributed");
        c.reset();
        assert_eq!(c.stats(), &DramStats::default());
        assert_eq!(c.bus_free_at(), SimTime::ZERO);
    }

    #[test]
    fn ready_time_defers_service() {
        let mut c = ctl();
        let done = c.access(MemRequest::new(0, 16, ns(1_000)));
        assert!(done.start >= ns(1_000));
        assert!(done.finish > ns(1_000));
    }

    /// The asynchronous issue path schedules eagerly: the same requests
    /// through `issue` + `drain_all` produce bit-identical completions and
    /// stats to `access`, just retrieved later.
    #[test]
    fn issue_is_a_timing_neutral_pass_through() {
        let reqs: Vec<MemRequest> = (0..32u64)
            .map(|i| MemRequest::new(i * 48, 16, ns(i / 4)))
            .collect();

        let mut sync = ctl();
        let expected: Vec<Completion> = reqs.iter().map(|&r| sync.access(r)).collect();

        let mut evt = ctl();
        let ids: Vec<RequestId> = reqs.iter().map(|&r| evt.issue(r)).collect();
        assert_eq!(evt.outstanding(), reqs.len());
        let drained: Vec<(RequestId, Completion)> = evt.drain_all().to_vec();
        assert_eq!(evt.outstanding(), 0);

        // Ids are monotone in issue order and each pairs with the same
        // completion the synchronous path produced.
        assert_eq!(ids, (0..reqs.len() as u64).map(RequestId).collect::<Vec<_>>());
        for (id, completion) in &drained {
            assert_eq!(*completion, expected[id.0 as usize]);
        }
        // Stats identical except the writeback attribution (all reads here).
        assert_eq!(evt.stats(), sync.stats());
    }

    #[test]
    fn drain_completions_releases_only_finished_requests() {
        let mut c = ctl();
        let early = c.issue(MemRequest::new(0, 16, SimTime::ZERO));
        let late = c.issue(MemRequest::new(1 << 20, 16, ns(10_000)));
        let cut = ns(5_000);
        let first: Vec<RequestId> = c.drain_completions(cut).iter().map(|&(id, _)| id).collect();
        assert_eq!(first, vec![early]);
        assert_eq!(c.outstanding(), 1);
        // Draining again at the same time yields nothing new.
        assert!(c.drain_completions(cut).is_empty());
        let rest: Vec<RequestId> = c.drain_all().iter().map(|&(id, _)| id).collect();
        assert_eq!(rest, vec![late]);
    }

    #[test]
    fn issued_writes_count_as_writebacks() {
        let mut c = ctl();
        c.issue(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        c.issue(MemRequest::new(64, 64, SimTime::ZERO));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().writes, 1);
        c.reset();
        assert_eq!(c.outstanding(), 0, "reset clears the completion queue");
        assert_eq!(c.stats(), &DramStats::default());
        // Id allocation restarts after reset.
        assert_eq!(c.issue(MemRequest::new(0, 16, SimTime::ZERO)), RequestId(0));
    }

    /// Runs the same request sequence through a coalescing controller and
    /// one forced down the full decode path, asserting bit-identical
    /// completions, statistics, and bus occupancy. Returns the number of
    /// chunks the coalescing side booked through the streak fast path.
    fn assert_coalescing_identical(reqs: &[MemRequest], event_mode: bool) -> u64 {
        let mut fast = ctl();
        let mut slow = ctl();
        slow.set_coalescing(false);
        fast.set_event_driven(event_mode);
        slow.set_event_driven(event_mode);
        for (i, &req) in reqs.iter().enumerate() {
            let f = fast.access(req);
            let s = slow.access(req);
            assert_eq!(f, s, "completion diverged at request {i} ({req:?})");
        }
        assert_eq!(fast.stats(), slow.stats(), "DramStats diverged");
        assert_eq!(fast.bus_busy(), slow.bus_busy());
        assert_eq!(fast.bus_free_at(), slow.bus_free_at());
        assert_eq!(slow.coalesced_chunks(), 0, "oracle must not coalesce");
        fast.coalesced_chunks()
    }

    /// A sequential line stream (the scan fill pattern): every in-row
    /// continuation is coalesced, and totals and finish times match the
    /// uncoalesced path bit for bit, in both admission modes.
    #[test]
    fn sequential_streak_coalesces_identically() {
        let reqs: Vec<MemRequest> = (0..96u64)
            .map(|i| MemRequest::new(i * 64, 64, ns(i * 3)))
            .collect();
        for event_mode in [false, true] {
            let coalesced = assert_coalescing_identical(&reqs, event_mode);
            // 3 rows of 32 lines: each row's first line decodes in full
            // (row miss), the remaining 31 ride the streak.
            assert_eq!(coalesced, 93);
        }
    }

    /// Coalescing never crosses a DRAM row boundary: the row-crossing
    /// request takes the full path (and is charged its row miss), whether
    /// it lands on the boundary or straddles it.
    #[test]
    fn streak_breaks_at_row_boundary() {
        let row = DramConfig::default().row_bytes as u64;
        // Lines up to the boundary, then one straddling it.
        let mut reqs: Vec<MemRequest> = (0..row / 64)
            .map(|i| MemRequest::new(i * 64, 64, ns(i)))
            .collect();
        reqs.push(MemRequest::new(row - 8, 16, ns(row / 64)));
        let coalesced = assert_coalescing_identical(&reqs, false);
        assert_eq!(coalesced, row / 64 - 1, "the straddler must not coalesce");

        let mut c = ctl();
        for &req in &reqs {
            c.access(req);
        }
        // One miss opening the row, one per half of the split straddler.
        assert_eq!(c.stats().row_misses, 2);
        assert_eq!(c.stats().row_hits, row / 64 + 1 - 1);
    }

    /// An intervening access that conflicts on the bank (opens a different
    /// row) breaks the streak: the stream's next request re-decodes and is
    /// charged the row re-open, identically to the uncoalesced path.
    #[test]
    fn bank_conflict_breaks_streak() {
        let c = ctl();
        let bank0 = c.mapping().decode(0).bank;
        let conflict = c.mapping().encode(crate::address::DramCoord {
            bank: bank0,
            row: 7,
            column: 0,
        });
        assert_eq!(c.mapping().decode(conflict).bank, bank0);
        let reqs = vec![
            MemRequest::new(0, 64, ns(0)),
            MemRequest::new(64, 64, ns(1)),
            MemRequest::new(conflict, 64, ns(2)), // same bank, different row
            MemRequest::new(128, 64, ns(3)),      // would-be continuation
            MemRequest::new(192, 64, ns(4)),
        ];
        let coalesced = assert_coalescing_identical(&reqs, false);
        // Only the 0→64 continuation coalesces: the conflict replaces the
        // streak, and 128 no longer continues anything (row re-open), so
        // 192 starts a fresh streak off 128's full-path tail.
        assert_eq!(coalesced, 2);
        let mut full = ctl();
        full.set_coalescing(false);
        for &req in &reqs {
            full.access(req);
        }
        assert_eq!(full.stats().row_misses, 3, "conflict re-opens the row");
    }

    /// Coalescing never crosses a priority-class boundary: a requestor
    /// switch (Core ↔ RME) or an admission-mode flip mid-stream — the
    /// PS–PL QoS preemption points — forces the full path.
    #[test]
    fn class_switch_breaks_streak() {
        // Core and RME alternate on one sequential stream: no continuation
        // ever has a matching class, so nothing coalesces — but results
        // still match the oracle exactly.
        let reqs: Vec<MemRequest> = (0..16u64)
            .map(|i| {
                let requestor = if i % 2 == 0 {
                    Requestor::Core(0)
                } else {
                    Requestor::Rme
                };
                MemRequest::new(i * 64, 64, ns(i)).with_requestor(requestor)
            })
            .collect();
        assert_eq!(assert_coalescing_identical(&reqs, true), 0);

        // Flipping event-driven admission mid-streak changes the demand
        // class of Core traffic: the next request must not coalesce onto a
        // streak booked under the other class.
        let mut c = ctl();
        c.access(MemRequest::new(0, 64, ns(0)));
        c.access(MemRequest::new(64, 64, ns(1)));
        assert_eq!(c.coalesced_chunks(), 1);
        c.set_event_driven(true);
        c.access(MemRequest::new(128, 64, ns(2)));
        assert_eq!(c.coalesced_chunks(), 1, "class flip must break the streak");
        c.access(MemRequest::new(192, 64, ns(3)));
        assert_eq!(c.coalesced_chunks(), 2, "the new class streaks on its own");
    }

    /// Writes never coalesce (their attribution differs), but a write does
    /// not corrupt the streak state for the reads around it: the whole
    /// mixed stream stays bit-identical to the uncoalesced path.
    #[test]
    fn writes_never_coalesce() {
        let reqs: Vec<MemRequest> = (0..16u64)
            .map(|i| {
                let req = MemRequest::new(i * 64, 64, ns(i));
                if i % 4 == 3 {
                    req.as_write()
                } else {
                    req
                }
            })
            .collect();
        let coalesced = assert_coalescing_identical(&reqs, false);
        // 15 continuations, minus the 4 writes (full path each).
        assert_eq!(coalesced, 11);
        let mut c = ctl();
        for &req in &reqs {
            c.access(req);
        }
        assert_eq!(c.stats().writes, 4);
    }

    /// `reset` also clears the streak: the first post-reset request must
    /// re-decode (the open-row table was just wiped).
    #[test]
    fn reset_breaks_streak() {
        let mut c = ctl();
        c.access(MemRequest::new(0, 64, ns(0)));
        c.access(MemRequest::new(64, 64, ns(1)));
        assert_eq!(c.coalesced_chunks(), 1);
        c.reset();
        let post = c.access(MemRequest::new(128, 64, ns(0)));
        assert!(!post.row_hit, "post-reset access must observe the precharge");
        assert_eq!(c.coalesced_chunks(), 1);
    }
}
