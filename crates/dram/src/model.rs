//! The DRAM model dispatcher.
//!
//! [`DramModel`] puts the two timing implementations — the fast
//! occupancy-tracked [`DramController`] and the command-level
//! [`CycleAccurateDram`] — behind one concrete type, selected by
//! [`DramConfig::model`](relmem_sim::DramConfig). Every client of the
//! memory system (the cache hierarchy's backends, the RME's fetch units,
//! the schedulers in `relmem-core`) takes a `&mut DramModel`, so the same
//! scan / workload code runs unchanged on either fidelity level. An enum
//! rather than a trait object: the access path is the simulator's hottest
//! call, the dispatch is a predictable two-way branch, and both variants
//! stay `Clone` for fixture snapshotting.

use relmem_sim::{DramConfig, MemoryModel, SimTime, Tracer};

use crate::address::AddressMapping;
use crate::controller::{DramController, DramStats};
use crate::controller_ca::CycleAccurateDram;
use crate::request::{Completion, MemRequest, RequestId};

/// A DRAM timing model: occupancy-tracked or cycle-accurate, per
/// [`DramConfig::model`](relmem_sim::DramConfig).
#[derive(Debug, Clone)]
pub enum DramModel {
    /// The transaction-level occupancy model (default; the model every
    /// golden fixture pins).
    Occupancy(DramController),
    /// The command-level cycle-accurate model.
    CycleAccurate(CycleAccurateDram),
}

impl DramModel {
    /// Builds the model `cfg.model` selects.
    pub fn new(cfg: DramConfig) -> Self {
        match cfg.model {
            MemoryModel::Occupancy => DramModel::Occupancy(DramController::new(cfg)),
            MemoryModel::CycleAccurate => DramModel::CycleAccurate(CycleAccurateDram::new(cfg)),
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> MemoryModel {
        match self {
            DramModel::Occupancy(_) => MemoryModel::Occupancy,
            DramModel::CycleAccurate(_) => MemoryModel::CycleAccurate,
        }
    }

    /// Services a request and returns its completion.
    #[inline]
    pub fn access(&mut self, req: MemRequest) -> Completion {
        match self {
            DramModel::Occupancy(c) => c.access(req),
            DramModel::CycleAccurate(c) => c.access(req),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &DramConfig {
        match self {
            DramModel::Occupancy(c) => c.config(),
            DramModel::CycleAccurate(c) => c.config(),
        }
    }

    /// The address mapping in use (identical for both models).
    pub fn mapping(&self) -> &AddressMapping {
        match self {
            DramModel::Occupancy(c) => c.mapping(),
            DramModel::CycleAccurate(c) => c.mapping(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        match self {
            DramModel::Occupancy(c) => c.stats(),
            DramModel::CycleAccurate(c) => c.stats(),
        }
    }

    /// Resets timing state and statistics.
    pub fn reset(&mut self) {
        match self {
            DramModel::Occupancy(c) => c.reset(),
            DramModel::CycleAccurate(c) => c.reset(),
        }
    }

    /// Time the data bus becomes free.
    pub fn bus_free_at(&self) -> SimTime {
        match self {
            DramModel::Occupancy(c) => c.bus_free_at(),
            DramModel::CycleAccurate(c) => c.bus_free_at(),
        }
    }

    /// Total busy time of the data bus so far.
    pub fn bus_busy(&self) -> SimTime {
        match self {
            DramModel::Occupancy(c) => c.bus_busy(),
            DramModel::CycleAccurate(c) => c.bus_busy(),
        }
    }

    /// Issues a request asynchronously; its completion is retrieved later
    /// through [`drain_completions`](Self::drain_completions). Under the
    /// occupancy model (and for reads under the cycle-accurate model) the
    /// request is scheduled eagerly — only retrieval is deferred, which
    /// keeps the event-driven path counter-identical to the synchronous
    /// one. The cycle-accurate model in event-driven mode additionally
    /// buffers writes into its cross-request FR-FCFS window.
    pub fn issue(&mut self, req: MemRequest) -> RequestId {
        match self {
            DramModel::Occupancy(c) => c.issue(req),
            DramModel::CycleAccurate(c) => c.issue(req),
        }
    }

    /// Drains every issued request whose completion finished at or before
    /// `now`, ordered by `(finish, id)`; under the cycle-accurate model
    /// this first schedules any buffered writes that became ready.
    pub fn drain_completions(&mut self, now: SimTime) -> &[(RequestId, Completion)] {
        match self {
            DramModel::Occupancy(c) => c.drain_completions(now),
            DramModel::CycleAccurate(c) => c.drain_completions(now),
        }
    }

    /// Drains every outstanding completion regardless of finish time (end
    /// of a measured run), scheduling any still-buffered writes first.
    pub fn drain_all(&mut self) -> &[(RequestId, Completion)] {
        match self {
            DramModel::Occupancy(c) => c.drain_all(),
            DramModel::CycleAccurate(c) => c.drain_all(),
        }
    }

    /// Issued requests whose completions have not been drained yet.
    pub fn outstanding(&self) -> usize {
        match self {
            DramModel::Occupancy(c) => c.outstanding(),
            DramModel::CycleAccurate(c) => c.outstanding(),
        }
    }

    /// Enables or disables event-driven mode. The occupancy model switches
    /// CPU requests to demand-priority admission (they no longer queue
    /// behind the RME's paced future reservations); its issue path stays a
    /// counter-neutral eager pass-through either way. The cycle-accurate
    /// model toggles its write buffer (the cross-request FR-FCFS window).
    pub fn set_event_driven(&mut self, on: bool) {
        match self {
            DramModel::Occupancy(c) => c.set_event_driven(on),
            DramModel::CycleAccurate(c) => c.set_event_driven(on),
        }
    }

    /// The active model's trace hook (recording is controlled by the
    /// system; the hook is a no-op by default).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        match self {
            DramModel::Occupancy(c) => c.tracer_mut(),
            DramModel::CycleAccurate(c) => c.tracer_mut(),
        }
    }

    /// Whether dirty cache evictions should reach this model as real DRAM
    /// writes. True only for the cycle-accurate model in event-driven mode:
    /// that is where tWR/tWTR constraints exist to observe them, and gating
    /// here keeps the occupancy model (every golden fixture) and the
    /// synchronous cycle-accurate path bit-identical to their
    /// pre-event-queue behaviour.
    pub fn writebacks_active(&self) -> bool {
        match self {
            DramModel::Occupancy(_) => false,
            DramModel::CycleAccurate(c) => c.event_driven(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_builds_the_requested_model() {
        let occ = DramModel::new(DramConfig::default());
        assert_eq!(occ.kind(), MemoryModel::Occupancy);
        let ca = DramModel::new(DramConfig {
            model: MemoryModel::CycleAccurate,
            ..DramConfig::default()
        });
        assert_eq!(ca.kind(), MemoryModel::CycleAccurate);
    }

    /// The dispatcher's occupancy variant is bit-identical to using the
    /// controller directly — the invariant the golden suite relies on.
    #[test]
    fn occupancy_dispatch_is_transparent() {
        let cfg = DramConfig::default();
        let mut direct = DramController::new(cfg);
        let mut via = DramModel::new(cfg);
        for i in 0..256u64 {
            let req = MemRequest::new(i * 48, 24, SimTime::from_nanos(i / 3));
            assert_eq!(direct.access(req), via.access(req));
        }
        assert_eq!(direct.stats(), via.stats());
    }

    /// Both models agree on functional facts (what was accessed), while
    /// timing fidelity differs.
    #[test]
    fn models_agree_on_traffic_counters() {
        let mut occ = DramModel::new(DramConfig::default());
        let mut ca = DramModel::new(DramConfig {
            model: MemoryModel::CycleAccurate,
            ..DramConfig::default()
        });
        for i in 0..128u64 {
            let req = MemRequest::new(i * 64, 64, SimTime::from_nanos(i * 50));
            occ.access(req);
            ca.access(req);
        }
        let (o, c) = (occ.stats(), ca.stats());
        assert_eq!(o.accesses, c.accesses);
        assert_eq!(o.beats, c.beats);
        assert_eq!(o.bytes_transferred, c.bytes_transferred);
        // The occupancy model never refreshes; the CA model's knobs exist.
        assert_eq!(o.refreshes, 0);
        assert_eq!(o.tfaw_stalls, 0);
    }

    /// The dispatcher's issue/drain path on the occupancy model matches the
    /// synchronous access path bit for bit — the invariant the differential
    /// equivalence suite scales up to whole-system runs.
    #[test]
    fn occupancy_issue_drain_matches_access() {
        let cfg = DramConfig::default();
        let mut sync = DramModel::new(cfg);
        let mut evt = DramModel::new(cfg);
        // Core-only traffic: backfill admission degenerates to FIFO, so
        // event mode must stay bit-identical to the synchronous path.
        evt.set_event_driven(true);
        let mut expected = Vec::new();
        for i in 0..64u64 {
            let mut req = MemRequest::new(i * 80, 32, SimTime::from_nanos(i));
            if i % 5 == 0 {
                req = req.as_write();
            }
            expected.push(sync.access(req));
            evt.issue(req);
        }
        assert!(!evt.writebacks_active(), "occupancy never emits writebacks");
        let drained = evt.drain_all().to_vec();
        assert_eq!(drained.len(), expected.len());
        for (id, completion) in drained {
            assert_eq!(completion, expected[id.0 as usize]);
        }
        // All counters but the issue-path writeback attribution agree.
        let mut evt_stats = evt.stats().clone();
        assert_eq!(evt_stats.writebacks, 13);
        evt_stats.writebacks = 0;
        assert_eq!(&evt_stats, sync.stats());
    }

    /// In event mode the cycle-accurate model defers writes but reads stay
    /// synchronous-identical until a write enters the buffer.
    #[test]
    fn cycle_accurate_event_mode_defers_only_writes() {
        let cfg = DramConfig {
            model: MemoryModel::CycleAccurate,
            ..DramConfig::default()
        };
        let mut m = DramModel::new(cfg);
        m.set_event_driven(true);
        assert!(m.writebacks_active());
        m.issue(MemRequest::new(0, 64, SimTime::ZERO));
        assert_eq!(m.stats().accesses, 1, "reads schedule eagerly");
        m.issue(MemRequest::new(1 << 16, 64, SimTime::ZERO).as_write());
        assert_eq!(m.stats().writes, 0, "the write waits in the buffer");
        assert_eq!(m.outstanding(), 2);
        m.drain_all();
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.outstanding(), 0);
        // reset() keeps the mode but clears the queue.
        m.reset();
        assert!(m.writebacks_active());
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.stats(), &DramStats::default());
    }

    /// ReqKind round-trips through the dispatcher unchanged (guards the
    /// write attribution the writeback path relies on).
    #[test]
    fn write_attribution_is_model_independent() {
        for model in [MemoryModel::Occupancy, MemoryModel::CycleAccurate] {
            let mut m = DramModel::new(DramConfig {
                model,
                ..DramConfig::default()
            });
            assert!(!m.access(MemRequest::new(0, 64, SimTime::ZERO)).row_hit);
            m.access(MemRequest::new(0, 64, SimTime::ZERO).as_write());
            assert_eq!(m.stats().writes, 1);
            assert_eq!(m.stats().fr_fcfs_reorders, 0);
        }
    }
}
