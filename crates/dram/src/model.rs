//! The DRAM model dispatcher.
//!
//! [`DramModel`] puts the two timing implementations — the fast
//! occupancy-tracked [`DramController`] and the command-level
//! [`CycleAccurateDram`] — behind one concrete type, selected by
//! [`DramConfig::model`](relmem_sim::DramConfig). Every client of the
//! memory system (the cache hierarchy's backends, the RME's fetch units,
//! the schedulers in `relmem-core`) takes a `&mut DramModel`, so the same
//! scan / workload code runs unchanged on either fidelity level. An enum
//! rather than a trait object: the access path is the simulator's hottest
//! call, the dispatch is a predictable two-way branch, and both variants
//! stay `Clone` for fixture snapshotting.

use relmem_sim::{DramConfig, MemoryModel, SimTime};

use crate::address::AddressMapping;
use crate::controller::{DramController, DramStats};
use crate::controller_ca::CycleAccurateDram;
use crate::request::{Completion, MemRequest};

/// A DRAM timing model: occupancy-tracked or cycle-accurate, per
/// [`DramConfig::model`](relmem_sim::DramConfig).
#[derive(Debug, Clone)]
pub enum DramModel {
    /// The transaction-level occupancy model (default; the model every
    /// golden fixture pins).
    Occupancy(DramController),
    /// The command-level cycle-accurate model.
    CycleAccurate(CycleAccurateDram),
}

impl DramModel {
    /// Builds the model `cfg.model` selects.
    pub fn new(cfg: DramConfig) -> Self {
        match cfg.model {
            MemoryModel::Occupancy => DramModel::Occupancy(DramController::new(cfg)),
            MemoryModel::CycleAccurate => DramModel::CycleAccurate(CycleAccurateDram::new(cfg)),
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> MemoryModel {
        match self {
            DramModel::Occupancy(_) => MemoryModel::Occupancy,
            DramModel::CycleAccurate(_) => MemoryModel::CycleAccurate,
        }
    }

    /// Services a request and returns its completion.
    #[inline]
    pub fn access(&mut self, req: MemRequest) -> Completion {
        match self {
            DramModel::Occupancy(c) => c.access(req),
            DramModel::CycleAccurate(c) => c.access(req),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &DramConfig {
        match self {
            DramModel::Occupancy(c) => c.config(),
            DramModel::CycleAccurate(c) => c.config(),
        }
    }

    /// The address mapping in use (identical for both models).
    pub fn mapping(&self) -> &AddressMapping {
        match self {
            DramModel::Occupancy(c) => c.mapping(),
            DramModel::CycleAccurate(c) => c.mapping(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        match self {
            DramModel::Occupancy(c) => c.stats(),
            DramModel::CycleAccurate(c) => c.stats(),
        }
    }

    /// Resets timing state and statistics.
    pub fn reset(&mut self) {
        match self {
            DramModel::Occupancy(c) => c.reset(),
            DramModel::CycleAccurate(c) => c.reset(),
        }
    }

    /// Time the data bus becomes free.
    pub fn bus_free_at(&self) -> SimTime {
        match self {
            DramModel::Occupancy(c) => c.bus_free_at(),
            DramModel::CycleAccurate(c) => c.bus_free_at(),
        }
    }

    /// Total busy time of the data bus so far.
    pub fn bus_busy(&self) -> SimTime {
        match self {
            DramModel::Occupancy(c) => c.bus_busy(),
            DramModel::CycleAccurate(c) => c.bus_busy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_builds_the_requested_model() {
        let occ = DramModel::new(DramConfig::default());
        assert_eq!(occ.kind(), MemoryModel::Occupancy);
        let ca = DramModel::new(DramConfig {
            model: MemoryModel::CycleAccurate,
            ..DramConfig::default()
        });
        assert_eq!(ca.kind(), MemoryModel::CycleAccurate);
    }

    /// The dispatcher's occupancy variant is bit-identical to using the
    /// controller directly — the invariant the golden suite relies on.
    #[test]
    fn occupancy_dispatch_is_transparent() {
        let cfg = DramConfig::default();
        let mut direct = DramController::new(cfg);
        let mut via = DramModel::new(cfg);
        for i in 0..256u64 {
            let req = MemRequest::new(i * 48, 24, SimTime::from_nanos(i / 3));
            assert_eq!(direct.access(req), via.access(req));
        }
        assert_eq!(direct.stats(), via.stats());
    }

    /// Both models agree on functional facts (what was accessed), while
    /// timing fidelity differs.
    #[test]
    fn models_agree_on_traffic_counters() {
        let mut occ = DramModel::new(DramConfig::default());
        let mut ca = DramModel::new(DramConfig {
            model: MemoryModel::CycleAccurate,
            ..DramConfig::default()
        });
        for i in 0..128u64 {
            let req = MemRequest::new(i * 64, 64, SimTime::from_nanos(i * 50));
            occ.access(req);
            ca.access(req);
        }
        let (o, c) = (occ.stats(), ca.stats());
        assert_eq!(o.accesses, c.accesses);
        assert_eq!(o.beats, c.beats);
        assert_eq!(o.bytes_transferred, c.bytes_transferred);
        // The occupancy model never refreshes; the CA model's knobs exist.
        assert_eq!(o.refreshes, 0);
        assert_eq!(o.tfaw_stalls, 0);
    }
}
