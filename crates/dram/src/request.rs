//! Memory request / completion types shared by the DRAM controller and its
//! clients (the cache hierarchy and the RME fetch units).

use relmem_sim::SimTime;

/// A read request for `bytes` bytes starting at physical address `addr`.
///
/// `ready` is the earliest time the request can be presented to the
/// controller — callers that pipeline multiple outstanding requests (the
/// prefetcher, the MLP fetch units) use it to overlap latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical start address.
    pub addr: u64,
    /// Number of bytes requested.
    pub bytes: usize,
    /// Earliest issue time.
    pub ready: SimTime,
    /// Which requestor (CPU core index, or the RME) issued the request.
    /// Purely an accounting tag: arbitration itself happens on the
    /// controller's occupancy-tracked banks and bus, which serve requests
    /// from any requestor in `ready`-time order.
    pub requestor: Requestor,
    /// Read or write. The occupancy model's timing is symmetric and ignores
    /// this; the cycle-accurate model applies the write-recovery (tWR) and
    /// write-to-read turnaround (tWTR) constraints to writes.
    pub kind: ReqKind,
}

/// Direction of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReqKind {
    /// A read (cache-line fill, RME fetch). The default.
    #[default]
    Read,
    /// A write (dirty-line writeback, in-place update traffic).
    Write,
}

/// Who issued a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requestor {
    /// A CPU core (cache-hierarchy demand miss or prefetch), by core index.
    Core(usize),
    /// The Relational Memory Engine's fetch units.
    Rme,
}

impl Default for Requestor {
    fn default() -> Self {
        Requestor::Core(0)
    }
}

impl MemRequest {
    /// Convenience constructor; the request is a read attributed to core 0.
    pub fn new(addr: u64, bytes: usize, ready: SimTime) -> Self {
        MemRequest {
            addr,
            bytes,
            ready,
            requestor: Requestor::Core(0),
            kind: ReqKind::Read,
        }
    }

    /// Attributes the request to a requestor (builder style).
    pub fn with_requestor(mut self, requestor: Requestor) -> Self {
        self.requestor = requestor;
        self
    }

    /// Marks the request as a write (builder style).
    pub fn as_write(mut self) -> Self {
        self.kind = ReqKind::Write;
        self
    }
}

/// Opaque handle of a request issued asynchronously through
/// [`DramModel::issue`](crate::DramModel::issue). Ids are handed out
/// monotonically in issue order per controller, so they double as the
/// arrival-order key the cycle-accurate model's cross-request FR-FCFS
/// bookkeeping compares against when it schedules buffered writes out of
/// order. The pairing back to a request happens when the completion is
/// retrieved via
/// [`DramModel::drain_completions`](crate::DramModel::drain_completions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// The timing outcome of a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the request started occupying DRAM resources.
    pub start: SimTime,
    /// When the last byte arrived at the requester.
    pub finish: SimTime,
    /// Whether every row touched was already open (pure row-buffer hit).
    pub row_hit: bool,
}

impl Completion {
    /// Service latency (finish − start).
    pub fn latency(&self) -> SimTime {
        self.finish.saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency() {
        let c = Completion {
            start: SimTime::from_nanos(10),
            finish: SimTime::from_nanos(35),
            row_hit: true,
        };
        assert_eq!(c.latency(), SimTime::from_nanos(25));
    }

    #[test]
    fn request_constructor() {
        let r = MemRequest::new(64, 16, SimTime::from_nanos(1));
        assert_eq!(r.addr, 64);
        assert_eq!(r.bytes, 16);
        assert_eq!(r.ready, SimTime::from_nanos(1));
        assert_eq!(r.kind, ReqKind::Read);
        assert_eq!(r.as_write().kind, ReqKind::Write);
    }
}
