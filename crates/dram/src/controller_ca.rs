//! Command-level (cycle-accurate) DRAM timing model.
//!
//! Where [`DramController`](crate::DramController) folds a request's timing
//! into two constants (row-hit / row-miss latency) plus occupancy, this
//! model walks the actual DDR command protocol per bank:
//!
//! * **ACT / PRE / RD / WR state machines per bank** — an access to a
//!   closed row issues PRE (bounded by tRAS after the activate, tRTP after
//!   the last read, tWR after the last write burst) and ACT (tRP after the
//!   precharge, tRC after the previous activate) before its column command;
//!   row-buffer hits pipeline at tCCD.
//! * **Per-rank tFAW window** — at most four activates may issue in any
//!   tFAW window; the fifth stalls (counted in
//!   [`DramStats::tfaw_stalls`]). This is what throttles many-bank random
//!   traffic that the occupancy model happily overlaps.
//! * **Periodic refresh** — every bank is refreshed once per tREFI window;
//!   a refresh closes the bank's open row and occupies it for tRFC
//!   (counted in [`DramStats::refreshes`]). Refresh catch-up is applied
//!   lazily when a bank is next used, keyed off the request's issue time,
//!   so identical request streams always produce identical schedules.
//! * **Bounded transaction queue** — at most `queue_depth` requests are in
//!   flight; a request arriving at a full queue waits for the earliest
//!   completion (admission stall, counted in [`DramStats::queue_stalls`]).
//!
//! Within one multi-row request the chunks are scheduled row-hits first
//! (FR-FCFS order). Across requests the scope depends on the path: the
//! synchronous [`access`](CycleAccurateDram::access) path is
//! arrival-ordered — its callers need each completion before they can
//! take another step, so older requests can never be reordered behind
//! younger ones — while the event-driven
//! [`issue`](CycleAccurateDram::issue) /
//! [`drain_completions`](CycleAccurateDram::drain_completions) path
//! (enabled via [`set_event_driven`](CycleAccurateDram::set_event_driven))
//! buffers writes and schedules them lazily: a read presented while writes
//! sit buffered bypasses them, and buffered writes drain row-hits first
//! regardless of their arrival order. Both reorder flavours are counted in
//! [`DramStats::fr_fcfs_reorders`], which stays exactly zero on the
//! synchronous path.
//!
//! The model shares [`AddressMapping`] (including the XOR bank hash),
//! [`MemRequest`]/[`Completion`] and [`DramStats`] with the occupancy
//! controller, so every caller — scans, sharded scans, HTAP workloads, the
//! RME's fetch units — runs unchanged on either model via
//! [`DramModel`](crate::DramModel).

use relmem_sim::{DramConfig, Resource, SimTime, TraceEvent, TraceEventKind, Tracer, Track};

use crate::address::AddressMapping;
use crate::controller::{CompletionQueue, DramStats};
use crate::request::{Completion, MemRequest, ReqKind, RequestId, Requestor};

/// Per-bank command state.
#[derive(Debug, Clone)]
struct BankState {
    /// Open row, `None` when precharged.
    open_row: Option<u64>,
    /// Time of the last ACT (anchors tRAS and tRC); `None` until the bank
    /// first activates, so an idle bank pays no phantom tRC at t=0.
    act_at: Option<SimTime>,
    /// Earliest next column command (tCCD pipelining, tRCD after ACT,
    /// refresh recovery).
    cmd_ready: SimTime,
    /// Earliest next ACT (tRP after PRE, tRC after ACT, refresh recovery).
    act_ready: SimTime,
    /// Last read command (tRTP bound on a following PRE).
    last_rd_cmd: SimTime,
    /// End of the last write burst on the bus (tWR bound on a following
    /// PRE).
    wr_data_end: SimTime,
    /// Refresh windows already applied to this bank.
    refresh_applied: u64,
}

impl BankState {
    fn idle() -> Self {
        BankState {
            open_row: None,
            act_at: None,
            cmd_ready: SimTime::ZERO,
            act_ready: SimTime::ZERO,
            last_rd_cmd: SimTime::ZERO,
            wr_data_end: SimTime::ZERO,
            refresh_applied: 0,
        }
    }
}

/// ACT-time history entries kept for the tFAW check. Four would suffice
/// for in-order schedules; cross-bank scheduling can produce ACTs out of
/// arrival order (a bank stuck in refresh recovery activates later than a
/// subsequently scheduled idle bank), so extra history keeps eviction
/// from forgetting an ACT that still shares a window with a future
/// candidate. tRFC (350 ns) bounds the reordering skew, and 16 entries
/// cover it at any realistic ACT rate.
const FAW_HISTORY: usize = 16;

/// Recent activate times on the rank, kept sorted by *time* (tFAW). The
/// window orders by timestamp, not by insertion, and counts only ACTs
/// that actually share a tFAW-length interval with the candidate.
#[derive(Debug, Clone, Default)]
struct FawWindow {
    /// At most [`FAW_HISTORY`] entries, ascending; eviction drops the
    /// oldest.
    acts: Vec<SimTime>,
}

impl FawWindow {
    /// The earliest time a new ACT proposed at `t` may issue under the
    /// four-activates-per-window rule, or `None` when `t` is fine as-is.
    /// The rule is violated iff some four tracked ACTs plus the candidate
    /// fit inside one tFAW-length interval; every four-consecutive run of
    /// the sorted history is tested, and the fix-up moves the candidate
    /// past the oldest ACT of the latest violating run. Callers re-check
    /// after bumping (a later run can come into range).
    fn bound(&self, t: SimTime, t_faw: SimTime) -> Option<SimTime> {
        let n = self.acts.len();
        if n < 4 {
            return None;
        }
        let mut fix_up: Option<SimTime> = None;
        for run in self.acts.windows(4) {
            let span_min = run[0].min(t);
            let span_max = run[3].max(t);
            if span_max.saturating_sub(span_min) < t_faw {
                let b = run[0] + t_faw;
                fix_up = Some(fix_up.map_or(b, |x| x.max(b)));
            }
        }
        fix_up
    }

    fn push(&mut self, act: SimTime) {
        let idx = self.acts.partition_point(|&a| a <= act);
        self.acts.insert(idx, act);
        if self.acts.len() > FAW_HISTORY {
            self.acts.remove(0);
        }
    }

    fn clear(&mut self) {
        self.acts.clear();
    }
}

/// The command-level DRAM controller.
#[derive(Debug, Clone)]
pub struct CycleAccurateDram {
    cfg: DramConfig,
    mapping: AddressMapping,
    banks: Vec<BankState>,
    faw: FawWindow,
    /// Earliest next *read* command on the rank (tWTR after a write burst).
    wtr_ready: SimTime,
    bus: Resource,
    /// Completion times of in-flight transactions (bounded admission).
    inflight: Vec<SimTime>,
    queue: CompletionQueue,
    /// Writes issued asynchronously but not yet scheduled (event mode
    /// only): the cross-request FR-FCFS window. Each entry keeps its issue
    /// id so the drain can detect when a row hit overtakes an older miss.
    pending_writes: Vec<(RequestId, MemRequest)>,
    /// Whether the asynchronous issue path defers writes into
    /// [`pending_writes`](Self::pending_writes). Survives
    /// [`reset`](Self::reset) — it is a mode, not timing state.
    event_mode: bool,
    stats: DramStats,
    /// Observability hook (no-op unless recording; see `relmem_sim::trace`).
    tracer: Tracer,
}

impl CycleAccurateDram {
    /// Creates a controller from the platform's DRAM configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let mapping = AddressMapping::with_hash(cfg.banks, cfg.row_bytes, cfg.xor_bank_hash);
        CycleAccurateDram {
            banks: vec![BankState::idle(); cfg.banks],
            faw: FawWindow::default(),
            wtr_ready: SimTime::ZERO,
            bus: Resource::new("dram-bus-ca"),
            inflight: Vec::with_capacity(cfg.queue_depth.max(1)),
            queue: CompletionQueue::default(),
            pending_writes: Vec::new(),
            event_mode: false,
            mapping,
            cfg,
            stats: DramStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// The controller's trace hook (recording is controlled by the system).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets all command state, the queues and the statistics. The
    /// event-driven mode flag survives: `reset` marks a measurement
    /// boundary, not a mode change.
    pub fn reset(&mut self) {
        self.banks.iter_mut().for_each(|b| *b = BankState::idle());
        self.faw.clear();
        self.wtr_ready = SimTime::ZERO;
        self.bus.reset();
        self.inflight.clear();
        self.queue.reset();
        self.pending_writes.clear();
        self.stats = DramStats::default();
    }

    /// Enables or disables the event-driven write buffer. With it off,
    /// [`issue`](Self::issue) schedules eagerly like the occupancy model.
    pub fn set_event_driven(&mut self, on: bool) {
        if !on {
            self.flush_pending_writes(None);
        }
        self.event_mode = on;
    }

    /// Whether the event-driven write buffer is enabled.
    pub fn event_driven(&self) -> bool {
        self.event_mode
    }

    /// Time the data bus becomes free.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus.next_free()
    }

    /// Total busy time of the data bus so far.
    pub fn bus_busy(&self) -> SimTime {
        self.bus.busy_time()
    }

    /// Applies any refresh windows that started at or before `now` to
    /// `bank`: the open row closes and the bank is unusable until the last
    /// window's tRFC recovery ends.
    fn apply_refresh(&mut self, bank: usize, now: SimTime) {
        let t_refi = self.cfg.t_refi;
        if t_refi.is_zero() {
            return;
        }
        let due = now.as_picos() / t_refi.as_picos();
        let b = &mut self.banks[bank];
        if due > b.refresh_applied {
            let applied = due - b.refresh_applied;
            self.stats.refreshes += applied;
            b.refresh_applied = due;
            b.open_row = None;
            let window_start = SimTime::from_picos(due * t_refi.as_picos());
            let recovery = window_start + self.cfg.t_rfc;
            b.act_ready = b.act_ready.max(recovery);
            b.cmd_ready = b.cmd_ready.max(recovery);
            let t_rfc = self.cfg.t_rfc;
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::DramBank(bank as u32),
                    TraceEventKind::DramRefresh,
                    window_start,
                    applied,
                    t_rfc.as_picos(),
                )
            });
        }
    }

    /// Admits a request into the bounded transaction queue: returns
    /// `(admission_time, outstanding)` — the admission time is ≥ `ready`
    /// (later when the queue is full), `outstanding` is the number of
    /// transactions still in flight at `ready`.
    fn admit(&mut self, ready: SimTime) -> (SimTime, u64) {
        self.inflight.retain(|&t| t > ready);
        let outstanding = self.inflight.len() as u64;
        if self.inflight.len() < self.cfg.queue_depth.max(1) {
            self.stats.queue_occupancy_max = self.stats.queue_occupancy_max.max(outstanding + 1);
            return (ready, outstanding);
        }
        self.stats.queue_stalls += 1;
        self.tracer.emit(|| {
            TraceEvent::instant(
                Track::System,
                TraceEventKind::DramQueueStall,
                ready,
                outstanding,
                0,
            )
        });
        let (idx, earliest) = self
            .inflight
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("full queue is non-empty");
        self.inflight.swap_remove(idx);
        let admitted = ready.max(earliest);
        self.inflight.retain(|&t| t > admitted);
        // Occupancy is sampled at the actual admission time: the stall
        // waited for at least one transaction to drain.
        let after_drain = self.inflight.len() as u64;
        self.stats.queue_occupancy_max = self.stats.queue_occupancy_max.max(after_drain + 1);
        (admitted, after_drain)
    }

    /// Schedules one per-row chunk: issues the PRE/ACT/column commands and
    /// streams the beats. Returns `(first_command, bus_end, row_hit)`.
    fn schedule_chunk(
        &mut self,
        addr: u64,
        len: usize,
        issue: SimTime,
        kind: ReqKind,
    ) -> (SimTime, SimTime, bool) {
        let coord = self.mapping.decode(addr);
        self.apply_refresh(coord.bank, issue);
        let read = kind == ReqKind::Read;
        let b = &mut self.banks[coord.bank];
        let row_hit = b.open_row == Some(coord.row);
        let (first_cmd, col_cmd) = if row_hit {
            let mut cmd = issue.max(b.cmd_ready);
            if read {
                cmd = cmd.max(self.wtr_ready);
            }
            (cmd, cmd)
        } else {
            // Close the open row first (PRE), honouring tRAS after its
            // activate, tRTP after the last read and tWR after the last
            // write burst; a precharged bank activates directly.
            let had_open_row = b.open_row.is_some();
            let (pre, act_lower) = if had_open_row {
                let act_at = b.act_at.expect("an open row implies a prior ACT");
                let pre = issue
                    .max(act_at + self.cfg.t_ras)
                    .max(b.last_rd_cmd + self.cfg.t_rtp)
                    .max(b.wr_data_end + self.cfg.t_wr);
                (pre, pre + self.cfg.t_rp)
            } else {
                (issue, issue)
            };
            let mut act = act_lower.max(b.act_ready);
            if let Some(prev_act) = b.act_at {
                act = act.max(prev_act + self.cfg.t_rc());
            }
            let unstalled_act = act;
            let mut faw_stalled = false;
            while let Some(bound) = self.faw.bound(act, self.cfg.t_faw) {
                faw_stalled = true;
                act = bound;
            }
            if faw_stalled {
                self.stats.tfaw_stalls += 1;
                self.tracer.emit(|| {
                    TraceEvent::instant(
                        Track::DramBank(coord.bank as u32),
                        TraceEventKind::TfawStall,
                        act,
                        coord.row,
                        act.saturating_sub(unstalled_act).as_picos(),
                    )
                });
            }
            self.faw.push(act);
            if had_open_row {
                let old_row = b.open_row.expect("had_open_row");
                self.tracer.emit(|| {
                    TraceEvent::instant(
                        Track::DramBank(coord.bank as u32),
                        TraceEventKind::DramPrecharge,
                        pre,
                        old_row,
                        0,
                    )
                });
            }
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::DramBank(coord.bank as u32),
                    TraceEventKind::DramActivate,
                    act,
                    coord.row,
                    0,
                )
            });
            b.open_row = Some(coord.row);
            b.act_at = Some(act);
            b.act_ready = act + self.cfg.t_rc();
            let mut cmd = act + self.cfg.t_rcd;
            if read {
                cmd = cmd.max(self.wtr_ready);
            }
            // The first command the chunk puts on the bank: the PRE when a
            // row had to close, otherwise the (possibly tFAW- or
            // refresh-delayed) ACT itself.
            (if had_open_row { pre } else { act }, cmd)
        };
        let b = &mut self.banks[coord.bank];
        b.cmd_ready = col_cmd + self.cfg.t_ccd;
        if read {
            b.last_rd_cmd = col_cmd;
        }
        // Column latency (tCL ≈ tCWL at this granularity), then the beats
        // stream over the shared data bus.
        let data_at = col_cmd + self.cfg.t_cas;
        let beats = len.div_ceil(self.cfg.bus_bytes) as u64;
        let (_, bus_end) = self.bus.acquire(data_at, self.cfg.beat_time * beats);
        if !read {
            let b = &mut self.banks[coord.bank];
            b.wr_data_end = bus_end;
            self.wtr_ready = self.wtr_ready.max(bus_end + self.cfg.t_wtr);
        }

        self.stats.accesses += 1;
        if !read {
            self.stats.writes += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.beats += beats;
        self.stats.bytes_transferred += beats * self.cfg.bus_bytes as u64;
        self.tracer.emit(|| {
            TraceEvent::span(
                Track::DramBank(coord.bank as u32),
                if read {
                    TraceEventKind::DramRead
                } else {
                    TraceEventKind::DramWrite
                },
                first_cmd,
                bus_end,
                addr,
                row_hit as u64,
            )
        });
        (first_cmd, bus_end, row_hit)
    }

    /// Services a request and returns its completion (same contract as
    /// [`DramController::access`](crate::DramController::access)).
    pub fn access(&mut self, req: MemRequest) -> Completion {
        // Cross-request FR-FCFS: a read scheduled while older writes sit in
        // the event-mode write buffer has bypassed them. The buffer is
        // empty whenever the controller runs purely synchronously, so this
        // can never perturb the arrival-ordered paths.
        if req.kind == ReqKind::Read && !self.pending_writes.is_empty() {
            self.stats.fr_fcfs_reorders += 1;
            let pending = self.pending_writes.len() as u64;
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::System,
                    TraceEventKind::FrFcfsReorder,
                    req.ready,
                    pending,
                    0,
                )
            });
        }
        let (admitted, outstanding) = self.admit(req.ready);
        // Front-end (queueing logic, PHY) latency, as in the occupancy
        // model — charged once per request, not per chunk.
        let issue = admitted + self.cfg.controller_overhead;

        // FR-FCFS within the request: schedule chunks that hit an already
        // open row before the ones that need an activate. The common case —
        // a cache-line fill inside one DRAM row — is a single chunk and
        // must not allocate on this hot path; only multi-row bursts
        // collect and reorder.
        let mut iter = self.mapping.split_by_row(req.addr, req.bytes.max(1));
        let first = iter.next().expect("a request covers at least one byte");
        let mut rest: Vec<(u64, usize)> = iter.collect();
        let single = [first];
        let chunks: &[(u64, usize)] = if rest.is_empty() {
            &single
        } else {
            rest.insert(0, first);
            // Cached key: one decode per chunk during the sort instead of
            // one per comparison.
            rest.sort_by_cached_key(|&(addr, _)| {
                let coord = self.mapping.decode(addr);
                self.banks[coord.bank].open_row != Some(coord.row)
            });
            &rest
        };

        let mut start: Option<SimTime> = None;
        let mut finish = req.ready;
        let mut all_hits = true;
        let n_chunks = chunks.len() as u64;
        for &(addr, len) in chunks {
            let (first_cmd, bus_end, row_hit) = self.schedule_chunk(addr, len, issue, req.kind);
            all_hits &= row_hit;
            start = Some(start.map_or(first_cmd, |s| s.min(first_cmd)));
            finish = finish.max(bus_end);
            match req.requestor {
                Requestor::Core(core) => {
                    if self.stats.per_core_accesses.len() <= core {
                        self.stats.per_core_accesses.resize(core + 1, 0);
                    }
                    self.stats.per_core_accesses[core] += 1;
                }
                Requestor::Rme => self.stats.rme_accesses += 1,
            }
        }
        // One occupancy sample per chunk, so `avg_queue_occupancy` (which
        // divides by per-chunk `accesses`) is an exact mean-at-admission.
        self.stats.queue_occupancy_sum += outstanding * n_chunks;
        self.inflight.push(finish);

        Completion {
            start: start.expect("a request schedules at least one chunk"),
            finish,
            row_hit: all_hits,
        }
    }

    /// Issues a request asynchronously. Reads are scheduled eagerly (they
    /// are latency-critical and the simulator's callers compute with their
    /// timing); writes in event mode enter the
    /// `pending_writes` buffer and are scheduled at
    /// the next drain, row-hits first — the cross-request FR-FCFS window.
    pub fn issue(&mut self, req: MemRequest) -> RequestId {
        let id = self.queue.next_id();
        if req.kind == ReqKind::Write {
            self.stats.writebacks += 1;
            if self.event_mode {
                self.pending_writes.push((id, req));
                // Backstop: a real controller's write buffer is bounded by
                // the transaction queue; past that everything drains.
                if self.pending_writes.len() > self.cfg.queue_depth.max(1) {
                    self.flush_pending_writes(None);
                }
                return id;
            }
        }
        let completion = self.access(req);
        self.queue.push(id, completion);
        id
    }

    /// Schedules buffered writes whose `ready` time is at or before `now`
    /// (`None` = all of them), row-buffer hits first. A hit promoted past
    /// an older buffered miss counts one FR-FCFS reorder.
    fn flush_pending_writes(&mut self, now: Option<SimTime>) {
        if self.pending_writes.is_empty() {
            return;
        }
        let mut due: Vec<(RequestId, MemRequest)> = Vec::new();
        let mut i = 0;
        while i < self.pending_writes.len() {
            let ready = self.pending_writes[i].1.ready;
            if now.is_none_or(|cut| ready <= cut) {
                due.push(self.pending_writes.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if due.is_empty() {
            return;
        }
        // Arrival order first, then a stable partition by row-hit status
        // against the banks as they stand now: hits schedule ahead of
        // misses, ties stay in arrival order. Classification is a snapshot
        // — scheduling a miss opens its row, but re-classifying mid-drain
        // would make the schedule depend on Vec internals rather than the
        // request stream, and determinism wins here.
        due.sort_by_key(|&(id, _)| id);
        let hit_now = |dram: &Self, req: &MemRequest| {
            dram.mapping
                .split_by_row(req.addr, req.bytes.max(1))
                .all(|(addr, _)| {
                    let coord = dram.mapping.decode(addr);
                    dram.banks[coord.bank].open_row == Some(coord.row)
                })
        };
        let hits: Vec<bool> = due.iter().map(|(_, req)| hit_now(self, req)).collect();
        let oldest_miss = due
            .iter()
            .zip(&hits)
            .find(|&(_, &h)| !h)
            .map(|(&(id, _), _)| id);
        let mut ordered: Vec<(RequestId, MemRequest)> = Vec::with_capacity(due.len());
        for (&(id, req), _) in due.iter().zip(&hits).filter(|&(_, &h)| h) {
            if oldest_miss.is_some_and(|m| id > m) {
                self.stats.fr_fcfs_reorders += 1;
                let pending = due.len() as u64;
                self.tracer.emit(|| {
                    TraceEvent::instant(
                        Track::System,
                        TraceEventKind::FrFcfsReorder,
                        req.ready,
                        pending,
                        0,
                    )
                });
            }
            ordered.push((id, req));
        }
        ordered.extend(due.iter().zip(&hits).filter(|&(_, &h)| !h).map(|(&e, _)| e));
        for (id, req) in ordered {
            let completion = self.access(req);
            self.queue.push(id, completion);
        }
    }

    /// Schedules every buffered write that became ready, then returns every
    /// completion that finished at or before `now`, ordered by
    /// `(finish, id)`.
    pub fn drain_completions(&mut self, now: SimTime) -> &[(RequestId, Completion)] {
        self.flush_pending_writes(Some(now));
        let delivered = self.queue.drain_due(now).len() as u64;
        if delivered > 0 {
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::System,
                    TraceEventKind::CompletionDrain,
                    now,
                    delivered,
                    0,
                )
            });
        }
        self.queue.drained()
    }

    /// Schedules every buffered write and drains every outstanding
    /// completion regardless of finish time (end of a measured run).
    pub fn drain_all(&mut self) -> &[(RequestId, Completion)] {
        self.flush_pending_writes(None);
        self.queue.drain_remaining()
    }

    /// Issued requests whose completions have not been drained yet
    /// (including still-buffered writes).
    pub fn outstanding(&self) -> usize {
        self.queue.outstanding() + self.pending_writes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> DramConfig {
        DramConfig {
            xor_bank_hash: false,
            ..DramConfig::default()
        }
    }

    fn ctl() -> CycleAccurateDram {
        CycleAccurateDram::new(cfg())
    }

    /// Address of `row` on the bank that address 0 maps to.
    fn same_bank_row(c: &CycleAccurateDram, row: u64) -> u64 {
        let bank = c.mapping().decode(0).bank;
        c.mapping().encode(crate::address::DramCoord {
            bank,
            row,
            column: 0,
        })
    }

    #[test]
    fn back_to_back_activates_respect_trc() {
        let mut c = ctl();
        let d = cfg();
        let a = c.access(MemRequest::new(0, 64, SimTime::ZERO));
        assert!(!a.row_hit);
        // Same bank, different row, ready immediately: the second ACT must
        // wait out tRAS + tRP behind the first.
        let b = c.access(MemRequest::new(same_bank_row(&c, 1), 64, SimTime::ZERO));
        assert!(!b.row_hit);
        let first_act = d.controller_overhead;
        let lower = first_act + d.t_rc() + d.t_rcd + d.t_cas + d.transfer_time(64);
        assert!(
            b.finish >= lower,
            "second activate must respect tRC: finish {} < bound {lower}",
            b.finish
        );
    }

    #[test]
    fn fifth_activate_in_a_tfaw_window_stalls() {
        let mut c = ctl();
        let d = cfg();
        // Five row misses on five different banks, all ready at once: four
        // activates issue immediately, the fifth waits for the window.
        let row_stride = d.row_bytes as u64;
        let mut last = Completion {
            start: SimTime::ZERO,
            finish: SimTime::ZERO,
            row_hit: true,
        };
        for bank in 0..5u64 {
            last = c.access(MemRequest::new(bank * row_stride, 64, SimTime::ZERO));
        }
        assert_eq!(c.stats().tfaw_stalls, 1, "exactly the fifth ACT stalls");
        let lower = d.controller_overhead + d.t_faw + d.t_rcd + d.t_cas;
        assert!(
            last.finish >= lower,
            "fifth activate must wait out tFAW: finish {} < bound {lower}",
            last.finish
        );
        // A sixth access that hits an open row needs no ACT and no stall.
        let hit = c.access(MemRequest::new(16, 16, last.finish));
        assert!(hit.row_hit);
        assert_eq!(c.stats().tfaw_stalls, 1);
    }

    #[test]
    fn refresh_closes_open_rows_and_stalls_the_bank() {
        let mut c = ctl();
        let d = cfg();
        let a = c.access(MemRequest::new(0, 64, SimTime::ZERO));
        assert!(!a.row_hit);
        // Well before tREFI the row is still open.
        let warm = c.access(MemRequest::new(64, 64, a.finish));
        assert!(warm.row_hit);
        assert_eq!(c.stats().refreshes, 0);
        // Past the first refresh window the row has been closed by the
        // refresh and the access pays a fresh activate after tRFC.
        let after = d.t_refi + SimTime::from_nanos(1);
        let b = c.access(MemRequest::new(0, 64, after));
        assert!(!b.row_hit, "refresh must close the open row");
        assert!(c.stats().refreshes >= 1);
        let recovery = d.t_refi + d.t_rfc;
        assert!(
            b.finish >= recovery + d.t_rcd + d.t_cas,
            "bank must wait out tRFC: finish {} vs recovery {recovery}",
            b.finish
        );
    }

    #[test]
    fn write_to_read_turnaround_is_charged() {
        let d = cfg();
        // Write and read to the same row, both presented at t=0 (the
        // pipelined case where the turnaround bites: a read issued long
        // after the write has drained hides tWTR under the front-end
        // overhead).
        let mut c = ctl();
        let w = c.access(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        let r = c.access(MemRequest::new(64, 64, SimTime::ZERO));
        assert!(r.row_hit);
        assert_eq!(c.stats().writes, 1, "exactly the write is attributed");
        // The read command waits tWTR after the write burst ends.
        assert!(
            r.finish >= w.finish + d.t_wtr + d.t_cas,
            "read after write must pay tWTR: {} vs write end {}",
            r.finish,
            w.finish
        );
        // Control: read-after-read with the same presentation pipelines
        // at tCCD and finishes sooner.
        let mut c2 = ctl();
        let w2 = c2.access(MemRequest::new(0, 64, SimTime::ZERO));
        let r2 = c2.access(MemRequest::new(64, 64, SimTime::ZERO));
        assert_eq!(w.finish, w2.finish, "first accesses are timing-identical");
        assert!(r2.finish < r.finish, "turnaround must cost time");
    }

    #[test]
    fn write_recovery_delays_the_following_precharge() {
        let d = cfg();
        let mut c = ctl();
        let w = c.access(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        // Same bank, different row: PRE must wait tWR after the write data.
        let conflict = c.access(MemRequest::new(same_bank_row(&c, 1), 64, w.finish));
        assert!(!conflict.row_hit);
        assert!(
            conflict.finish >= w.finish + d.t_wr + d.t_rp + d.t_rcd + d.t_cas,
            "precharge after a write must pay tWR ({} vs {})",
            conflict.finish,
            w.finish
        );
    }

    #[test]
    fn row_hits_pipeline_at_tccd() {
        let mut c = ctl();
        let d = cfg();
        let a = c.access(MemRequest::new(0, 16, SimTime::ZERO));
        // Two hits presented at the same ready time: their column commands
        // pipeline at tCCD, so completions are one tCCD (+ beat) apart.
        let h1 = c.access(MemRequest::new(16, 16, a.finish));
        let h2 = c.access(MemRequest::new(32, 16, a.finish));
        assert!(h1.row_hit && h2.row_hit);
        let delta = h2.finish.saturating_sub(h1.finish);
        assert_eq!(delta, d.t_ccd, "hits pipeline at the tCCD rate");
    }

    #[test]
    fn full_transaction_queue_stalls_admission() {
        let mut c = CycleAccurateDram::new(DramConfig {
            queue_depth: 2,
            xor_bank_hash: false,
            ..DramConfig::default()
        });
        // Many independent requests all ready at t=0: only two can be in
        // flight, the rest wait at admission.
        for i in 0..8u64 {
            c.access(MemRequest::new(i * 4096, 64, SimTime::ZERO));
        }
        assert!(c.stats().queue_stalls > 0, "bounded queue must stall");
        assert!(c.stats().avg_queue_occupancy() > 0.0);
        // An unbounded-ish queue sees no stalls for the same traffic.
        let mut wide = ctl();
        for i in 0..8u64 {
            wide.access(MemRequest::new(i * 4096, 64, SimTime::ZERO));
        }
        assert_eq!(wide.stats().queue_stalls, 0);
    }

    #[test]
    fn admission_stalls_never_reorder_same_bank_completions() {
        let mut c = CycleAccurateDram::new(DramConfig {
            queue_depth: 2,
            xor_bank_hash: false,
            ..DramConfig::default()
        });
        // A burst of same-bank requests (cycling three rows so nearly
        // every one is a row conflict), all presented at t=0: admission
        // stalls throttle the stream, but the bank serialises its
        // commands in arrival order, so completions must come back in
        // issue order regardless of how the queue drained.
        let mut finishes = Vec::new();
        for i in 0..12u64 {
            let addr = same_bank_row(&c, i % 3);
            finishes.push(c.access(MemRequest::new(addr, 64, SimTime::ZERO)).finish);
        }
        assert!(c.stats().queue_stalls > 0, "the bounded queue must stall");
        assert!(
            finishes.windows(2).all(|w| w[0] <= w[1]),
            "same-bank completions reordered under admission stalls: {finishes:?}"
        );
        // Occupancy honestly reports saturation: the maximum equals the
        // configured depth, never more.
        assert_eq!(c.stats().queue_occupancy_max, 2);
        // The same traffic against the default (deep) queue never stalls,
        // fills well past 2, and keeps the same completion order.
        let mut wide = ctl();
        let mut wide_finishes = Vec::new();
        for i in 0..12u64 {
            let addr = same_bank_row(&wide, i % 3);
            wide_finishes.push(wide.access(MemRequest::new(addr, 64, SimTime::ZERO)).finish);
        }
        assert_eq!(wide.stats().queue_stalls, 0);
        assert_eq!(wide.stats().queue_occupancy_max, 12);
        assert!(wide_finishes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn row_spanning_requests_are_split_and_ordered_hits_first() {
        let mut c = ctl();
        // Open row 1's row buffer, then issue a burst spanning rows 0→1:
        // the row-1 chunk is a hit and schedules first.
        let row = cfg().row_bytes as u64;
        let warm = c.access(MemRequest::new(row, 64, SimTime::ZERO));
        assert!(!warm.row_hit);
        let spanning = c.access(MemRequest::new(row - 32, 64, warm.finish));
        assert!(!spanning.row_hit, "the row-0 half still misses");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().row_hits, 1, "the row-1 half hits the open row");
    }

    #[test]
    fn stats_reset_and_determinism() {
        let run = || {
            let mut c = ctl();
            let mut last = SimTime::ZERO;
            for i in 0..64u64 {
                let done = c.access(MemRequest::new(i * 96, 32, SimTime::from_nanos(i)));
                last = last.max(done.finish);
            }
            (last, c.stats().clone())
        };
        let (end_a, stats_a) = run();
        let (end_b, stats_b) = run();
        assert_eq!(end_a, end_b);
        assert_eq!(stats_a, stats_b);

        let mut c = ctl();
        c.access(MemRequest::new(0, 64, SimTime::ZERO));
        c.reset();
        assert_eq!(c.stats(), &DramStats::default());
        assert_eq!(c.bus_free_at(), SimTime::ZERO);
    }

    #[test]
    fn event_mode_buffers_writes_and_reads_bypass_them() {
        let mut c = ctl();
        c.set_event_driven(true);
        let w = c.issue(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        assert_eq!(c.outstanding(), 1, "the write sits buffered");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().writes, 0, "not scheduled yet");
        // A read issued while the write is buffered bypasses it.
        let r = c.issue(MemRequest::new(1 << 16, 64, SimTime::ZERO));
        assert!(w < r, "ids are monotone in issue order");
        assert_eq!(c.stats().fr_fcfs_reorders, 1, "read bypassed a buffered write");
        let drained: Vec<RequestId> = c.drain_all().iter().map(|&(id, _)| id).collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(c.stats().writes, 1, "drain scheduled the write");
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn buffered_writes_drain_row_hits_first() {
        let mut c = ctl();
        c.set_event_driven(true);
        // Open row 0's row buffer on bank 0.
        let warm = c.access(MemRequest::new(0, 64, SimTime::ZERO));
        assert!(!warm.row_hit);
        // Buffer a row-conflict write first, then a row-hit write.
        let miss = c.issue(
            MemRequest::new(same_bank_row(&c, 1), 64, warm.finish).as_write(),
        );
        let hit = c.issue(MemRequest::new(64, 64, warm.finish).as_write());
        let before = c.stats().fr_fcfs_reorders;
        let drained: Vec<(RequestId, Completion)> = c
            .drain_all()
            .to_vec();
        assert_eq!(
            c.stats().fr_fcfs_reorders,
            before + 1,
            "the row hit overtook the older buffered miss"
        );
        // Completions come back ordered by finish: the promoted hit ends
        // before the conflict write it overtook.
        let pos = |id| drained.iter().position(|&(d, _)| d == id).unwrap();
        assert!(pos(hit) < pos(miss), "hit must finish first: {drained:?}");
    }

    #[test]
    fn write_buffer_backstop_bounds_the_window() {
        let mut c = CycleAccurateDram::new(DramConfig {
            queue_depth: 2,
            xor_bank_hash: false,
            ..DramConfig::default()
        });
        c.set_event_driven(true);
        for i in 0..8u64 {
            c.issue(MemRequest::new(i * 4096, 64, SimTime::ZERO).as_write());
        }
        assert!(
            c.stats().writes >= 6,
            "the capacity backstop must have flushed buffered writes"
        );
        assert_eq!(c.stats().writebacks, 8);
        // Mode survives reset; buffered/pending state does not.
        c.reset();
        assert!(c.event_driven());
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.stats(), &DramStats::default());
    }

    #[test]
    fn synchronous_path_never_counts_reorders() {
        let mut c = ctl();
        c.access(MemRequest::new(0, 64, SimTime::ZERO).as_write());
        c.access(MemRequest::new(64, 64, SimTime::ZERO));
        c.access(MemRequest::new(same_bank_row(&c, 3), 64, SimTime::ZERO));
        assert_eq!(c.stats().fr_fcfs_reorders, 0);
        // Event-mode *reads* through issue() are eager and also reorder-free
        // while no write is buffered.
        c.set_event_driven(true);
        c.issue(MemRequest::new(128, 64, SimTime::ZERO));
        assert_eq!(c.stats().fr_fcfs_reorders, 0);
    }

    proptest! {
        /// The cycle-accurate model never completes a request earlier than
        /// the idealized row-hit lower bound: even a request that hits an
        /// open row on an idle device pays the front-end overhead, the
        /// column latency and its bus beats.
        #[test]
        fn never_beats_the_row_hit_lower_bound(
            ops in proptest::collection::vec(
                (0u64..32 * 2048 * 8, 1usize..256, 0u64..100_000u64, any::<bool>()),
                1..64,
            )
        ) {
            let d = cfg();
            let mut c = CycleAccurateDram::new(d);
            for (addr, bytes, ready_ns, write) in ops {
                let ready = SimTime::from_nanos(ready_ns);
                let mut req = MemRequest::new(addr, bytes, ready);
                if write {
                    req = req.as_write();
                }
                let done = c.access(req);
                let ideal = ready + d.controller_overhead + d.t_cas + d.transfer_time(bytes);
                prop_assert!(
                    done.finish >= ideal,
                    "completion {} beat the ideal row-hit bound {} (addr {addr}, {bytes} B)",
                    done.finish, ideal
                );
                prop_assert!(done.start >= ready);
            }
        }
    }
}
