//! The byte contents of main memory.
//!
//! A [`PhysicalMemory`] is a flat, zero-initialised byte array plus a bump
//! allocator for carving out regions (tables, columnar copies, ephemeral
//! address ranges). Addresses are plain `u64` byte offsets; the simulated
//! platform has no virtual memory because the paper's prototype also works
//! on physically contiguous buffers.

/// Byte-addressable simulated main memory.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    bytes: Vec<u8>,
    next_alloc: u64,
}

impl PhysicalMemory {
    /// Creates a memory of `capacity` zeroed bytes.
    pub fn new(capacity: usize) -> Self {
        PhysicalMemory {
            bytes: vec![0u8; capacity],
            next_alloc: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes handed out by [`alloc`](Self::alloc) so far.
    pub fn allocated(&self) -> u64 {
        self.next_alloc
    }

    /// Allocates a region of `size` bytes aligned to `align` (must be a
    /// power of two). Returns the region's base address.
    ///
    /// # Panics
    /// Panics if the region does not fit or `align` is not a power of two.
    pub fn alloc(&mut self, size: usize, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next_alloc + align - 1) & !(align - 1);
        let end = base + size as u64;
        assert!(
            end <= self.bytes.len() as u64,
            "physical memory exhausted: need {end} bytes, have {}",
            self.bytes.len()
        );
        self.next_alloc = end;
        base
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        let start = addr as usize;
        &self.bytes[start..start + len]
    }

    /// Copies `len` bytes starting at `addr` into `dst` (which must be at
    /// least `len` long).
    pub fn read_into(&self, addr: u64, dst: &mut [u8]) {
        let start = addr as usize;
        dst.copy_from_slice(&self.bytes[start..start + dst.len()]);
    }

    /// Reads a little-endian unsigned integer of `width` ∈ 1..=8 bytes.
    ///
    /// Hot path of every simulated field read: when eight bytes are in
    /// bounds this is a single unaligned load + mask; the byte-wise copy
    /// only survives for reads at the very end of memory.
    #[inline]
    pub fn read_uint(&self, addr: u64, width: usize) -> u64 {
        debug_assert!(width <= 8);
        let start = addr as usize;
        if let Some(chunk) = self.bytes.get(start..start + 8) {
            let value = u64::from_le_bytes(chunk.try_into().expect("8-byte slice"));
            if width >= 8 {
                value
            } else {
                value & ((1u64 << (8 * width)) - 1)
            }
        } else {
            let mut buf = [0u8; 8];
            buf[..width].copy_from_slice(self.read(addr, width));
            u64::from_le_bytes(buf)
        }
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let start = addr as usize;
        self.bytes[start..start + data.len()].copy_from_slice(data);
    }

    /// Writes a little-endian unsigned integer of `width` ∈ {1,2,4,8} bytes.
    pub fn write_uint(&mut self, addr: u64, width: usize, value: u64) {
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..width]);
    }

    /// Fills a region with a byte value.
    pub fn fill(&mut self, addr: u64, len: usize, value: u8) {
        let start = addr as usize;
        self.bytes[start..start + len].fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_bounds() {
        let mut mem = PhysicalMemory::new(4096);
        let a = mem.alloc(10, 1);
        assert_eq!(a, 0);
        let b = mem.alloc(16, 64);
        assert_eq!(b % 64, 0);
        assert!(b >= 10);
        assert_eq!(mem.allocated(), b + 16);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_over_capacity_panics() {
        let mut mem = PhysicalMemory::new(128);
        let _ = mem.alloc(256, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn alloc_bad_alignment_panics() {
        let mut mem = PhysicalMemory::new(128);
        let _ = mem.alloc(8, 3);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = PhysicalMemory::new(1024);
        mem.write(100, &[1, 2, 3, 4]);
        assert_eq!(mem.read(100, 4), &[1, 2, 3, 4]);
        let mut buf = [0u8; 2];
        mem.read_into(101, &mut buf);
        assert_eq!(buf, [2, 3]);
    }

    #[test]
    fn uint_roundtrip_all_widths() {
        let mut mem = PhysicalMemory::new(1024);
        for (width, value) in [(1usize, 0xAAu64), (2, 0xBEEF), (4, 0xDEADBEEF), (8, u64::MAX - 5)] {
            mem.write_uint(64, width, value);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(mem.read_uint(64, width), value & mask);
        }
    }

    #[test]
    fn fill_fills() {
        let mut mem = PhysicalMemory::new(256);
        mem.fill(10, 5, 0x7f);
        assert_eq!(mem.read(10, 5), &[0x7f; 5]);
        assert_eq!(mem.read(15, 1), &[0]);
    }
}
