//! Column-group descriptions — the software side of an ephemeral variable.
//!
//! A [`ColumnGroup`] names the subset of a schema's columns a query wants,
//! in ascending row order (possibly non-contiguous, exactly like
//! `column_group_1` in Listing 2 of the paper). From it we derive the packed
//! layout the CPU will see (dense concatenation of the selected fields) and
//! the geometry parameters the RME's configuration port needs: per-column
//! widths `CA_j` and relative offsets `OA_j` (each column's offset measured
//! from the previous column of interest).

use crate::error::StorageError;
use crate::schema::Schema;

/// An ordered selection of columns to project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnGroup {
    columns: Vec<usize>,
}

impl ColumnGroup {
    /// Creates a column group from ascending, distinct column indices.
    pub fn new(columns: Vec<usize>) -> Result<Self, StorageError> {
        if columns.is_empty() {
            return Err(StorageError::InvalidColumnGroup(
                "a column group needs at least one column".into(),
            ));
        }
        if !columns.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::InvalidColumnGroup(
                "column indices must be strictly ascending".into(),
            ));
        }
        Ok(ColumnGroup { columns })
    }

    /// A group projecting every column of `schema` (a full-row view).
    pub fn all(schema: &Schema) -> Self {
        ColumnGroup {
            columns: (0..schema.num_columns()).collect(),
        }
    }

    /// The selected column indices.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of selected columns (the paper's `Q`).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the group is empty (never the case for a constructed group).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Validates the group against a schema and the RME's structural limits.
    pub fn validate(&self, schema: &Schema, max_columns: usize, max_width: usize) -> Result<(), StorageError> {
        if self.columns.len() > max_columns {
            return Err(StorageError::InvalidColumnGroup(format!(
                "{} columns requested but the engine supports at most {max_columns}",
                self.columns.len()
            )));
        }
        for &c in &self.columns {
            let def = schema.column(c)?;
            if def.ty.width() > max_width {
                return Err(StorageError::InvalidColumnGroup(format!(
                    "column {:?} is {} bytes wide, engine supports at most {max_width}",
                    def.name,
                    def.ty.width()
                )));
            }
        }
        Ok(())
    }

    /// Widths of the selected columns (`CA_j`).
    pub fn widths(&self, schema: &Schema) -> Result<Vec<usize>, StorageError> {
        self.columns.iter().map(|&c| schema.width(c)).collect()
    }

    /// Absolute byte offsets of the selected columns within the source row.
    pub fn row_offsets(&self, schema: &Schema) -> Result<Vec<usize>, StorageError> {
        self.columns.iter().map(|&c| schema.offset(c)).collect()
    }

    /// The paper's `OA_j` encoding: the first entry is the absolute offset
    /// of the first column of interest, and each subsequent entry is the
    /// offset *delta* from the previous column of interest.
    pub fn oa_deltas(&self, schema: &Schema) -> Result<Vec<usize>, StorageError> {
        let abs = self.row_offsets(schema)?;
        let mut out = Vec::with_capacity(abs.len());
        let mut prev = 0usize;
        for (j, &off) in abs.iter().enumerate() {
            if j == 0 {
                out.push(off);
            } else {
                out.push(off - prev);
            }
            prev = off;
        }
        Ok(out)
    }

    /// Width in bytes of one packed (projected) row.
    pub fn packed_row_bytes(&self, schema: &Schema) -> Result<usize, StorageError> {
        Ok(self.widths(schema)?.iter().sum())
    }

    /// Byte offset of each selected column within the packed row.
    pub fn packed_offsets(&self, schema: &Schema) -> Result<Vec<usize>, StorageError> {
        let widths = self.widths(schema)?;
        let mut out = Vec::with_capacity(widths.len());
        let mut off = 0usize;
        for w in widths {
            out.push(off);
            off += w;
        }
        Ok(out)
    }

    /// Reference (software) projection of a single row's bytes: the packed
    /// concatenation of the selected fields. The RME's hardware packing is
    /// property-tested against this function.
    pub fn pack_row(&self, schema: &Schema, row_bytes: &[u8]) -> Result<Vec<u8>, StorageError> {
        let mut out = Vec::with_capacity(self.packed_row_bytes(schema)?);
        for &c in &self.columns {
            let off = schema.offset(c)?;
            let w = schema.width(c)?;
            out.extend_from_slice(&row_bytes[off..off + w]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::listing1()
    }

    #[test]
    fn listing2_column_group() {
        // num_fld1, num_fld3, num_fld4 — columns 5, 7, 8 of Listing 1.
        let s = schema();
        let g = ColumnGroup::new(vec![5, 7, 8]).unwrap();
        g.validate(&s, 11, 64).unwrap();
        assert_eq!(g.widths(&s).unwrap(), vec![8, 8, 8]);
        assert_eq!(g.row_offsets(&s).unwrap(), vec![64, 80, 88]);
        assert_eq!(g.oa_deltas(&s).unwrap(), vec![64, 16, 8]);
        assert_eq!(g.packed_row_bytes(&s).unwrap(), 24);
        assert_eq!(g.packed_offsets(&s).unwrap(), vec![0, 8, 16]);
    }

    #[test]
    fn invalid_groups_rejected() {
        let s = schema();
        assert!(ColumnGroup::new(vec![]).is_err());
        assert!(ColumnGroup::new(vec![3, 3]).is_err());
        assert!(ColumnGroup::new(vec![5, 2]).is_err());
        let too_many = ColumnGroup::all(&s);
        assert!(too_many.validate(&s, 5, 64).is_err());
        // Column 3 (text_fld3) is 20 bytes; a 16-byte limit rejects it.
        let wide = ColumnGroup::new(vec![3]).unwrap();
        assert!(wide.validate(&s, 11, 16).is_err());
        assert!(wide.validate(&s, 11, 64).is_ok());
        // Out-of-range column index.
        let oob = ColumnGroup::new(vec![42]).unwrap();
        assert!(oob.validate(&s, 11, 64).is_err());
    }

    #[test]
    fn pack_row_concatenates_selected_fields() {
        let s = Schema::benchmark(4, 2, 8); // columns at offsets 0,2,4,6
        let g = ColumnGroup::new(vec![0, 2]).unwrap();
        let row: Vec<u8> = (0u8..8).collect();
        assert_eq!(g.pack_row(&s, &row).unwrap(), vec![0, 1, 4, 5]);
    }

    proptest! {
        #[test]
        fn oa_deltas_reconstruct_absolute_offsets(cols in proptest::collection::btree_set(0usize..10, 1..=10)) {
            let s = schema();
            let g = ColumnGroup::new(cols.into_iter().collect()).unwrap();
            let abs = g.row_offsets(&s).unwrap();
            let deltas = g.oa_deltas(&s).unwrap();
            // Per the paper: offset of column j = sum of OA_0..=OA_j.
            let mut sum = 0usize;
            for (j, d) in deltas.iter().enumerate() {
                sum += d;
                prop_assert_eq!(sum, abs[j]);
            }
        }

        #[test]
        fn packed_row_width_is_sum_of_widths(cols in proptest::collection::btree_set(0usize..10, 1..=10)) {
            let s = schema();
            let g = ColumnGroup::new(cols.into_iter().collect()).unwrap();
            let row = vec![0xAAu8; s.row_bytes()];
            let packed = g.pack_row(&s, &row).unwrap();
            prop_assert_eq!(packed.len(), g.packed_row_bytes(&s).unwrap());
        }
    }
}
