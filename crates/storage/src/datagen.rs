//! Seeded synthetic data generation for the Relational Memory Benchmark.
//!
//! The paper's benchmark populates relations `S` and `R` with tunable column
//! and row widths; selections such as `WHERE A3 > k` hit a target
//! selectivity because values are drawn uniformly from a known range. The
//! generator is fully deterministic given its seed so that experiments and
//! property tests are reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use relmem_dram::PhysicalMemory;

use crate::error::StorageError;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::RowTable;
use crate::types::{ColumnType, Value};

/// Upper bound (exclusive) of generated numeric values. Predicates can then
/// dial in a selectivity directly: `value < s * VALUE_RANGE` keeps a fraction
/// `s` of uniformly distributed rows.
pub const VALUE_RANGE: u64 = 1_000;

/// Deterministic data generator.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one row for `schema`: numeric columns uniform in
    /// `[0, VALUE_RANGE)`, byte columns random bytes (with their low bytes
    /// also bounded by `VALUE_RANGE` so numeric interpretation stays small).
    pub fn row(&mut self, schema: &Schema) -> Row {
        let values = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                ColumnType::UInt(w) => {
                    let bound = VALUE_RANGE.min(if w >= 8 {
                        u64::MAX
                    } else {
                        1u64 << (8 * w)
                    });
                    Value::UInt(self.rng.random_range(0..bound))
                }
                ColumnType::Bytes(w) => {
                    let mut bytes = vec![0u8; w];
                    let v = self.rng.random_range(0..VALUE_RANGE);
                    let n = w.min(8);
                    bytes[..n].copy_from_slice(&v.to_le_bytes()[..n]);
                    Value::Bytes(bytes)
                }
            })
            .collect();
        Row::new(values)
    }

    /// Appends `rows` generated rows to `table` (all visible from ts 1).
    pub fn fill_table(
        &mut self,
        mem: &mut PhysicalMemory,
        table: &mut RowTable,
        rows: u64,
    ) -> Result<(), StorageError> {
        let schema = table.schema().clone();
        for _ in 0..rows {
            let row = self.row(&schema);
            table.append(mem, &row, 1)?;
        }
        Ok(())
    }

    /// Fills a join *inner* relation `r` such that a target `match_fraction`
    /// of the rows of the already-populated *outer* relation `s` find a
    /// partner on the join column. Keys of the outer relation occupy
    /// `[0, VALUE_RANGE)`; non-matching inner keys are drawn from
    /// `[VALUE_RANGE, 2 * VALUE_RANGE)`.
    pub fn fill_join_inner(
        &mut self,
        mem: &mut PhysicalMemory,
        inner: &mut RowTable,
        rows: u64,
        join_col: usize,
        match_fraction: f64,
    ) -> Result<(), StorageError> {
        let schema = inner.schema().clone();
        // Clamp the key ranges to what the join column can physically hold:
        // narrow key columns (1 byte) cannot represent a disjoint
        // "non-matching" range, in which case every inner key may match.
        let capacity = match schema.column(join_col)?.ty {
            ColumnType::UInt(w) if w < 8 => 1u64 << (8 * w),
            _ => u64::MAX,
        };
        let upper = (2 * VALUE_RANGE).min(capacity);
        let split = VALUE_RANGE.min(upper / 2).max(1);
        for _ in 0..rows {
            let mut row = self.row(&schema);
            let matching = self.rng.random_bool(match_fraction);
            let key = if matching {
                self.rng.random_range(0..split)
            } else {
                self.rng.random_range(split..upper)
            };
            let mut values = row.values().to_vec();
            values[join_col] = Value::UInt(key);
            row = Row::new(values);
            inner.append(mem, &row, 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::MvccConfig;

    #[test]
    fn generation_is_deterministic() {
        let schema = Schema::benchmark(4, 4, 32);
        let mut a = DataGen::new(42);
        let mut b = DataGen::new(42);
        for _ in 0..10 {
            assert_eq!(a.row(&schema), b.row(&schema));
        }
        let mut c = DataGen::new(43);
        let differs = (0..10).any(|_| a.row(&schema) != c.row(&schema));
        assert!(differs, "different seeds should produce different data");
    }

    #[test]
    fn values_respect_range_and_widths() {
        let schema = Schema::benchmark(3, 1, 16);
        let mut g = DataGen::new(1);
        for _ in 0..100 {
            let row = g.row(&schema);
            for v in row.values().iter().take(3) {
                assert!(v.as_u64() < 256, "1-byte column overflow: {v:?}");
            }
        }
        let schema8 = Schema::benchmark(2, 8, 16);
        for _ in 0..100 {
            let row = g.row(&schema8);
            assert!(row.values()[0].as_u64() < VALUE_RANGE);
        }
    }

    #[test]
    fn fill_table_appends_requested_rows() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(4, 4, 64);
        let mut t = RowTable::create(&mut mem, schema, 500, MvccConfig::Disabled).unwrap();
        DataGen::new(5).fill_table(&mut mem, &mut t, 500).unwrap();
        assert_eq!(t.num_rows(), 500);
        // Every stored value is decodable and within range.
        let v = t.read_field(&mem, 499, 2).unwrap();
        assert!(v.as_u64() < VALUE_RANGE);
    }

    #[test]
    fn join_inner_match_fraction_is_respected() {
        let mut mem = PhysicalMemory::new(1 << 22);
        let schema = Schema::benchmark(4, 8, 64);
        let mut inner =
            RowTable::create(&mut mem, schema, 2_000, MvccConfig::Disabled).unwrap();
        DataGen::new(9)
            .fill_join_inner(&mut mem, &mut inner, 2_000, 1, 0.5)
            .unwrap();
        let mut matching = 0u64;
        for row in 0..2_000 {
            if inner.read_field(&mem, row, 1).unwrap().as_u64() < VALUE_RANGE {
                matching += 1;
            }
        }
        let frac = matching as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "match fraction was {frac}");
    }
}
