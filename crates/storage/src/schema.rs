//! Schemas and row layouts.
//!
//! A [`Schema`] is an ordered list of fixed-width columns; the row layout is
//! simply their concatenation (no padding — the paper's Listing 1 lays the
//! struct out the same way, and the RME addresses fields by byte offset, not
//! by alignment). Besides arbitrary user schemas this module provides the
//! two schemas the evaluation uses:
//!
//! * [`Schema::listing1`] — the ten-column example table of Listing 1, and
//! * [`Schema::benchmark`] — `n` columns of uniform width, the synthetic
//!   relation `S(A1..An)` of the Relational Memory Benchmark.

use crate::error::StorageError;
use crate::types::ColumnType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the schema).
    pub name: String,
    /// Physical type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered collection of columns plus the derived row layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    offsets: Vec<usize>,
    row_bytes: usize,
}

impl Schema {
    /// Builds a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        if columns.is_empty() {
            return Err(StorageError::EmptySchema);
        }
        for (i, c) in columns.iter().enumerate() {
            c.ty.validate()?;
            if columns[..i].iter().any(|other| other.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0usize;
        for c in &columns {
            offsets.push(off);
            off += c.ty.width();
        }
        Ok(Schema {
            columns,
            offsets,
            row_bytes: off,
        })
    }

    /// The ten-column schema of Listing 1 in the paper (104-byte rows).
    pub fn listing1() -> Schema {
        Schema::new(vec![
            ColumnDef::new("key", ColumnType::UInt(8)),
            ColumnDef::new("text_fld1", ColumnType::Bytes(8)),
            ColumnDef::new("text_fld2", ColumnType::Bytes(12)),
            ColumnDef::new("text_fld3", ColumnType::Bytes(20)),
            ColumnDef::new("text_fld4", ColumnType::Bytes(16)),
            ColumnDef::new("num_fld1", ColumnType::UInt(8)),
            ColumnDef::new("num_fld2", ColumnType::UInt(8)),
            ColumnDef::new("num_fld3", ColumnType::UInt(8)),
            ColumnDef::new("num_fld4", ColumnType::UInt(8)),
            ColumnDef::new("num_fld5", ColumnType::UInt(8)),
        ])
        .expect("listing1 schema is valid")
    }

    /// The synthetic benchmark relation: columns `A1..An`, each
    /// `column_width` bytes, with the row padded out to `row_bytes` by a
    /// trailing filler column if needed. This mirrors the paper's setup of
    /// "row size 64 bytes, column size 4 bytes" with tunable widths.
    ///
    /// # Panics
    /// Panics if the requested columns do not fit in `row_bytes`.
    pub fn benchmark(columns: usize, column_width: usize, row_bytes: usize) -> Schema {
        assert!(columns >= 1);
        assert!(
            columns * column_width <= row_bytes,
            "{columns} columns of {column_width} bytes exceed a {row_bytes}-byte row"
        );
        let mut defs = Vec::with_capacity(columns + 1);
        for i in 0..columns {
            let ty = if column_width <= 8 {
                ColumnType::UInt(column_width)
            } else {
                ColumnType::Bytes(column_width)
            };
            defs.push(ColumnDef::new(format!("A{}", i + 1), ty));
        }
        let used = columns * column_width;
        if used < row_bytes {
            defs.push(ColumnDef::new("fill", ColumnType::Bytes(row_bytes - used)));
        }
        Schema::new(defs).expect("benchmark schema is valid")
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Row width in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// A column definition by index.
    pub fn column(&self, idx: usize) -> Result<&ColumnDef, StorageError> {
        self.columns
            .get(idx)
            .ok_or(StorageError::ColumnOutOfRange(idx))
    }

    /// Byte offset of a column within the row.
    pub fn offset(&self, idx: usize) -> Result<usize, StorageError> {
        self.offsets
            .get(idx)
            .copied()
            .ok_or(StorageError::ColumnOutOfRange(idx))
    }

    /// Width in bytes of a column.
    pub fn width(&self, idx: usize) -> Result<usize, StorageError> {
        Ok(self.column(idx)?.ty.width())
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_layout_matches_paper() {
        let s = Schema::listing1();
        assert_eq!(s.num_columns(), 10);
        // 8 + 8 + 12 + 20 + 16 + 5*8 = 104 bytes.
        assert_eq!(s.row_bytes(), 104);
        assert_eq!(s.offset(0).unwrap(), 0);
        assert_eq!(s.offset(5).unwrap(), 64); // num_fld1 starts after the text fields
        assert_eq!(s.index_of("num_fld3"), Some(7));
    }

    #[test]
    fn benchmark_schema_pads_to_row_size() {
        let s = Schema::benchmark(11, 4, 64);
        assert_eq!(s.row_bytes(), 64);
        assert_eq!(s.num_columns(), 12); // 11 data columns + filler
        assert_eq!(s.width(0).unwrap(), 4);
        assert_eq!(s.width(11).unwrap(), 64 - 44);

        let exact = Schema::benchmark(4, 16, 64);
        assert_eq!(exact.num_columns(), 4);
        assert_eq!(exact.row_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn benchmark_schema_rejects_overflow() {
        let _ = Schema::benchmark(5, 16, 64);
    }

    #[test]
    fn duplicate_and_empty_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), StorageError::EmptySchema);
        let dup = Schema::new(vec![
            ColumnDef::new("a", ColumnType::UInt(4)),
            ColumnDef::new("a", ColumnType::UInt(4)),
        ]);
        assert!(matches!(dup, Err(StorageError::DuplicateColumn(_))));
    }

    #[test]
    fn offsets_are_cumulative_widths() {
        let s = Schema::new(vec![
            ColumnDef::new("a", ColumnType::UInt(2)),
            ColumnDef::new("b", ColumnType::Bytes(5)),
            ColumnDef::new("c", ColumnType::UInt(8)),
        ])
        .unwrap();
        assert_eq!(s.offset(0).unwrap(), 0);
        assert_eq!(s.offset(1).unwrap(), 2);
        assert_eq!(s.offset(2).unwrap(), 7);
        assert_eq!(s.row_bytes(), 15);
        assert!(s.offset(3).is_err());
    }
}
