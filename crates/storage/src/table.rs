//! Row-major tables resident in simulated physical memory.
//!
//! A [`RowTable`] is the paper's `struct row table[]`: an array of
//! fixed-width rows stored contiguously in [`PhysicalMemory`]. When MVCC is
//! enabled each row is preceded by a 16-byte version header (begin/end
//! timestamps); the logical schema is unaffected.

use std::cell::Cell;

use relmem_dram::PhysicalMemory;

use crate::error::StorageError;
use crate::mvcc::{decode_header, encode_header, MvccConfig, Snapshot, Timestamp};
use crate::row::Row;
use crate::schema::Schema;
use crate::types::Value;

/// A row-major table stored in physical memory.
#[derive(Debug, Clone)]
pub struct RowTable {
    schema: Schema,
    mvcc: MvccConfig,
    base: u64,
    capacity_rows: u64,
    /// Populated row count. A `Cell` because transactional inserts append
    /// through the shared references the workload ops carry; the simulator
    /// is single-threaded, so interior mutability is safe here.
    rows: Cell<u64>,
}

impl RowTable {
    /// Allocates space for `capacity_rows` rows in `mem` and returns an
    /// empty table.
    pub fn create(
        mem: &mut PhysicalMemory,
        schema: Schema,
        capacity_rows: u64,
        mvcc: MvccConfig,
    ) -> Result<Self, StorageError> {
        let phys_row = schema.row_bytes() + mvcc.header_bytes();
        let needed = phys_row as u64 * capacity_rows;
        let available = mem.capacity() as u64 - mem.allocated();
        if needed > available {
            return Err(StorageError::OutOfMemory {
                requested: needed as usize,
                available: available as usize,
            });
        }
        let base = mem.alloc(needed as usize, 64);
        Ok(RowTable {
            schema,
            mvcc,
            base,
            capacity_rows,
            rows: Cell::new(0),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The MVCC configuration.
    pub fn mvcc(&self) -> MvccConfig {
        self.mvcc
    }

    /// Number of rows currently stored (including versions no longer
    /// visible to new snapshots).
    pub fn num_rows(&self) -> u64 {
        self.rows.get()
    }

    /// Maximum number of rows the allocation can hold.
    pub fn capacity_rows(&self) -> u64 {
        self.capacity_rows
    }

    /// Base physical address of the table.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Bytes occupied by one row in memory (header + data).
    pub fn physical_row_bytes(&self) -> usize {
        self.schema.row_bytes() + self.mvcc.header_bytes()
    }

    /// Physical address of row `row` (start of its header if MVCC is on).
    pub fn row_addr(&self, row: u64) -> u64 {
        self.base + row * self.physical_row_bytes() as u64
    }

    /// Physical address of the data portion of row `row`.
    pub fn row_data_addr(&self, row: u64) -> u64 {
        self.row_addr(row) + self.mvcc.header_bytes() as u64
    }

    /// Physical address of field `col` of row `row`.
    pub fn field_addr(&self, row: u64, col: usize) -> Result<u64, StorageError> {
        Ok(self.row_data_addr(row) + self.schema.offset(col)? as u64)
    }

    /// Total bytes occupied by the populated part of the table.
    pub fn data_bytes(&self) -> u64 {
        self.rows.get() * self.physical_row_bytes() as u64
    }

    /// Appends a row, visible from `begin_ts` onwards. Returns its index.
    /// Takes `&self`: transactional inserts publish rows through the shared
    /// references held by in-flight workload ops.
    pub fn append(
        &self,
        mem: &mut PhysicalMemory,
        row: &Row,
        begin_ts: Timestamp,
    ) -> Result<u64, StorageError> {
        if self.rows.get() == self.capacity_rows {
            return Err(StorageError::OutOfMemory {
                requested: self.physical_row_bytes(),
                available: 0,
            });
        }
        let bytes = row.encode(&self.schema)?;
        let idx = self.rows.get();
        if self.mvcc.is_enabled() {
            mem.write(self.row_addr(idx), &encode_header(begin_ts, 0));
        }
        mem.write(self.row_data_addr(idx), &bytes);
        self.rows.set(idx + 1);
        Ok(idx)
    }

    /// Reads a whole row back.
    pub fn get_row(&self, mem: &PhysicalMemory, row: u64) -> Result<Row, StorageError> {
        self.check_row(row)?;
        let bytes = mem.read(self.row_data_addr(row), self.schema.row_bytes());
        Row::decode(&self.schema, bytes)
    }

    /// Reads a single field.
    pub fn read_field(
        &self,
        mem: &PhysicalMemory,
        row: u64,
        col: usize,
    ) -> Result<Value, StorageError> {
        self.check_row(row)?;
        let def = self.schema.column(col)?;
        let addr = self.field_addr(row, col)?;
        let bytes = mem.read(addr, def.ty.width());
        Ok(Value::decode(def.ty, bytes))
    }

    /// Overwrites a single field in place (a transactional update of the
    /// row-oriented base data).
    pub fn write_field(
        &self,
        mem: &mut PhysicalMemory,
        row: u64,
        col: usize,
        value: &Value,
    ) -> Result<(), StorageError> {
        self.check_row(row)?;
        let def = self.schema.column(col)?;
        if !value.compatible_with(def.ty) {
            return Err(StorageError::TypeMismatch {
                column: def.name.clone(),
                expected: def.ty.name(),
            });
        }
        let addr = self.field_addr(row, col)?;
        mem.write(addr, &value.encode(def.ty.width()));
        Ok(())
    }

    /// Reads the MVCC header of a row (begin, end). Rows of non-MVCC tables
    /// report `(0, 0)` — visible to every snapshot.
    pub fn version(&self, mem: &PhysicalMemory, row: u64) -> Result<(Timestamp, Timestamp), StorageError> {
        self.check_row(row)?;
        if !self.mvcc.is_enabled() {
            return Ok((0, 0));
        }
        Ok(decode_header(mem.read(self.row_addr(row), 16)))
    }

    /// Marks a row version as ended at `end_ts` (delete, or the old half of
    /// an update).
    pub fn mark_deleted(
        &self,
        mem: &mut PhysicalMemory,
        row: u64,
        end_ts: Timestamp,
    ) -> Result<(), StorageError> {
        self.check_row(row)?;
        if !self.mvcc.is_enabled() {
            return Err(StorageError::InvalidColumnGroup(
                "cannot delete from a table without MVCC headers".into(),
            ));
        }
        let (begin, _) = self.version(mem, row)?;
        mem.write(self.row_addr(row), &encode_header(begin, end_ts));
        Ok(())
    }

    /// MVCC update: ends the old version and appends the new one.
    pub fn update(
        &self,
        mem: &mut PhysicalMemory,
        row: u64,
        new_row: &Row,
        ts: Timestamp,
    ) -> Result<u64, StorageError> {
        self.mark_deleted(mem, row, ts)?;
        self.append(mem, new_row, ts)
    }

    /// Whether a row version is visible to `snapshot`.
    pub fn visible(
        &self,
        mem: &PhysicalMemory,
        row: u64,
        snapshot: Snapshot,
    ) -> Result<bool, StorageError> {
        if !self.mvcc.is_enabled() {
            self.check_row(row)?;
            return Ok(true);
        }
        let (begin, end) = self.version(mem, row)?;
        Ok(snapshot.sees(begin, end))
    }

    fn check_row(&self, row: u64) -> Result<(), StorageError> {
        if row < self.rows.get() {
            Ok(())
        } else {
            Err(StorageError::RowOutOfRange {
                row,
                rows: self.rows.get(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::ColumnType;

    fn mem() -> PhysicalMemory {
        PhysicalMemory::new(1 << 20)
    }

    fn simple_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", ColumnType::UInt(8)),
            ColumnDef::new("b", ColumnType::UInt(4)),
        ])
        .unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let mut m = mem();
        let t = RowTable::create(&mut m, simple_schema(), 10, MvccConfig::Disabled).unwrap();
        let idx = t.append(&mut m, &Row::from_u64s(&[7, 9]), 0).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.read_field(&m, 0, 0).unwrap(), Value::UInt(7));
        assert_eq!(t.read_field(&m, 0, 1).unwrap(), Value::UInt(9));
        assert_eq!(t.get_row(&m, 0).unwrap(), Row::from_u64s(&[7, 9]));
    }

    #[test]
    fn addresses_are_contiguous_rows() {
        let mut m = mem();
        let t = RowTable::create(&mut m, simple_schema(), 10, MvccConfig::Disabled).unwrap();
        assert_eq!(t.physical_row_bytes(), 12);
        assert_eq!(t.row_addr(3) - t.row_addr(2), 12);
        assert_eq!(t.field_addr(2, 1).unwrap() - t.row_addr(2), 8);
        // MVCC adds a 16-byte header before each row.
        let mut m2 = mem();
        let t2 = RowTable::create(&mut m2, simple_schema(), 10, MvccConfig::Enabled).unwrap();
        assert_eq!(t2.physical_row_bytes(), 28);
        assert_eq!(t2.row_data_addr(0) - t2.row_addr(0), 16);
    }

    #[test]
    fn capacity_and_bounds_enforced() {
        let mut m = mem();
        let t = RowTable::create(&mut m, simple_schema(), 1, MvccConfig::Disabled).unwrap();
        t.append(&mut m, &Row::from_u64s(&[1, 2]), 0).unwrap();
        assert!(t.append(&mut m, &Row::from_u64s(&[3, 4]), 0).is_err());
        assert!(t.read_field(&m, 5, 0).is_err());
        // Creating a table bigger than memory fails.
        let mut small = PhysicalMemory::new(64);
        assert!(matches!(
            RowTable::create(&mut small, simple_schema(), 1000, MvccConfig::Disabled),
            Err(StorageError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn in_place_field_update() {
        let mut m = mem();
        let t = RowTable::create(&mut m, simple_schema(), 4, MvccConfig::Disabled).unwrap();
        t.append(&mut m, &Row::from_u64s(&[1, 2]), 0).unwrap();
        t.write_field(&mut m, 0, 1, &Value::UInt(42)).unwrap();
        assert_eq!(t.read_field(&m, 0, 1).unwrap(), Value::UInt(42));
        assert!(t
            .write_field(&mut m, 0, 1, &Value::UInt(u64::MAX))
            .is_err());
    }

    #[test]
    fn mvcc_lifecycle() {
        let mut m = mem();
        let t = RowTable::create(&mut m, simple_schema(), 8, MvccConfig::Enabled).unwrap();
        let r0 = t.append(&mut m, &Row::from_u64s(&[1, 10]), 5).unwrap();
        assert_eq!(t.version(&m, r0).unwrap(), (5, 0));
        // Visible at ts >= 5, invisible before.
        assert!(t.visible(&m, r0, Snapshot::at(5)).unwrap());
        assert!(!t.visible(&m, r0, Snapshot::at(4)).unwrap());
        // Update at ts 9: old version ends, new version begins.
        let r1 = t.update(&mut m, r0, &Row::from_u64s(&[1, 20]), 9).unwrap();
        assert!(t.visible(&m, r0, Snapshot::at(8)).unwrap());
        assert!(!t.visible(&m, r0, Snapshot::at(9)).unwrap());
        assert!(t.visible(&m, r1, Snapshot::at(9)).unwrap());
        assert_eq!(t.read_field(&m, r1, 1).unwrap(), Value::UInt(20));
        // Deleting from a non-MVCC table is an error.
        let t2 = RowTable::create(&mut m, simple_schema(), 2, MvccConfig::Disabled).unwrap();
        t2.append(&mut m, &Row::from_u64s(&[0, 0]), 0).unwrap();
        assert!(t2.mark_deleted(&mut m, 0, 1).is_err());
        // Non-MVCC rows are always visible.
        assert!(t2.visible(&m, 0, Snapshot::at(0)).unwrap());
    }
}
