//! Materialised column-store copy of a row table.
//!
//! The paper's "Direct Columnar" baseline reads data that is *already*
//! stored one column per contiguous array (`long num_field_array[]`).
//! [`ColumnarTable`] materialises that layout in physical memory from a
//! [`RowTable`], so the baseline pays no transformation cost at query time —
//! exactly the comparison the paper makes (and exactly the copy the RME
//! renders unnecessary).

use relmem_dram::PhysicalMemory;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::RowTable;
use crate::types::Value;

/// A column-major copy of a table.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    schema: Schema,
    /// Base address of each column's array.
    column_bases: Vec<u64>,
    rows: u64,
}

impl ColumnarTable {
    /// Materialises every column of `table` into new contiguous arrays.
    pub fn materialize(
        mem: &mut PhysicalMemory,
        table: &RowTable,
    ) -> Result<Self, StorageError> {
        let schema = table.schema().clone();
        let rows = table.num_rows();

        // Gather the column bytes first (we cannot read and allocate from
        // `mem` at the same time without cloning rows anyway).
        let mut column_data: Vec<Vec<u8>> = Vec::with_capacity(schema.num_columns());
        for col in 0..schema.num_columns() {
            let width = schema.width(col)?;
            let mut data = Vec::with_capacity(width * rows as usize);
            for row in 0..rows {
                let addr = table.field_addr(row, col)?;
                data.extend_from_slice(mem.read(addr, width));
            }
            column_data.push(data);
        }

        let mut column_bases = Vec::with_capacity(schema.num_columns());
        for data in &column_data {
            let needed = data.len().max(1);
            let available = mem.capacity() - mem.allocated() as usize;
            if needed > available {
                return Err(StorageError::OutOfMemory {
                    requested: needed,
                    available,
                });
            }
            let base = mem.alloc(needed, 64);
            mem.write(base, data);
            column_bases.push(base);
        }

        Ok(ColumnarTable {
            schema,
            column_bases,
            rows,
        })
    }

    /// The schema shared with the source row table.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.rows
    }

    /// Base address of a column's array.
    pub fn column_base(&self, col: usize) -> Result<u64, StorageError> {
        self.column_bases
            .get(col)
            .copied()
            .ok_or(StorageError::ColumnOutOfRange(col))
    }

    /// Physical address of `row`'s entry in column `col`.
    pub fn field_addr(&self, row: u64, col: usize) -> Result<u64, StorageError> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        let width = self.schema.width(col)? as u64;
        Ok(self.column_base(col)? + row * width)
    }

    /// Reads one value.
    pub fn read_field(
        &self,
        mem: &PhysicalMemory,
        row: u64,
        col: usize,
    ) -> Result<Value, StorageError> {
        let def = self.schema.column(col)?;
        let addr = self.field_addr(row, col)?;
        Ok(Value::decode(def.ty, mem.read(addr, def.ty.width())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGen;
    use crate::mvcc::MvccConfig;
    use crate::row::Row;

    #[test]
    fn materialized_columns_match_row_table() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(4, 4, 32);
        let mut table = RowTable::create(&mut mem, schema, 100, MvccConfig::Disabled).unwrap();
        let mut gen = DataGen::new(7);
        gen.fill_table(&mut mem, &mut table, 100).unwrap();

        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        assert_eq!(cols.num_rows(), 100);
        for row in (0..100).step_by(13) {
            for col in 0..4 {
                assert_eq!(
                    cols.read_field(&mem, row, col).unwrap(),
                    table.read_field(&mem, row, col).unwrap(),
                    "mismatch at row {row} col {col}"
                );
            }
        }
    }

    #[test]
    fn column_arrays_are_dense() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(2, 8, 64);
        let mut table = RowTable::create(&mut mem, schema, 10, MvccConfig::Disabled).unwrap();
        for i in 0..10u64 {
            table
                .append(&mut mem, &Row::from_u64s(&[i, i * 2, 0]), 0)
                .unwrap();
        }
        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        // Entries of column 0 are 8 bytes apart, not row_bytes apart.
        assert_eq!(
            cols.field_addr(1, 0).unwrap() - cols.field_addr(0, 0).unwrap(),
            8
        );
        assert_eq!(cols.read_field(&mem, 3, 1).unwrap(), Value::UInt(6));
    }

    #[test]
    fn bounds_checked() {
        let mut mem = PhysicalMemory::new(1 << 16);
        let schema = Schema::benchmark(1, 4, 4);
        let mut table = RowTable::create(&mut mem, schema, 4, MvccConfig::Disabled).unwrap();
        table.append(&mut mem, &Row::from_u64s(&[1]), 0).unwrap();
        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        assert!(cols.field_addr(5, 0).is_err());
        assert!(cols.column_base(3).is_err());
    }
}
