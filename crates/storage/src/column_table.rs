//! Materialised column-store copy of a row table.
//!
//! The paper's "Direct Columnar" baseline reads data that is *already*
//! stored one column per contiguous array (`long num_field_array[]`).
//! [`ColumnarTable`] materialises that layout in physical memory from a
//! [`RowTable`], so the baseline pays no transformation cost at query time —
//! exactly the comparison the paper makes (and exactly the copy the RME
//! renders unnecessary).

use std::cell::Cell;

use relmem_dram::PhysicalMemory;

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::RowTable;
use crate::types::Value;

/// A column-major copy of a table.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    schema: Schema,
    /// Base address of each column's array.
    column_bases: Vec<u64>,
    /// Rows each column array can hold (≥ `rows` when materialised with
    /// headroom for appends).
    capacity_rows: u64,
    /// Populated row count. A `Cell` for the same reason as
    /// [`RowTable`]'s: transactional inserts publish through shared refs.
    rows: Cell<u64>,
}

impl ColumnarTable {
    /// Materialises every column of `table` into new contiguous arrays.
    pub fn materialize(
        mem: &mut PhysicalMemory,
        table: &RowTable,
    ) -> Result<Self, StorageError> {
        Self::materialize_with_capacity(mem, table, table.num_rows())
    }

    /// Materialises every column of `table`, sizing each array for
    /// `capacity_rows` rows so the table can later grow via
    /// [`append`](Self::append) (transactional inserts).
    pub fn materialize_with_capacity(
        mem: &mut PhysicalMemory,
        table: &RowTable,
        capacity_rows: u64,
    ) -> Result<Self, StorageError> {
        let schema = table.schema().clone();
        let rows = table.num_rows();
        let capacity_rows = capacity_rows.max(rows);

        // Gather the column bytes first (we cannot read and allocate from
        // `mem` at the same time without cloning rows anyway).
        let mut column_data: Vec<Vec<u8>> = Vec::with_capacity(schema.num_columns());
        for col in 0..schema.num_columns() {
            let width = schema.width(col)?;
            let mut data = Vec::with_capacity(width * rows as usize);
            for row in 0..rows {
                let addr = table.field_addr(row, col)?;
                data.extend_from_slice(mem.read(addr, width));
            }
            column_data.push(data);
        }

        let mut column_bases = Vec::with_capacity(schema.num_columns());
        for (col, data) in column_data.iter().enumerate() {
            let width = schema.width(col)?;
            let needed = (width as u64 * capacity_rows).max(data.len() as u64).max(1) as usize;
            let available = mem.capacity() - mem.allocated() as usize;
            if needed > available {
                return Err(StorageError::OutOfMemory {
                    requested: needed,
                    available,
                });
            }
            let base = mem.alloc(needed, 64);
            mem.write(base, data);
            column_bases.push(base);
        }

        Ok(ColumnarTable {
            schema,
            column_bases,
            capacity_rows,
            rows: Cell::new(rows),
        })
    }

    /// Appends one row's values (one per column, in schema order) into the
    /// column arrays. Returns the new row's index.
    pub fn append(
        &self,
        mem: &mut PhysicalMemory,
        values: &[Value],
    ) -> Result<u64, StorageError> {
        if values.len() != self.schema.num_columns() {
            return Err(StorageError::ColumnOutOfRange(values.len()));
        }
        let idx = self.rows.get();
        if idx == self.capacity_rows {
            return Err(StorageError::OutOfMemory {
                requested: self.schema.row_bytes(),
                available: 0,
            });
        }
        for (col, value) in values.iter().enumerate() {
            let def = self.schema.column(col)?;
            if !value.compatible_with(def.ty) {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.ty.name(),
                });
            }
            let width = def.ty.width();
            let addr = self.column_base(col)? + idx * width as u64;
            mem.write(addr, &value.encode(width));
        }
        self.rows.set(idx + 1);
        Ok(idx)
    }

    /// Rows each column array can hold.
    pub fn capacity_rows(&self) -> u64 {
        self.capacity_rows
    }

    /// The schema shared with the source row table.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.rows.get()
    }

    /// Base address of a column's array.
    pub fn column_base(&self, col: usize) -> Result<u64, StorageError> {
        self.column_bases
            .get(col)
            .copied()
            .ok_or(StorageError::ColumnOutOfRange(col))
    }

    /// Physical address of `row`'s entry in column `col`.
    pub fn field_addr(&self, row: u64, col: usize) -> Result<u64, StorageError> {
        if row >= self.rows.get() {
            return Err(StorageError::RowOutOfRange {
                row,
                rows: self.rows.get(),
            });
        }
        let width = self.schema.width(col)? as u64;
        Ok(self.column_base(col)? + row * width)
    }

    /// Reads one value.
    pub fn read_field(
        &self,
        mem: &PhysicalMemory,
        row: u64,
        col: usize,
    ) -> Result<Value, StorageError> {
        let def = self.schema.column(col)?;
        let addr = self.field_addr(row, col)?;
        Ok(Value::decode(def.ty, mem.read(addr, def.ty.width())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::DataGen;
    use crate::mvcc::MvccConfig;
    use crate::row::Row;

    #[test]
    fn materialized_columns_match_row_table() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(4, 4, 32);
        let mut table = RowTable::create(&mut mem, schema, 100, MvccConfig::Disabled).unwrap();
        let mut gen = DataGen::new(7);
        gen.fill_table(&mut mem, &mut table, 100).unwrap();

        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        assert_eq!(cols.num_rows(), 100);
        for row in (0..100).step_by(13) {
            for col in 0..4 {
                assert_eq!(
                    cols.read_field(&mem, row, col).unwrap(),
                    table.read_field(&mem, row, col).unwrap(),
                    "mismatch at row {row} col {col}"
                );
            }
        }
    }

    #[test]
    fn column_arrays_are_dense() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(2, 8, 64);
        let table = RowTable::create(&mut mem, schema, 10, MvccConfig::Disabled).unwrap();
        for i in 0..10u64 {
            table
                .append(&mut mem, &Row::from_u64s(&[i, i * 2, 0]), 0)
                .unwrap();
        }
        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        // Entries of column 0 are 8 bytes apart, not row_bytes apart.
        assert_eq!(
            cols.field_addr(1, 0).unwrap() - cols.field_addr(0, 0).unwrap(),
            8
        );
        assert_eq!(cols.read_field(&mem, 3, 1).unwrap(), Value::UInt(6));
    }

    #[test]
    fn append_grows_within_capacity() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(2, 8, 64);
        let table = RowTable::create(&mut mem, schema, 4, MvccConfig::Disabled).unwrap();
        for i in 0..2u64 {
            table.append(&mut mem, &Row::from_u64s(&[i, i, 0]), 0).unwrap();
        }
        let cols = ColumnarTable::materialize_with_capacity(&mut mem, &table, 4).unwrap();
        assert_eq!(cols.num_rows(), 2);
        assert_eq!(cols.capacity_rows(), 4);
        let idx = cols
            .append(&mut mem, &[Value::UInt(7), Value::UInt(9), Value::UInt(0)])
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(cols.read_field(&mem, 2, 1).unwrap(), Value::UInt(9));
        // Existing data stays dense and intact.
        assert_eq!(cols.read_field(&mem, 1, 0).unwrap(), Value::UInt(1));
        cols.append(&mut mem, &[Value::UInt(0), Value::UInt(0), Value::UInt(0)])
            .unwrap();
        assert!(
            cols.append(&mut mem, &[Value::UInt(0), Value::UInt(0), Value::UInt(0)])
                .is_err(),
            "append past capacity must fail"
        );
        // Arity and type are checked before any byte is written.
        assert!(cols.append(&mut mem, &[Value::UInt(0)]).is_err());
    }

    #[test]
    fn bounds_checked() {
        let mut mem = PhysicalMemory::new(1 << 16);
        let schema = Schema::benchmark(1, 4, 4);
        let table = RowTable::create(&mut mem, schema, 4, MvccConfig::Disabled).unwrap();
        table.append(&mut mem, &Row::from_u64s(&[1]), 0).unwrap();
        let cols = ColumnarTable::materialize(&mut mem, &table).unwrap();
        assert!(cols.field_addr(5, 0).is_err());
        assert!(cols.column_base(3).is_err());
    }
}
