//! Delta / frame-of-reference encoding.
//!
//! A [`DeltaBlock`] stores a block of values as unsigned offsets from the
//! block minimum, using the smallest byte width that fits the largest
//! offset. Like dictionary codes, the offsets are fixed width, so an
//! encoded column remains RME-projectable.

/// A frame-of-reference encoded block of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBlock {
    /// The block minimum all offsets are relative to.
    pub reference: u64,
    /// Offset width in bytes (1, 2, 4 or 8).
    pub width: usize,
    /// Packed little-endian offsets, `width` bytes each.
    pub data: Vec<u8>,
    /// Number of encoded values.
    pub len: usize,
}

impl DeltaBlock {
    /// Encodes a block of values. Empty input produces an empty block.
    pub fn encode(values: &[u64]) -> Self {
        if values.is_empty() {
            return DeltaBlock {
                reference: 0,
                width: 1,
                data: Vec::new(),
                len: 0,
            };
        }
        let reference = *values.iter().min().expect("non-empty");
        let max_delta = values.iter().map(|v| v - reference).max().expect("non-empty");
        let width = if max_delta < 1 << 8 {
            1
        } else if max_delta < 1 << 16 {
            2
        } else if max_delta < 1 << 32 {
            4
        } else {
            8
        };
        let mut data = Vec::with_capacity(values.len() * width);
        for v in values {
            let delta = (v - reference).to_le_bytes();
            data.extend_from_slice(&delta[..width]);
        }
        DeltaBlock {
            reference,
            width,
            data,
            len: values.len(),
        }
    }

    /// Decodes the whole block.
    pub fn decode(&self) -> Vec<u64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Decodes a single value by index.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> u64 {
        assert!(idx < self.len, "index {idx} out of range ({})", self.len);
        let start = idx * self.width;
        let mut buf = [0u8; 8];
        buf[..self.width].copy_from_slice(&self.data[start..start + self.width]);
        self.reference + u64::from_le_bytes(buf)
    }

    /// Encoded size in bytes (excluding the constant-size header).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// Compression ratio versus storing `value_width`-byte plain values.
    pub fn compression_ratio(&self, value_width: usize) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            (self.len * value_width) as f64 / self.encoded_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_range_uses_one_byte() {
        let values = [1_000_000u64, 1_000_005, 1_000_255, 1_000_001];
        let block = DeltaBlock::encode(&values);
        assert_eq!(block.reference, 1_000_000);
        assert_eq!(block.width, 1);
        assert_eq!(block.decode(), values);
        assert_eq!(block.get(2), 1_000_255);
        assert!(block.compression_ratio(8) >= 8.0);
    }

    #[test]
    fn wide_range_uses_wider_offsets() {
        let values = [0u64, u32::MAX as u64 + 10];
        let block = DeltaBlock::encode(&values);
        assert_eq!(block.width, 8);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn empty_block_is_valid() {
        let block = DeltaBlock::encode(&[]);
        assert_eq!(block.len, 0);
        assert!(block.decode().is_empty());
        assert_eq!(block.compression_ratio(8), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let block = DeltaBlock::encode(&[1, 2, 3]);
        let _ = block.get(3);
    }

    proptest! {
        #[test]
        fn roundtrip(values in proptest::collection::vec(any::<u64>(), 0..500)) {
            let block = DeltaBlock::encode(&values);
            prop_assert_eq!(block.decode(), values);
        }

        #[test]
        fn clustered_values_compress(base in 0u64..u64::MAX - 1_000, values in proptest::collection::vec(0u64..200, 10..100)) {
            let shifted: Vec<u64> = values.iter().map(|v| base + v).collect();
            let block = DeltaBlock::encode(&shifted);
            prop_assert_eq!(block.width, 1);
            prop_assert_eq!(block.decode(), shifted);
        }
    }
}
