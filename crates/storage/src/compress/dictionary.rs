//! Dictionary encoding.
//!
//! A [`Dictionary`] maps the distinct values of a column to dense integer
//! codes. Codes are fixed width (the smallest of 1, 2 or 4 bytes that fits),
//! so a dictionary-encoded column is still a fixed-width column and can be
//! projected by the RME like any other; the CPU decodes codes back to values
//! after projection.

use std::collections::HashMap;

/// An order-preserving-by-first-appearance dictionary for `u64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    values: Vec<u64>,
    codes: HashMap<u64, u32>,
}

impl Dictionary {
    /// Builds a dictionary over the distinct values of `data`.
    pub fn build(data: impl IntoIterator<Item = u64>) -> Self {
        let mut dict = Dictionary::default();
        for v in data {
            dict.intern(v);
        }
        dict
    }

    /// Adds a value if unseen and returns its code.
    pub fn intern(&mut self, value: u64) -> u32 {
        if let Some(&code) = self.codes.get(&value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value);
        self.codes.insert(value, code);
        code
    }

    /// The code of a value, if present.
    pub fn encode(&self, value: u64) -> Option<u32> {
        self.codes.get(&value).copied()
    }

    /// The value of a code, if valid.
    pub fn decode(&self, code: u32) -> Option<u64> {
        self.values.get(code as usize).copied()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Smallest fixed code width (bytes) able to address every entry:
    /// 1, 2 or 4.
    pub fn code_width_bytes(&self) -> usize {
        let n = self.values.len() as u64;
        if n <= 1 << 8 {
            1
        } else if n <= 1 << 16 {
            2
        } else {
            4
        }
    }

    /// Encodes a whole column; values absent from the dictionary are
    /// interned on the fly.
    pub fn encode_column(&mut self, data: &[u64]) -> Vec<u32> {
        data.iter().map(|&v| self.intern(v)).collect()
    }

    /// Decodes a whole column of codes.
    ///
    /// # Panics
    /// Panics if a code is out of range (corrupt input).
    pub fn decode_column(&self, codes: &[u32]) -> Vec<u64> {
        codes
            .iter()
            .map(|&c| self.decode(c).expect("code out of dictionary range"))
            .collect()
    }

    /// Compression ratio achieved for a column of `n` values of
    /// `value_width` bytes (ignoring the dictionary itself, which is shared
    /// across the column).
    pub fn compression_ratio(&self, value_width: usize) -> f64 {
        value_width as f64 / self.code_width_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_and_roundtrip() {
        let mut d = Dictionary::default();
        assert_eq!(d.intern(100), 0);
        assert_eq!(d.intern(200), 1);
        assert_eq!(d.intern(100), 0);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.encode(200), Some(1));
        assert_eq!(d.decode(1), Some(200));
        assert_eq!(d.decode(5), None);
        assert_eq!(d.encode(999), None);
    }

    #[test]
    fn code_width_grows_with_cardinality() {
        let small = Dictionary::build(0..10u64);
        assert_eq!(small.code_width_bytes(), 1);
        let medium = Dictionary::build(0..5_000u64);
        assert_eq!(medium.code_width_bytes(), 2);
        let large = Dictionary::build(0..70_000u64);
        assert_eq!(large.code_width_bytes(), 4);
        assert!(large.compression_ratio(8) >= 2.0);
    }

    proptest! {
        #[test]
        fn column_roundtrip(data in proptest::collection::vec(0u64..500, 1..2_000)) {
            let mut d = Dictionary::default();
            let codes = d.encode_column(&data);
            prop_assert_eq!(d.decode_column(&codes), data);
            prop_assert!(d.cardinality() <= 500);
        }
    }
}
