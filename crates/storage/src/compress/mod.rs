//! Column compression schemes supported by Relational Memory (Section 4).
//!
//! The paper notes that dictionary and delta (frame-of-reference) encodings
//! apply equally well to row-oriented base data, so any column group
//! requested through an ephemeral variable can carry encoded values and be
//! decoded on the CPU after projection. Run-length encoding is deliberately
//! not offered, mirroring the paper's argument that it requires sorted data
//! and an expensive decode step.

pub mod delta;
pub mod dictionary;

pub use delta::DeltaBlock;
pub use dictionary::Dictionary;

/// The encodings available for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values stored verbatim.
    Plain,
    /// Values replaced by fixed-width dictionary codes.
    Dictionary,
    /// Values stored as offsets from a per-block reference (frame of
    /// reference / delta encoding).
    Delta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_distinct() {
        assert_ne!(Encoding::Plain, Encoding::Dictionary);
        assert_ne!(Encoding::Dictionary, Encoding::Delta);
    }
}
