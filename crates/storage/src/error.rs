//! Error type for the storage layer.

use std::fmt;

/// Errors produced by schema construction, table population and projection
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A schema was built with no columns.
    EmptySchema,
    /// A column name appears more than once.
    DuplicateColumn(String),
    /// A referenced column index does not exist.
    ColumnOutOfRange(usize),
    /// A value's type or width does not match the column it is written to.
    TypeMismatch { column: String, expected: String },
    /// A row index is past the end of the table.
    RowOutOfRange { row: u64, rows: u64 },
    /// A projection requests no columns, or more columns than supported.
    InvalidColumnGroup(String),
    /// The table region does not fit in physical memory.
    OutOfMemory { requested: usize, available: usize },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::EmptySchema => write!(f, "schema has no columns"),
            StorageError::DuplicateColumn(name) => write!(f, "duplicate column name {name:?}"),
            StorageError::ColumnOutOfRange(idx) => write!(f, "column index {idx} out of range"),
            StorageError::TypeMismatch { column, expected } => {
                write!(f, "value for column {column:?} must be {expected}")
            }
            StorageError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (table has {rows} rows)")
            }
            StorageError::InvalidColumnGroup(msg) => write!(f, "invalid column group: {msg}"),
            StorageError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "table needs {requested} bytes but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TypeMismatch {
            column: "num_fld1".into(),
            expected: "uint(8)".into(),
        };
        assert!(e.to_string().contains("num_fld1"));
        let e = StorageError::RowOutOfRange { row: 10, rows: 5 };
        assert!(e.to_string().contains("10"));
    }
}
