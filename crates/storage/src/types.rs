//! Column types and values.
//!
//! The benchmark tables are made of fixed-width fields: unsigned integers of
//! 1–8 bytes (the `long` fields of Listing 1) and raw byte strings for wider
//! fields (`char text_fld[n]` and the 16-byte columns used in the width
//! sweeps). Numeric interpretation of a wide field uses its low 8 bytes,
//! matching what the paper's C benchmark does when it declares such a field
//! as an integer-bearing struct member.

use crate::error::StorageError;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Little-endian unsigned integer of the given width (1..=8 bytes).
    UInt(usize),
    /// Raw bytes of the given fixed width.
    Bytes(usize),
}

impl ColumnType {
    /// Width in bytes occupied in the row.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::UInt(w) | ColumnType::Bytes(w) => *w,
        }
    }

    /// Validates the type's width.
    pub fn validate(&self) -> Result<(), StorageError> {
        match self {
            ColumnType::UInt(w) if *w >= 1 && *w <= 8 => Ok(()),
            ColumnType::Bytes(w) if *w >= 1 => Ok(()),
            _ => Err(StorageError::InvalidColumnGroup(format!(
                "invalid column type {self:?}"
            ))),
        }
    }

    /// Human readable name.
    pub fn name(&self) -> String {
        match self {
            ColumnType::UInt(w) => format!("uint({w})"),
            ColumnType::Bytes(w) => format!("bytes({w})"),
        }
    }
}

/// A single field value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Unsigned integer value.
    UInt(u64),
    /// Raw bytes value.
    Bytes(Vec<u8>),
}

impl Value {
    /// Numeric view of the value: integers as-is, byte strings as their low
    /// 8 bytes interpreted little-endian.
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::UInt(v) => *v,
            Value::Bytes(b) => {
                let mut buf = [0u8; 8];
                let n = b.len().min(8);
                buf[..n].copy_from_slice(&b[..n]);
                u64::from_le_bytes(buf)
            }
        }
    }

    /// Encodes the value into exactly `width` bytes.
    pub fn encode(&self, width: usize) -> Vec<u8> {
        match self {
            Value::UInt(v) => {
                let bytes = v.to_le_bytes();
                let mut out = vec![0u8; width];
                let n = width.min(8);
                out[..n].copy_from_slice(&bytes[..n]);
                out
            }
            Value::Bytes(b) => {
                let mut out = vec![0u8; width];
                let n = width.min(b.len());
                out[..n].copy_from_slice(&b[..n]);
                out
            }
        }
    }

    /// Decodes a value of the given type from raw bytes.
    pub fn decode(ty: ColumnType, bytes: &[u8]) -> Value {
        match ty {
            ColumnType::UInt(w) => {
                let mut buf = [0u8; 8];
                buf[..w].copy_from_slice(&bytes[..w]);
                Value::UInt(u64::from_le_bytes(buf))
            }
            ColumnType::Bytes(w) => Value::Bytes(bytes[..w].to_vec()),
        }
    }

    /// Checks that the value can be stored in a column of type `ty`.
    pub fn compatible_with(&self, ty: ColumnType) -> bool {
        match (self, ty) {
            (Value::UInt(v), ColumnType::UInt(w)) => {
                if w == 8 {
                    true
                } else {
                    *v < (1u64 << (8 * w))
                }
            }
            (Value::Bytes(b), ColumnType::Bytes(w)) => b.len() <= w,
            // An integer may be stored into a wide byte column (low bytes).
            (Value::UInt(_), ColumnType::Bytes(_)) => true,
            _ => false,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::Bytes(b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn widths_and_names() {
        assert_eq!(ColumnType::UInt(8).width(), 8);
        assert_eq!(ColumnType::Bytes(20).width(), 20);
        assert_eq!(ColumnType::UInt(4).name(), "uint(4)");
        assert!(ColumnType::UInt(9).validate().is_err());
        assert!(ColumnType::Bytes(0).validate().is_err());
        assert!(ColumnType::UInt(1).validate().is_ok());
    }

    #[test]
    fn encode_decode_uint() {
        let v = Value::UInt(0xABCD);
        let enc = v.encode(4);
        assert_eq!(enc, vec![0xCD, 0xAB, 0, 0]);
        assert_eq!(Value::decode(ColumnType::UInt(4), &enc), v);
    }

    #[test]
    fn encode_decode_bytes_pads_and_truncates() {
        let v = Value::Bytes(vec![1, 2, 3]);
        let enc = v.encode(5);
        assert_eq!(enc, vec![1, 2, 3, 0, 0]);
        assert_eq!(
            Value::decode(ColumnType::Bytes(5), &enc),
            Value::Bytes(vec![1, 2, 3, 0, 0])
        );
    }

    #[test]
    fn numeric_view_of_bytes() {
        let v = Value::Bytes(vec![0x01, 0x02]);
        assert_eq!(v.as_u64(), 0x0201);
        assert_eq!(Value::UInt(7).as_u64(), 7);
    }

    #[test]
    fn compatibility_rules() {
        assert!(Value::UInt(255).compatible_with(ColumnType::UInt(1)));
        assert!(!Value::UInt(256).compatible_with(ColumnType::UInt(1)));
        assert!(Value::UInt(u64::MAX).compatible_with(ColumnType::UInt(8)));
        assert!(Value::Bytes(vec![0; 4]).compatible_with(ColumnType::Bytes(4)));
        assert!(!Value::Bytes(vec![0; 5]).compatible_with(ColumnType::Bytes(4)));
        assert!(!Value::Bytes(vec![]).compatible_with(ColumnType::UInt(8)));
    }

    proptest! {
        #[test]
        fn uint_roundtrip(v in 0u64..u64::MAX, w in 1usize..=8) {
            let mask = if w == 8 { u64::MAX } else { (1u64 << (8 * w)) - 1 };
            let val = Value::UInt(v & mask);
            let enc = val.encode(w);
            prop_assert_eq!(enc.len(), w);
            prop_assert_eq!(Value::decode(ColumnType::UInt(w), &enc), val);
        }

        #[test]
        fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..64)) {
            let w = data.len();
            let val = Value::Bytes(data);
            let enc = val.encode(w);
            prop_assert_eq!(Value::decode(ColumnType::Bytes(w), &enc), val);
        }
    }
}
