//! Row values and their fixed-width binary encoding.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::types::Value;

/// An owned row: one [`Value`] per schema column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wraps a vector of values as a row.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Builds a row of unsigned integers (convenience for the benchmark
    /// tables whose columns are all numeric).
    pub fn from_u64s(values: &[u64]) -> Self {
        Row {
            values: values.iter().map(|&v| Value::UInt(v)).collect(),
        }
    }

    /// The row's values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A single value.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Validates the row against a schema and encodes it into the row-major
    /// byte representation.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>, StorageError> {
        if self.values.len() != schema.num_columns() {
            return Err(StorageError::InvalidColumnGroup(format!(
                "row has {} values, schema has {} columns",
                self.values.len(),
                schema.num_columns()
            )));
        }
        let mut out = vec![0u8; schema.row_bytes()];
        for (idx, value) in self.values.iter().enumerate() {
            let col = schema.column(idx)?;
            if !value.compatible_with(col.ty) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                });
            }
            let off = schema.offset(idx)?;
            let width = col.ty.width();
            out[off..off + width].copy_from_slice(&value.encode(width));
        }
        Ok(out)
    }

    /// Decodes a row from its byte representation.
    pub fn decode(schema: &Schema, bytes: &[u8]) -> Result<Row, StorageError> {
        if bytes.len() < schema.row_bytes() {
            return Err(StorageError::InvalidColumnGroup(format!(
                "need {} bytes to decode a row, got {}",
                schema.row_bytes(),
                bytes.len()
            )));
        }
        let mut values = Vec::with_capacity(schema.num_columns());
        for idx in 0..schema.num_columns() {
            let col = schema.column(idx)?;
            let off = schema.offset(idx)?;
            values.push(Value::decode(col.ty, &bytes[off..off + col.ty.width()]));
        }
        Ok(Row { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::ColumnType;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", ColumnType::UInt(4)),
            ColumnDef::new("b", ColumnType::Bytes(3)),
            ColumnDef::new("c", ColumnType::UInt(8)),
        ])
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = schema();
        let row = Row::new(vec![
            Value::UInt(0xDEAD),
            Value::Bytes(vec![9, 8, 7]),
            Value::UInt(u64::MAX),
        ]);
        let bytes = row.encode(&s).unwrap();
        assert_eq!(bytes.len(), s.row_bytes());
        assert_eq!(Row::decode(&s, &bytes).unwrap(), row);
    }

    #[test]
    fn wrong_arity_and_type_rejected() {
        let s = schema();
        let short = Row::from_u64s(&[1, 2]);
        assert!(short.encode(&s).is_err());
        let bad = Row::new(vec![
            Value::UInt(u64::MAX), // does not fit 4 bytes
            Value::Bytes(vec![1, 2, 3]),
            Value::UInt(0),
        ]);
        assert!(matches!(
            bad.encode(&s),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn decode_requires_enough_bytes() {
        let s = schema();
        assert!(Row::decode(&s, &[0u8; 3]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random_numeric_rows(a in 0u64..u32::MAX as u64, b in proptest::collection::vec(any::<u8>(), 3), c in any::<u64>()) {
            let s = schema();
            let row = Row::new(vec![Value::UInt(a), Value::Bytes(b), Value::UInt(c)]);
            let bytes = row.encode(&s).unwrap();
            prop_assert_eq!(Row::decode(&s, &bytes).unwrap(), row);
        }
    }
}
