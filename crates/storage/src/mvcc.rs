//! Multi-version concurrency control metadata (Section 4 of the paper).
//!
//! The base data stays row-oriented and writable; analytical reads through
//! ephemeral variables are read-only. To support in-place updates and
//! deletes, every row carries two timestamps: `begin` is set when the row
//! version is inserted and `end` when it is deleted or superseded. A
//! snapshot at time `t` sees exactly the versions with
//! `begin ≤ t < end` (with `end = 0` meaning "still valid"). The RME checks
//! this predicate while packing, so an ephemeral variable always yields the
//! rows valid at query time — snapshot isolation without extra copies.

/// A logical timestamp. `0` is reserved (used as "+∞" in the end field).
pub type Timestamp = u64;

/// Whether a table carries MVCC headers, and their layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MvccConfig {
    /// No version header: every row is visible to every snapshot.
    #[default]
    Disabled,
    /// A 16-byte header (begin, end: little-endian u64) precedes each row.
    Enabled,
}

impl MvccConfig {
    /// Bytes of per-row header.
    pub fn header_bytes(&self) -> usize {
        match self {
            MvccConfig::Disabled => 0,
            MvccConfig::Enabled => 16,
        }
    }

    /// True if versioning is on.
    pub fn is_enabled(&self) -> bool {
        matches!(self, MvccConfig::Enabled)
    }
}

/// A read snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Read timestamp.
    pub ts: Timestamp,
}

impl Snapshot {
    /// Creates a snapshot reading at time `ts`.
    pub fn at(ts: Timestamp) -> Self {
        Snapshot { ts }
    }

    /// Visibility predicate for a row version with the given begin/end
    /// timestamps (`end == 0` means the version is still live).
    pub fn sees(&self, begin: Timestamp, end: Timestamp) -> bool {
        begin <= self.ts && (end == 0 || end > self.ts)
    }
}

/// Encodes a version header into 16 little-endian bytes.
pub fn encode_header(begin: Timestamp, end: Timestamp) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&begin.to_le_bytes());
    out[8..].copy_from_slice(&end.to_le_bytes());
    out
}

/// Decodes a version header from 16 bytes.
pub fn decode_header(bytes: &[u8]) -> (Timestamp, Timestamp) {
    let begin = u64::from_le_bytes(bytes[..8].try_into().expect("16-byte header"));
    let end = u64::from_le_bytes(bytes[8..16].try_into().expect("16-byte header"));
    (begin, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_sizes() {
        assert_eq!(MvccConfig::Disabled.header_bytes(), 0);
        assert_eq!(MvccConfig::Enabled.header_bytes(), 16);
        assert!(MvccConfig::Enabled.is_enabled());
    }

    #[test]
    fn visibility_rules() {
        let snap = Snapshot::at(10);
        assert!(snap.sees(5, 0)); // live version inserted before
        assert!(snap.sees(10, 0)); // inserted at the snapshot time
        assert!(!snap.sees(11, 0)); // inserted later
        assert!(snap.sees(5, 11)); // deleted after the snapshot
        assert!(!snap.sees(5, 10)); // deleted exactly at the snapshot
        assert!(!snap.sees(5, 7)); // deleted before
    }

    #[test]
    fn header_roundtrip() {
        let h = encode_header(42, 99);
        assert_eq!(decode_header(&h), (42, 99));
    }

    proptest! {
        #[test]
        fn header_roundtrip_prop(b in any::<u64>(), e in any::<u64>()) {
            prop_assert_eq!(decode_header(&encode_header(b, e)), (b, e));
        }

        #[test]
        fn old_snapshot_never_sees_future_insert(ts in 0u64..1000, begin in 0u64..1000) {
            let snap = Snapshot::at(ts);
            if begin > ts {
                prop_assert!(!snap.sees(begin, 0));
            }
        }
    }
}
