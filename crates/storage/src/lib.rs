//! Relational storage substrate.
//!
//! The Relational Memory design keeps base data in plain row-major form in
//! physical memory and never materialises any other layout; everything else
//! (column groups, snapshots) is produced on the fly by the RME. This crate
//! provides that base layer plus the software-side baselines the paper
//! compares against:
//!
//! * typed [`Schema`]s and fixed-width row layouts (Listing 1 of the paper),
//! * [`RowTable`] — a row-major table resident in simulated
//!   [`PhysicalMemory`](relmem_dram::PhysicalMemory),
//! * [`ColumnarTable`] — a materialised column-store copy used by the
//!   "Direct Columnar" baseline,
//! * [`ColumnGroup`] — the description of a projection (the geometry the
//!   RME's configuration port receives),
//! * seeded synthetic [`datagen`] for the Relational Memory Benchmark,
//! * [`mvcc`] — the two-timestamp row versioning scheme of Section 4,
//! * [`compress`] — dictionary and delta (frame-of-reference) encodings.

pub mod column_table;
pub mod compress;
pub mod datagen;
pub mod error;
pub mod mvcc;
pub mod projection;
pub mod row;
pub mod schema;
pub mod table;
pub mod types;

pub use column_table::ColumnarTable;
pub use datagen::DataGen;
pub use error::StorageError;
pub use mvcc::{MvccConfig, Snapshot, Timestamp};
pub use projection::ColumnGroup;
pub use row::Row;
pub use schema::{ColumnDef, Schema};
pub use table::RowTable;
pub use types::{ColumnType, Value};
