//! The simulated platform, wired together.
//!
//! [`System`] owns the physical memory, the DRAM timing model (the
//! occupancy-tracked default or the command-level cycle-accurate model,
//! selected by `DramConfig::model`), N cores' cache frontends over one
//! shared L2, and the Relational Memory Engine, and
//! exposes the operations the query layer needs: creating tables,
//! materialising the columnar baseline, registering ephemeral variables
//! (= programming the RME), and running measured scans over any
//! [`ScanSource`].
//!
//! All timing flows through the cache hierarchy: a scan performs one cache
//! access per touched field, misses are filled either by the DRAM
//! controller (normal addresses) or by the RME (ephemeral addresses), and
//! CPU work between accesses is charged from the [`CpuCostModel`].
//!
//! # Multi-core scans
//!
//! A system built with [`SystemConfig`] `{ cores: N }` owns N private L1
//! frontends in front of one shared, banked L2 ([`relmem_cache::SharedL2`]).
//! [`System::scan_sharded`] splits a scan's row range into N contiguous
//! shards and steps the cores deterministically: at every step the core
//! with the smallest local clock (ties broken by core index) processes its
//! next *row*, so the whole run is reproducible bit for bit. The
//! interleaving is conservative at row granularity: a row's whole access
//! chain is simulated before the next core is stepped, so shared-resource
//! bookings from one row may land ahead of a slightly earlier-in-time
//! request of another core's next row — an approximation that is exact at
//! row boundaries and standard for transaction-level models. With
//! `cores == 1` the contention model is bypassed and every timestamp and
//! counter is identical to [`System::scan`] — the cross-path equivalence
//! tests assert this.
//!
//! ```
//! use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
//! use relmem_core::System;
//! use relmem_sim::SimTime;
//! use relmem_storage::{DataGen, MvccConfig, Schema};
//!
//! let mut sys = System::with_config(SystemConfig { cores: 4, ..SystemConfig::default() });
//! let schema = Schema::benchmark(4, 4, 64);
//! let mut table = sys.create_table(schema, 10_000, MvccConfig::Disabled).unwrap();
//! DataGen::new(1).fill_table(sys.mem_mut(), &mut table, 10_000).unwrap();
//!
//! let src = ScanSource::Rows { table: &table, columns: &[0, 1], snapshot: None };
//! let run = sys.scan_sharded(&src, SimTime::ZERO, |_core, _row, _values| RowEffect::default());
//! assert_eq!(run.rows, 10_000);
//! assert_eq!(run.per_core.len(), 4);
//! assert!(run.end > SimTime::ZERO);
//! ```

use relmem_cache::{CoreFrontend, HierarchyStats, MemoryBackend, SharedL2, SharedL2Stats};
use relmem_dram::{DramModel, MemRequest, PhysicalMemory, Requestor};
use relmem_rme::{HwRevision, RmeEngine, TableGeometry};
use relmem_sim::{PlatformConfig, SimTime, Trace, Tracer};
use relmem_storage::{
    ColumnGroup, ColumnarTable, MvccConfig, RowTable, Schema, Snapshot, StorageError,
};

use crate::access_path::AccessPath;
use crate::cost::CpuCostModel;
use crate::ephemeral::EphemeralVariable;
use crate::measure::QueryMeasurement;
use crate::stepper::ScanJob;
use crate::txn::TxnRuntime;

/// Base of the (never materialised) ephemeral address region. It is far
/// above any physical allocation so aliases can never collide with real
/// data.
const EPHEMERAL_REGION_BASE: u64 = 1 << 40;

/// What a measured scan iterates over. The variants hold only shared
/// references and copyable metadata, so sources are `Copy` — the workload
/// layer clones them to override MVCC snapshots mid-stream.
#[derive(Clone, Copy)]
pub enum ScanSource<'a> {
    /// The row-major base table; only the named columns are touched.
    Rows {
        /// The table.
        table: &'a RowTable,
        /// Column indices to read, in ascending order.
        columns: &'a [usize],
        /// Snapshot for MVCC visibility filtering (requires an MVCC table).
        snapshot: Option<Snapshot>,
    },
    /// The materialised column-store copy.
    Columnar {
        /// The columnar table.
        table: &'a ColumnarTable,
        /// Column indices to read.
        columns: &'a [usize],
    },
    /// An ephemeral variable served by the RME.
    Ephemeral {
        /// The registered variable.
        var: &'a EphemeralVariable,
    },
}

impl ScanSource<'_> {
    /// Number of values produced per row.
    pub fn num_columns(&self) -> usize {
        match self {
            ScanSource::Rows { columns, .. } | ScanSource::Columnar { columns, .. } => {
                columns.len()
            }
            ScanSource::Ephemeral { var } => var.num_columns(),
        }
    }
}

/// Additional work a row's processing performs, reported by the per-row
/// closure of [`System::scan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RowEffect {
    /// Extra CPU time (predicates, aggregation, hashing...).
    pub cpu: SimTime,
    /// An extra memory touch (address, bytes) — e.g. a hash-table bucket.
    /// Always served by the normal DRAM path.
    pub touch: Option<(u64, usize)>,
}

/// Everything needed to build a [`System`], including how many cores it
/// simulates.
///
/// ```
/// use relmem_core::system::SystemConfig;
///
/// // The default is the paper's setup: one active core on a ZCU102.
/// assert_eq!(SystemConfig::default().cores, 1);
/// // Scale out to the full A53 cluster for sharded scans.
/// let quad = SystemConfig { cores: 4, ..SystemConfig::default() };
/// assert_eq!(quad.cores, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Platform (caches, DRAM, PS–PL boundary, RME structure).
    pub platform: PlatformConfig,
    /// RME hardware revision (BSL / PCK / MLP).
    pub revision: HwRevision,
    /// Physical memory size in bytes.
    pub mem_bytes: usize,
    /// Number of simulated cores. `1` reproduces the paper's single-threaded
    /// experiments bit for bit; `> 1` enables the shared-L2 contention model
    /// and [`System::scan_sharded`].
    pub cores: usize,
    /// Whether the memory path runs event-driven (the default): DRAM
    /// requests go through the completion queue, the RME fetches frames
    /// incrementally (overlapping fetch with compute line by line) and —
    /// under the cycle-accurate DRAM model — writes buffer in the FR-FCFS
    /// window and dirty cache evictions become real DRAM writes. See
    /// [`System::set_event_driven`] for exactly which runs stay
    /// bit-identical to the synchronous path.
    pub event_driven: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            platform: PlatformConfig::zcu102(),
            revision: HwRevision::Mlp,
            mem_bytes: 64 << 20,
            cores: 1,
            event_driven: true,
        }
    }
}

/// The simulated platform.
///
/// Fields are `pub(crate)` so the sibling `stepper`/`workload` modules can
/// split-borrow the platform the way the scan loops in this module do.
pub struct System {
    pub(crate) cfg: PlatformConfig,
    pub(crate) cost: CpuCostModel,
    pub(crate) mem: PhysicalMemory,
    pub(crate) dram: DramModel,
    /// Per-core private cache frontends (L1 + prefetcher + MSHRs).
    pub(crate) cores: Vec<CoreFrontend>,
    /// The L2 every core shares (banked; contended when `cores.len() > 1`).
    pub(crate) l2: SharedL2,
    pub(crate) engine: RmeEngine,
    /// Run-scoped transaction machinery (intent table, id/commit-ts
    /// allocators, [`TxnStats`](relmem_sim::TxnStats)); reset by
    /// `run_workload` / `run_open_loop`.
    pub(crate) txn_rt: TxnRuntime,
    ephemeral_cursor: u64,
    /// System-side trace hook: op lifecycle and txn events (core tracks)
    /// plus degradation transitions (system track). A no-op unless
    /// [`Self::set_tracing`] enables recording; timing is never affected.
    pub(crate) tracer: Tracer,
    /// Whether the event-driven memory path is active (see
    /// [`SystemConfig::event_driven`]).
    event_driven: bool,
    /// Whether scans step whole-line runs of fields (on by default; see
    /// [`Self::set_batched_stepping`]).
    pub(crate) batched_stepping: bool,
}

impl System {
    /// Builds a single-core platform with `mem_bytes` of physical memory
    /// and an RME of the given hardware revision.
    pub fn new(cfg: PlatformConfig, revision: HwRevision, mem_bytes: usize) -> Self {
        System::with_config(SystemConfig {
            platform: cfg,
            revision,
            mem_bytes,
            cores: 1,
            event_driven: true,
        })
    }

    /// Builds a platform from a full [`SystemConfig`].
    ///
    /// `config.cores` is the single source of truth for the core count:
    /// it is written back into the platform's `cpu.cores`, so the
    /// resulting [`PlatformConfig`] always describes the cluster actually
    /// simulated (a `cores: 8` system is an 8-core variant of the given
    /// platform, not a ZCU102 with a stale 4-core label).
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn with_config(config: SystemConfig) -> Self {
        assert!(config.cores >= 1, "a system needs at least one core");
        let mut cfg = config.platform;
        cfg.cpu.cores = config.cores;
        let engine = RmeEngine::new(
            cfg.rme,
            cfg.cdc,
            config.revision,
            cfg.dram.bus_bytes,
            cfg.line_bytes(),
        );
        let mut sys = System {
            mem: PhysicalMemory::new(config.mem_bytes),
            dram: DramModel::new(cfg.dram),
            cores: (0..config.cores)
                .map(|i| CoreFrontend::for_core(&cfg, i))
                .collect(),
            l2: SharedL2::new(&cfg, config.cores),
            engine,
            cost: CpuCostModel::default(),
            cfg,
            txn_rt: TxnRuntime::default(),
            ephemeral_cursor: EPHEMERAL_REGION_BASE,
            tracer: Tracer::new(),
            event_driven: false,
            batched_stepping: true,
        };
        sys.set_event_driven(config.event_driven);
        sys
    }

    /// Convenience constructor: default single-core ZCU102 platform.
    pub fn with_revision(revision: HwRevision, mem_bytes: usize) -> Self {
        System::new(PlatformConfig::zcu102(), revision, mem_bytes)
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// One core's cache counters (its private L1 plus its own share of the
    /// L2 traffic and contention delay).
    ///
    /// # Panics
    /// Panics if `core >= num_cores()`.
    pub fn core_stats(&self, core: usize) -> &HierarchyStats {
        self.cores[core].stats()
    }

    /// Aggregate contention counters of the shared L2 (all cores).
    pub fn l2_stats(&self) -> &SharedL2Stats {
        self.l2.stats()
    }

    /// Per-core attribution of the shared-L2 bank traffic. With one query
    /// stream per core (the workload layer's model) this is per-*stream*
    /// attribution: which stream drove the banks, and which stream paid
    /// the waiting.
    pub fn l2_shares(&self) -> &[relmem_cache::CoreL2Share] {
        self.l2.core_shares()
    }

    /// The DRAM controller's accumulated counters (also part of
    /// [`finish_measurement`](Self::finish_measurement); exposed directly
    /// for the golden-trace suite and ad-hoc inspection).
    pub fn dram_stats(&self) -> &relmem_dram::DramStats {
        self.dram.stats()
    }

    /// Enables or disables trace recording across every component. Off by
    /// default: the hooks compile to one predictable branch per site and
    /// never allocate or borrow timing state, so the untraced hot path is
    /// unchanged. Enabling clears any previously buffered events.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
        for core in &mut self.cores {
            core.tracer_mut().set_enabled(on);
        }
        self.l2.tracer_mut().set_enabled(on);
        self.dram.tracer_mut().set_enabled(on);
        self.engine.tracer_mut().set_enabled(on);
    }

    /// Whether trace recording is currently on.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drains every component's recorded events into one time-sorted
    /// [`Trace`]. Recording stays in whatever state it was; the buffers are
    /// left empty, so consecutive calls partition the run.
    pub fn take_trace(&mut self) -> Trace {
        let mut buffers = Vec::with_capacity(self.cores.len() + 4);
        buffers.push(self.tracer.take());
        for core in &mut self.cores {
            buffers.push(core.tracer_mut().take());
        }
        buffers.push(self.l2.tracer_mut().take());
        buffers.push(self.dram.tracer_mut().take());
        buffers.push(self.engine.tracer_mut().take());
        Trace::merge(buffers)
    }

    /// Which DRAM timing model this system runs
    /// (`SystemConfig.platform.dram.model`): the fast occupancy model —
    /// the default, and the one every golden fixture pins — or the
    /// command-level cycle-accurate model. Scans, sharded scans, HTAP
    /// workloads and the RME fetch path all run unchanged on either.
    pub fn memory_model(&self) -> relmem_sim::MemoryModel {
        self.dram.kind()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The CPU cost model in use.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost
    }

    /// Replaces the CPU cost model (for ablations).
    pub fn set_cost_model(&mut self, cost: CpuCostModel) {
        self.cost = cost;
    }

    /// Physical memory (read access).
    pub fn mem(&self) -> &PhysicalMemory {
        &self.mem
    }

    /// Physical memory (write access, e.g. for data generation).
    pub fn mem_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.mem
    }

    /// The Relational Memory Engine.
    pub fn engine(&self) -> &RmeEngine {
        &self.engine
    }

    /// Creates a row table in this system's memory.
    pub fn create_table(
        &mut self,
        schema: Schema,
        capacity_rows: u64,
        mvcc: MvccConfig,
    ) -> Result<RowTable, StorageError> {
        RowTable::create(&mut self.mem, schema, capacity_rows, mvcc)
    }

    /// Materialises the column-store baseline copy of a table.
    pub fn materialize_columnar(
        &mut self,
        table: &RowTable,
    ) -> Result<ColumnarTable, StorageError> {
        ColumnarTable::materialize(&mut self.mem, table)
    }

    /// Allocates a scratch region (e.g. for a hash table) in physical
    /// memory and returns its base address.
    pub fn alloc_scratch(&mut self, bytes: u64) -> u64 {
        self.mem.alloc(bytes as usize, 64)
    }

    /// Registers an ephemeral variable over `table` for the given column
    /// group: programs the RME configuration port and returns the handle.
    /// The engine holds a single configuration, so registering a new
    /// variable supersedes the previous one (as reconfiguring the port does
    /// in the prototype).
    pub fn register_ephemeral(
        &mut self,
        table: &RowTable,
        group: ColumnGroup,
        snapshot: Option<Snapshot>,
    ) -> Result<EphemeralVariable, StorageError> {
        group.validate(
            table.schema(),
            self.cfg.rme.max_columns,
            self.cfg.rme.max_column_width,
        )?;
        let visible = EphemeralVariable::visible_rows(table, &self.mem, snapshot)?;
        let visible_count = visible
            .as_ref()
            .map(|v| v.len() as u64)
            .unwrap_or(table.num_rows());
        let packed_row = group.packed_row_bytes(table.schema())? as u64;
        let base = self.ephemeral_cursor;
        let span = (packed_row * visible_count).max(1).div_ceil(4096) * 4096 + 4096;
        self.ephemeral_cursor += span;

        let geometry = TableGeometry::from_schema(
            table.schema(),
            &group,
            table.base_addr(),
            base,
            table.num_rows(),
            table.mvcc(),
            snapshot,
        )?;
        self.engine.configure(geometry, visible)?;
        EphemeralVariable::describe(table.schema(), group, base, visible_count, snapshot)
    }

    /// Prepares a measured run: flushes the caches, resets DRAM and RME
    /// timing state and clears counters. For [`AccessPath::RmeHot`] the
    /// first frame of the currently registered ephemeral variable is
    /// pre-packed into the Reorganization Buffer.
    pub fn begin_measurement(&mut self, path: AccessPath) {
        // Book any incremental frame fetch still in flight *before* the DRAM
        // reset, so its traffic lands in the epoch that caused it and the
        // measured run starts from a settled memory system.
        self.settle_memory();
        for core in &mut self.cores {
            core.flush();
            core.reset_stats();
        }
        self.l2.flush();
        self.l2.reset_stats();
        self.dram.reset();
        match path {
            AccessPath::RmeHot => {
                self.engine.software_reset();
                self.engine.prewarm_frame(0, &self.mem);
                self.engine.reset_timing();
            }
            AccessPath::RmeCold => {
                self.engine.software_reset();
            }
            _ => {
                self.engine.reset_timing();
            }
        }
    }

    /// Switches the memory path between the event-driven completion-queue
    /// mode (the default) and the fully synchronous one.
    ///
    /// Event-driven mode routes every DRAM request through the completion
    /// queue, makes the RME fetch descriptor-window frames incrementally
    /// (line-by-line overlap of fetch with compute) and — under the
    /// cycle-accurate DRAM model only — buffers writes for FR-FCFS
    /// reordering and emits dirty L2 evictions as real DRAM writes.
    ///
    /// Under the occupancy model, runs whose DRAM request *order* is
    /// unchanged stay bit-identical to the synchronous path: all pure
    /// row/columnar runs (no engine traffic) and all pure-ephemeral scans,
    /// single- or multi-core (engine bookings are the only DRAM traffic and
    /// stay in per-frame prefix order at frozen dispatch anchors). Mixed
    /// ephemeral + row workloads keep data and per-run traffic *totals*
    /// identical, but timing may shift because frame fetches now interleave
    /// with CPU fills instead of being booked up front — that overlap is the
    /// point. The differential equivalence suite pins each of these classes.
    ///
    /// Flip only at a measurement boundary; any pending incremental fetch is
    /// settled first.
    pub fn set_event_driven(&mut self, on: bool) {
        self.engine.finish_pending_fetch(&self.mem, &mut self.dram);
        self.dram.drain_all();
        self.engine.set_incremental(on);
        self.dram.set_event_driven(on);
        self.event_driven = on;
    }

    /// Whether the event-driven memory path is active.
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Settles all outstanding memory events: books any incremental frame
    /// fetch still in flight and drains every issued DRAM completion,
    /// flushing the cycle-accurate model's buffered writes. Every scheduler
    /// loop ends with this (and every measurement begins with it), so run
    /// totals always include traffic the event-driven path deferred.
    pub fn settle_memory(&mut self) {
        self.engine.finish_pending_fetch(&self.mem, &mut self.dram);
        self.dram.drain_all();
    }

    /// Collects the counters accumulated since the last
    /// [`begin_measurement`](Self::begin_measurement) into a measurement.
    pub fn finish_measurement(
        &self,
        elapsed: SimTime,
        cpu_time: SimTime,
        path: AccessPath,
    ) -> QueryMeasurement {
        let mut cache = HierarchyStats::default();
        for core in &self.cores {
            cache.merge(core.stats());
        }
        QueryMeasurement {
            elapsed,
            cpu_time,
            cache,
            dram: self.dram.stats().clone(),
            rme: if path.uses_rme() {
                self.engine.stats()
            } else {
                relmem_rme::RmeStats::default()
            },
        }
    }

    /// Enables or disables the cache hierarchy's line-resident fast path
    /// (on by default). Timing and statistics are identical either way —
    /// the switch exists so equivalence tests and benchmarks can compare
    /// the optimized scan against the full cache walk.
    pub fn set_cache_fast_path(&mut self, enabled: bool) {
        for core in &mut self.cores {
            core.set_fast_path(enabled);
        }
    }

    /// Enables or disables batched line-granular scan stepping (on by
    /// default). When on, scans precompute per-alignment line plans and
    /// step whole-line runs of fields through one hierarchy walk each,
    /// replaying the per-field cost arithmetically; when off every field
    /// steps individually. Timing and statistics are identical either way
    /// — the switch exists so the equivalence suite can hold the
    /// per-field path up as the oracle.
    pub fn set_batched_stepping(&mut self, enabled: bool) {
        self.batched_stepping = enabled;
    }

    /// Runs a measured scan over `source`, invoking `per_row` for every
    /// (visible) row with the projected values, and returns
    /// `(end_time, cpu_time, rows_scanned)`.
    ///
    /// The closure receives the values of the requested columns (numeric
    /// view) and returns the extra work the row caused.
    ///
    /// The scan runs single-threaded on core 0. On a multi-core system the
    /// shared-L2 bank model stays engaged, so core 0's own prefetches can
    /// collide with its demand lookups (self-contention, a few percent) —
    /// timing there is *not* identical to a `cores = 1` system, which
    /// bypasses bank occupancy entirely for fidelity to the paper's
    /// single-threaded setup. Use `cores = 1` for paper-faithful
    /// single-threaded measurements; `multicore.rs` pins this distinction.
    ///
    /// This is the simulator's hot path, the same per-row stepper the
    /// multi-core schedulers use (`ScanJob::step_row`): per-column
    /// cursors, the per-row CPU charge and — for row layouts — the
    /// line-granular step plans are computed once per scan, and each row
    /// then advances whole-line runs of fields through one hierarchy walk
    /// each (see `crates/core/src/stepper.rs`).
    /// [`scan_naive`](Self::scan_naive) keeps the original per-field-lookup
    /// loop; `tests/cross_path_equivalence.rs` asserts both produce
    /// bit-identical timing, statistics and values.
    pub fn scan<F>(
        &mut self,
        source: &ScanSource<'_>,
        start: SimTime,
        mut per_row: F,
    ) -> (SimTime, SimTime, u64)
    where
        F: FnMut(u64, &[u64]) -> RowEffect,
    {
        let job = ScanJob::new(
            source,
            &self.cost,
            &self.engine,
            self.cfg.l1.line_bytes,
            self.batched_stepping,
        );
        let mut values = vec![0u64; job.num_columns()];
        if job.fast_rows_shape() {
            // The common single-plan row-table shape: run the whole scan
            // through the stepper's hoisted loop (identical per-row work,
            // invariants lifted out of the loop — see `run_rows_fast`).
            let (now, cpu_total, rows_scanned) =
                job.run_rows_fast(self.parts(), 0, start, &mut values, &mut per_row);
            self.settle_memory();
            return (now, cpu_total, rows_scanned);
        }
        let mut now = start;
        let mut cpu_total = SimTime::ZERO;
        let mut rows_scanned = 0u64;
        for row in 0..job.rows() {
            let step = job.step_row(self.parts(), 0, row, now, &mut values, &mut per_row);
            now = step.now;
            cpu_total += step.cpu;
            rows_scanned += step.scanned as u64;
        }
        self.settle_memory();
        (now, cpu_total, rows_scanned)
    }

    /// The pre-optimization reference scan: one `field_addr()` /
    /// `schema().width()` lookup and one freshly constructed backend per
    /// field access, exactly as the seed implementation did. Kept (not
    /// cfg(test)-gated) so the equivalence suite and the `scan_throughput`
    /// benchmark can prove the optimized [`scan`](Self::scan) is
    /// bit-identical in timing/statistics and measure its speedup.
    pub fn scan_naive<F>(
        &mut self,
        source: &ScanSource<'_>,
        start: SimTime,
        mut per_row: F,
    ) -> (SimTime, SimTime, u64)
    where
        F: FnMut(u64, &[u64]) -> RowEffect,
    {
        let mut now = start;
        let mut cpu_total = SimTime::ZERO;
        let mut values: Vec<u64> = vec![0; source.num_columns()];
        let mut rows_scanned = 0u64;

        let System {
            cores,
            l2,
            dram,
            mem,
            engine,
            cfg,
            cost,
            ..
        } = self;
        let front = &mut cores[0];
        let line_bytes = cfg.l1.line_bytes;

        match source {
            ScanSource::Rows {
                table,
                columns,
                snapshot,
            } => {
                let rows = table.num_rows();
                for row in 0..rows {
                    // MVCC: read the version header and check visibility.
                    if let Some(snap) = snapshot {
                        if table.mvcc().is_enabled() {
                            let header_addr = table.row_addr(row);
                            let out = front.access(
                                header_addr,
                                16,
                                now,
                                l2,
                                &mut DramBackend {
                                    dram: &mut *dram,
                                    line_bytes,
                                    core: 0,
                                },
                            );
                            now = out.completion + cost.visibility();
                            cpu_total += cost.visibility();
                            if !table.visible(mem, row, *snap).unwrap_or(false) {
                                continue;
                            }
                        }
                    }
                    for (slot, &col) in columns.iter().enumerate() {
                        let addr = table.field_addr(row, col).expect("valid column");
                        let width = table.schema().width(col).expect("valid column");
                        let out = front.access(
                            addr,
                            width,
                            now,
                            l2,
                            &mut DramBackend {
                                dram: &mut *dram,
                                line_bytes,
                                core: 0,
                            },
                        );
                        now = out.completion;
                        values[slot] = mem.read_uint(addr, width.min(8));
                    }
                    let cpu = cost.row_loop() + cost.fields(columns.len());
                    let (n2, c2) =
                        finish_row_naive(front, l2, dram, line_bytes, row, &values, cpu, now, &mut per_row);
                    now = n2;
                    cpu_total += c2;
                    rows_scanned += 1;
                }
            }
            ScanSource::Columnar { table, columns } => {
                let rows = table.num_rows();
                for row in 0..rows {
                    for (slot, &col) in columns.iter().enumerate() {
                        let addr = table.field_addr(row, col).expect("valid column");
                        let width = table.schema().width(col).expect("valid column");
                        let out = front.access(
                            addr,
                            width,
                            now,
                            l2,
                            &mut DramBackend {
                                dram: &mut *dram,
                                line_bytes,
                                core: 0,
                            },
                        );
                        now = out.completion;
                        values[slot] = mem.read_uint(addr, width.min(8));
                    }
                    let cpu = cost.row_loop()
                        + cost.fields(columns.len())
                        + cost.tuple_reconstruction(columns.len());
                    let (n2, c2) =
                        finish_row_naive(front, l2, dram, line_bytes, row, &values, cpu, now, &mut per_row);
                    now = n2;
                    cpu_total += c2;
                    rows_scanned += 1;
                }
            }
            ScanSource::Ephemeral { var } => {
                let rows = var.rows();
                for row in 0..rows {
                    #[allow(clippy::needless_range_loop)] // kept in the seed's shape
                    for j in 0..var.num_columns() {
                        let addr = var.field_addr(row, j);
                        let width = var.width(j);
                        let out = front.access(
                            addr,
                            width,
                            now,
                            l2,
                            &mut RmeBackend {
                                engine: &mut *engine,
                                dram: &mut *dram,
                                mem,
                                line_bytes,
                                core: 0,
                            },
                        );
                        now = out.completion;
                        values[j] = engine.read_packed_u64(addr, width, mem);
                    }
                    let cpu = cost.row_loop() + cost.fields(var.num_columns());
                    let (n2, c2) =
                        finish_row_naive(front, l2, dram, line_bytes, row, &values, cpu, now, &mut per_row);
                    now = n2;
                    cpu_total += c2;
                    rows_scanned += 1;
                }
            }
        }
        engine.finish_pending_fetch(mem, dram);
        dram.drain_all();
        (now, cpu_total, rows_scanned)
    }
}

/// Charges the per-row CPU work, runs the closure and applies its effect.
/// Returns the advanced `(now, cpu_spent_this_row)`. Only used by
/// [`System::scan_naive`]; the optimized scans inline this with the
/// per-scan backend.
#[allow(clippy::too_many_arguments)] // mirrors the seed's finish_row shape
fn finish_row_naive<F>(
    front: &mut CoreFrontend,
    l2: &mut SharedL2,
    dram: &mut DramModel,
    line_bytes: usize,
    row: u64,
    values: &[u64],
    base_cpu: SimTime,
    now: SimTime,
    per_row: &mut F,
) -> (SimTime, SimTime)
where
    F: FnMut(u64, &[u64]) -> RowEffect,
{
    let effect = per_row(row, values);
    let cpu = base_cpu + effect.cpu;
    let mut now = now + cpu;
    if let Some((addr, bytes)) = effect.touch {
        let out = front.access(
            addr,
            bytes,
            now,
            l2,
            &mut DramBackend {
                dram,
                line_bytes,
                core: 0,
            },
        );
        now = out.completion;
    }
    (now, cpu)
}

/// Normal-route backend: L2 misses go straight to the DRAM controller,
/// attributed to the issuing core.
pub(crate) struct DramBackend<'a> {
    pub(crate) dram: &'a mut DramModel,
    pub(crate) line_bytes: usize,
    pub(crate) core: usize,
}

impl MemoryBackend for DramBackend<'_> {
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime {
        self.dram
            .access(
                MemRequest::new(line_addr, self.line_bytes, ready)
                    .with_requestor(Requestor::Core(self.core)),
            )
            .finish
    }

    fn writeback_line(&mut self, line_addr: u64, ready: SimTime) {
        if self.dram.writebacks_active() {
            self.dram.issue(
                MemRequest::new(line_addr, self.line_bytes, ready)
                    .with_requestor(Requestor::Core(self.core))
                    .as_write(),
            );
        }
    }
}

/// Ephemeral-route backend: L2 misses are served by the RME, attributed to
/// the issuing core.
pub(crate) struct RmeBackend<'a> {
    pub(crate) engine: &'a mut RmeEngine,
    pub(crate) dram: &'a mut DramModel,
    pub(crate) mem: &'a PhysicalMemory,
    pub(crate) line_bytes: usize,
    pub(crate) core: usize,
}

impl MemoryBackend for RmeBackend<'_> {
    fn fill_line(&mut self, line_addr: u64, ready: SimTime) -> SimTime {
        self.engine
            .serve_line_from(self.core, line_addr, ready, self.mem, self.dram)
    }

    fn writeback_line(&mut self, line_addr: u64, ready: SimTime) {
        if self.dram.writebacks_active() {
            self.dram.issue(
                MemRequest::new(line_addr, self.line_bytes, ready)
                    .with_requestor(Requestor::Core(self.core))
                    .as_write(),
            );
        }
    }

    fn prefetchable(&self, line_addr: u64) -> bool {
        self.engine.line_is_prefetchable(line_addr)
    }
}

// ---------------------------------------------------------------------------
// Sharded multi-core scans
// ---------------------------------------------------------------------------

/// One core's outcome of a [`System::scan_sharded`] run.
#[derive(Debug, Clone)]
pub struct CoreScan {
    /// Core index.
    pub core: usize,
    /// First row of this core's shard.
    pub first_row: u64,
    /// Rows of the shard (before MVCC visibility filtering).
    pub shard_rows: u64,
    /// Rows actually scanned (visible rows processed by the closure).
    pub rows: u64,
    /// This core's local completion time.
    pub end: SimTime,
    /// CPU time this core charged.
    pub cpu: SimTime,
    /// This core's cache counters for the whole measurement window —
    /// including its `l2_contention_delay`, which is where shared-L2
    /// contention becomes visible per core.
    pub cache: HierarchyStats,
}

/// Outcome of a [`System::scan_sharded`] run: the aggregate plus one
/// [`CoreScan`] per core.
#[derive(Debug, Clone)]
pub struct ShardedScan {
    /// Completion of the slowest core (the scan's makespan).
    pub end: SimTime,
    /// Total CPU time across cores.
    pub cpu: SimTime,
    /// Total rows scanned across cores.
    pub rows: u64,
    /// Per-core results, indexed by core.
    pub per_core: Vec<CoreScan>,
}

/// Splits `rows` into `cores` contiguous shards, the first `rows % cores`
/// of them one row larger — every row lands in exactly one shard even when
/// the core count does not divide the row count.
fn shard_ranges(rows: u64, cores: usize) -> Vec<(u64, u64)> {
    let n = cores as u64;
    let base = rows / n;
    let extra = rows % n;
    let mut ranges = Vec::with_capacity(cores);
    let mut lo = 0u64;
    for i in 0..n {
        let len = base + u64::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Per-core cursor of an in-progress sharded scan.
struct ShardState {
    next: u64,
    end: u64,
    now: SimTime,
    cpu: SimTime,
    rows: u64,
    values: Vec<u64>,
}

impl ShardState {
    fn new(range: (u64, u64), start: SimTime, columns: usize) -> Self {
        ShardState {
            next: range.0,
            end: range.1,
            now: start,
            cpu: SimTime::ZERO,
            rows: 0,
            values: vec![0; columns],
        }
    }
}

/// The unfinished core with the smallest local clock among those matching
/// `filter` (ties broken by lowest index), or `None`. The single pick rule
/// shared by every sharded-scan scheduler — change tie-breaking here and
/// nowhere else.
fn pick_min_clock(
    states: &[ShardState],
    filter: impl Fn(&ShardState) -> bool,
) -> Option<usize> {
    let mut pick: Option<usize> = None;
    for (i, st) in states.iter().enumerate() {
        if st.next < st.end
            && filter(st)
            && pick.is_none_or(|p| st.now < states[p].now)
        {
            pick = Some(i);
        }
    }
    pick
}

impl System {
    /// Runs a measured scan over `source` sharded across every simulated
    /// core: the row range is split into `num_cores()` contiguous shards
    /// and the cores are stepped deterministically in smallest-local-clock
    /// order (see the module docs). `per_row` is invoked as
    /// `(core, row, values)` for every visible row.
    ///
    /// With one core this is exactly [`scan`](Self::scan) — same
    /// timestamps, counters and values — which the cross-path equivalence
    /// tests assert. With several cores the scans proceed concurrently in
    /// simulated time and contend on the shared L2 banks, the DRAM
    /// controller and (for ephemeral sources) the RME.
    /// The per-row bodies live in the crate-private `stepper::ScanJob`,
    /// shared with the workload scheduler and deliberately mirroring the single-core
    /// `scan_*` loops line for line — a timing-model change there must be
    /// mirrored in the stepper (and in `scan_naive`). The
    /// `sharded_one_core_scan_is_bit_identical_to_scan` proptest pins the
    /// correspondence at `cores = 1`.
    ///
    /// For ephemeral sources the scheduler is *frame-aware*: the cores
    /// share one Reorganization Buffer holding a single resident frame, so
    /// each step picks the smallest-clock core whose next row lies in the
    /// resident frame and only falls back to the global minimum-clock core
    /// (forcing a frame turnover) when no core has work left there. This
    /// bounds frame fetches at O(cores × frames); naive min-clock stepping
    /// would re-fetch a frame on nearly every access once shards span
    /// frame boundaries. With one core the schedule degenerates to plain
    /// row order.
    pub fn scan_sharded<F>(
        &mut self,
        source: &ScanSource<'_>,
        start: SimTime,
        mut per_row: F,
    ) -> ShardedScan
    where
        F: FnMut(usize, u64, &[u64]) -> RowEffect,
    {
        let job = ScanJob::new(
            source,
            &self.cost,
            &self.engine,
            self.cfg.l1.line_bytes,
            self.batched_stepping,
        );
        let ranges = shard_ranges(job.rows(), self.cores.len());
        let mut states: Vec<ShardState> = ranges
            .iter()
            .map(|&r| ShardState::new(r, start, job.num_columns()))
            .collect();

        loop {
            // Prefer the min-clock core working in the resident frame
            // (ephemeral sources only); fall back to the global min-clock
            // core (frame turnover).
            let pick = match job.frame_rows() {
                Some(frame_rows) => {
                    let resident = self.engine.resident_frame();
                    pick_min_clock(&states, |st| resident == Some(st.next / frame_rows))
                        .or_else(|| pick_min_clock(&states, |_| true))
                }
                None => pick_min_clock(&states, |_| true),
            };
            let Some(core) = pick else {
                break;
            };
            let st = &mut states[core];
            let row = st.next;
            st.next += 1;
            let step = job.step_row(
                self.parts(),
                core,
                row,
                st.now,
                &mut st.values,
                &mut |r, v| per_row(core, r, v),
            );
            st.now = step.now;
            st.cpu += step.cpu;
            if step.scanned {
                st.rows += 1;
            }
            // The stepped core's clock is the interleaver's event horizon:
            // everything the memory system finished before it is now
            // observable, so retire it from the completion queue.
            let horizon = st.now;
            self.dram.drain_completions(horizon);
        }

        self.settle_memory();
        self.collect_sharded(states, &ranges)
    }

    /// Collects per-core results after the interleaved loop finished.
    fn collect_sharded(&self, states: Vec<ShardState>, ranges: &[(u64, u64)]) -> ShardedScan {
        let mut per_core = Vec::with_capacity(states.len());
        let mut end = SimTime::ZERO;
        let mut cpu = SimTime::ZERO;
        let mut rows = 0u64;
        for (core, st) in states.into_iter().enumerate() {
            end = end.max(st.now);
            cpu += st.cpu;
            rows += st.rows;
            per_core.push(CoreScan {
                core,
                first_row: ranges[core].0,
                shard_rows: ranges[core].1 - ranges[core].0,
                rows: st.rows,
                end: st.now,
                cpu: st.cpu,
                cache: *self.cores[core].stats(),
            });
        }
        ShardedScan {
            end,
            cpu,
            rows,
            per_core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmem_storage::DataGen;

    fn build_system(rows: u64) -> (System, RowTable) {
        let mut sys = System::with_revision(HwRevision::Mlp, 64 << 20);
        let schema = Schema::benchmark(8, 4, 64);
        let mut table = sys.create_table(schema, rows, MvccConfig::Disabled).unwrap();
        DataGen::new(1).fill_table(sys.mem_mut(), &mut table, rows).unwrap();
        (sys, table)
    }

    fn sum_column(
        sys: &mut System,
        source: &ScanSource<'_>,
        path: AccessPath,
    ) -> (u64, SimTime) {
        sys.begin_measurement(path);
        let mut sum = 0u64;
        let (end, _cpu, _) = sys.scan(source, SimTime::ZERO, |_, values| {
            sum = sum.wrapping_add(values[0]);
            RowEffect {
                cpu: sys_cost_aggregate(),
                touch: None,
            }
        });
        (sum, end)
    }

    fn sys_cost_aggregate() -> SimTime {
        CpuCostModel::default().aggregate()
    }

    #[test]
    fn all_paths_compute_the_same_sum() {
        let (mut sys, table) = build_system(2_000);
        let columns = [0usize];

        let rows_src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        let (sum_rows, t_rows) = sum_column(&mut sys, &rows_src, AccessPath::DirectRowWise);

        let columnar = sys.materialize_columnar(&table).unwrap();
        let col_src = ScanSource::Columnar {
            table: &columnar,
            columns: &columns,
        };
        let (sum_cols, _) = sum_column(&mut sys, &col_src, AccessPath::DirectColumnar);

        let var = sys
            .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
            .unwrap();
        let eph_src = ScanSource::Ephemeral { var: &var };
        let (sum_cold, t_cold) = sum_column(&mut sys, &eph_src, AccessPath::RmeCold);
        let (sum_hot, t_hot) = sum_column(&mut sys, &eph_src, AccessPath::RmeHot);

        assert_eq!(sum_rows, sum_cols);
        assert_eq!(sum_rows, sum_cold);
        assert_eq!(sum_rows, sum_hot);
        assert!(t_hot <= t_cold, "hot ({t_hot}) should not exceed cold ({t_cold})");
        assert!(t_rows > SimTime::ZERO && t_cold > SimTime::ZERO);
    }

    #[test]
    fn rme_cold_beats_direct_row_wise_for_a_narrow_projection() {
        // The headline claim of the paper: accessing one 4-byte column of a
        // 64-byte-row table through the (MLP) RME is faster than scanning
        // the rows directly, even when the Reorganization Buffer is cold.
        let (mut sys, table) = build_system(20_000);
        let columns = [0usize];
        let rows_src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        let (_, t_rows) = sum_column(&mut sys, &rows_src, AccessPath::DirectRowWise);

        let var = sys
            .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
            .unwrap();
        let eph_src = ScanSource::Ephemeral { var: &var };
        let (_, t_cold) = sum_column(&mut sys, &eph_src, AccessPath::RmeCold);

        assert!(
            t_cold < t_rows,
            "RME cold ({t_cold}) should beat direct row-wise ({t_rows})"
        );
    }

    #[test]
    fn mvcc_scan_skips_invisible_rows() {
        let mut sys = System::with_revision(HwRevision::Mlp, 16 << 20);
        let schema = Schema::benchmark(4, 8, 64);
        let mut table = sys.create_table(schema, 100, MvccConfig::Enabled).unwrap();
        DataGen::new(2).fill_table(sys.mem_mut(), &mut table, 100).unwrap();
        for row in 0..50 {
            table.mark_deleted(sys.mem_mut(), row, 5).unwrap();
        }
        let columns = [0usize];
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: Some(Snapshot::at(10)),
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let (_, _, rows) = sys.scan(&src, SimTime::ZERO, |_, _| RowEffect::default());
        assert_eq!(rows, 50);

        // And through the RME, with the same snapshot.
        let var = sys
            .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), Some(Snapshot::at(10)))
            .unwrap();
        assert_eq!(var.rows(), 50);
        let eph = ScanSource::Ephemeral { var: &var };
        sys.begin_measurement(AccessPath::RmeCold);
        let (_, _, rme_rows) = sys.scan(&eph, SimTime::ZERO, |_, _| RowEffect::default());
        assert_eq!(rme_rows, 50);
    }

    #[test]
    fn measurements_capture_counters() {
        let (mut sys, table) = build_system(500);
        let columns = [0usize, 3];
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let (end, cpu, _) = sys.scan(&src, SimTime::ZERO, |_, _| RowEffect::default());
        let m = sys.finish_measurement(end, cpu, AccessPath::DirectRowWise);
        assert!(m.cache.l1.requests >= 1_000);
        assert!(m.dram.accesses > 0);
        assert!(m.cpu_time > SimTime::ZERO);
        assert!(m.data_time() > SimTime::ZERO);
        assert_eq!(m.rme, relmem_rme::RmeStats::default());
    }
}
