//! Query measurements: simulated time plus hardware counters.

use relmem_cache::HierarchyStats;
use relmem_dram::DramStats;
use relmem_rme::RmeStats;
use relmem_sim::SimTime;

/// The functional result of a query (used for cross-path validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// A single aggregate value (Q0, Q3).
    Scalar(u64),
    /// A checksum plus a row count, for queries that produce row sets
    /// (Q1, Q2, Q5) or many groups (Q4). The checksum is order-insensitive
    /// (wrapping sum of a per-row/group hash) so all paths can be compared.
    Set {
        /// Number of produced rows / groups.
        rows: u64,
        /// Order-insensitive checksum of the produced values.
        checksum: u64,
    },
}

impl QueryOutput {
    /// The number of rows (1 for scalars).
    pub fn cardinality(&self) -> u64 {
        match self {
            QueryOutput::Scalar(_) => 1,
            QueryOutput::Set { rows, .. } => *rows,
        }
    }
}

/// The timing/counters side of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMeasurement {
    /// End-to-end simulated execution time.
    pub elapsed: SimTime,
    /// CPU time charged by the cost model (the rest is data movement).
    pub cpu_time: SimTime,
    /// Cache hierarchy counters (Figure 8).
    pub cache: HierarchyStats,
    /// DRAM controller counters.
    pub dram: DramStats,
    /// RME counters (zeroed for the direct paths).
    pub rme: RmeStats,
}

impl QueryMeasurement {
    /// Time attributable to data movement (everything the CPU spent waiting
    /// on memory): `elapsed − cpu_time`.
    pub fn data_time(&self) -> SimTime {
        self.elapsed.saturating_sub(self.cpu_time)
    }

    /// Elapsed time in microseconds (convenience for reports).
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed.as_micros_f64()
    }

    /// Elapsed time expressed in CPU clock cycles of the given frequency
    /// (the unit of the paper's Figure 6).
    pub fn elapsed_cycles(&self, cpu_mhz: f64) -> f64 {
        self.elapsed.as_nanos_f64() * cpu_mhz / 1_000.0
    }
}

/// A query result: functional output + measurement.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The functional result.
    pub output: QueryOutput,
    /// The measurement.
    pub measurement: QueryMeasurement,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_time_is_elapsed_minus_cpu() {
        let m = QueryMeasurement {
            elapsed: SimTime::from_micros(10),
            cpu_time: SimTime::from_micros(4),
            ..Default::default()
        };
        assert_eq!(m.data_time(), SimTime::from_micros(6));
        assert!((m.elapsed_us() - 10.0).abs() < 1e-9);
        assert!((m.elapsed_cycles(1_200.0) - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn output_cardinality() {
        assert_eq!(QueryOutput::Scalar(5).cardinality(), 1);
        assert_eq!(
            QueryOutput::Set {
                rows: 42,
                checksum: 7
            }
            .cardinality(),
            42
        );
    }
}
