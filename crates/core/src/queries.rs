//! The Relational Memory Benchmark queries (Listing 5 of the paper).
//!
//! ```text
//! Q0: SELECT SUM(A1) FROM S;
//! Q1: SELECT A1, A2, ..., Ak FROM S;
//! Q2: SELECT A1 FROM S WHERE A3 > k;
//! Q3: SELECT SUM(A2) FROM S WHERE A4 < k;
//! Q4: SELECT AVG(A1) FROM S WHERE A3 < k GROUP BY A2;
//! Q5: SELECT S.A1, R.A3 FROM S JOIN R ON S.A2 = R.A2;
//! ```
//!
//! This module defines the query descriptors, their column requirements and
//! the predicate thresholds that produce the selectivities the paper quotes
//! (~90 % for Q2, <10 % for Q3/Q4). The execution logic lives in
//! [`crate::benchmark::Benchmark`].

use relmem_storage::datagen::VALUE_RANGE;

/// Selection threshold giving Q2 its ~90 % selectivity (`A3 > T` keeps the
/// rows whose uniformly distributed value exceeds 10 % of the range).
pub const Q2_THRESHOLD: u64 = VALUE_RANGE / 10;

/// Selection threshold giving Q3/Q4 their <10 % selectivity (`A4 < T`).
pub const Q3_THRESHOLD: u64 = VALUE_RANGE / 10;

/// One benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// `SELECT SUM(A1) FROM S`.
    Q0,
    /// `SELECT A1..Ak FROM S` with the given projectivity `k`.
    Q1 {
        /// Number of projected columns.
        projectivity: usize,
    },
    /// `SELECT A1 FROM S WHERE A3 > k` (~90 % selectivity).
    Q2,
    /// `SELECT SUM(A2) FROM S WHERE A4 < k` (<10 % selectivity).
    Q3,
    /// `SELECT AVG(A1) FROM S WHERE A3 < k GROUP BY A2`.
    Q4,
    /// `SELECT S.A1, R.A3 FROM S JOIN R ON S.A2 = R.A2`.
    Q5,
}

impl Query {
    /// Short label ("Q0".."Q5").
    pub fn label(&self) -> String {
        match self {
            Query::Q0 => "Q0".to_string(),
            Query::Q1 { projectivity } => format!("Q1(k={projectivity})"),
            Query::Q2 => "Q2".to_string(),
            Query::Q3 => "Q3".to_string(),
            Query::Q4 => "Q4".to_string(),
            Query::Q5 => "Q5".to_string(),
        }
    }

    /// Minimum number of data columns the benchmark relation needs for this
    /// query.
    pub fn min_columns(&self) -> usize {
        match self {
            Query::Q0 => 1,
            Query::Q1 { projectivity } => (*projectivity).max(1),
            Query::Q2 | Query::Q4 => 3,
            Query::Q3 | Query::Q5 => 4,
        }
    }

    /// The six queries of Listing 5 with Q1 at a representative
    /// projectivity of 3.
    pub fn all() -> Vec<Query> {
        vec![
            Query::Q0,
            Query::Q1 { projectivity: 3 },
            Query::Q2,
            Query::Q3,
            Query::Q4,
            Query::Q5,
        ]
    }
}

/// Picks `k` column indices spread (roughly) evenly over `available`
/// columns, so projected columns are non-contiguous whenever possible —
/// matching the paper's Q1 setup where the three target columns sit at
/// offsets 0, 24 and 48 of a 64-byte row.
pub fn spread_columns(k: usize, available: usize) -> Vec<usize> {
    assert!(k >= 1, "projectivity must be at least 1");
    assert!(
        k <= available,
        "cannot project {k} columns out of {available}"
    );
    (0..k).map(|i| i * available / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_target_selectivities() {
        // Values are uniform in [0, VALUE_RANGE): `> T` keeps 1 - T/RANGE.
        assert_eq!(Q2_THRESHOLD, 100);
        assert_eq!(Q3_THRESHOLD, 100);
        let q2_selectivity = 1.0 - Q2_THRESHOLD as f64 / VALUE_RANGE as f64;
        assert!((q2_selectivity - 0.9).abs() < 1e-9);
        let q3_selectivity = Q3_THRESHOLD as f64 / VALUE_RANGE as f64;
        assert!(q3_selectivity < 0.11);
    }

    #[test]
    fn labels_and_column_requirements() {
        assert_eq!(Query::Q0.label(), "Q0");
        assert_eq!(Query::Q1 { projectivity: 7 }.label(), "Q1(k=7)");
        assert_eq!(Query::Q5.min_columns(), 4);
        assert_eq!(Query::Q1 { projectivity: 9 }.min_columns(), 9);
        assert_eq!(Query::all().len(), 6);
    }

    #[test]
    fn spread_columns_are_distinct_ascending_and_spread() {
        let cols = spread_columns(3, 16);
        assert_eq!(cols, vec![0, 5, 10]);
        let cols = spread_columns(11, 16);
        assert_eq!(cols.len(), 11);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert!(*cols.last().unwrap() < 16);
        let all = spread_columns(4, 4);
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot project")]
    fn spread_rejects_over_projection() {
        let _ = spread_columns(5, 4);
    }
}
