//! The reusable per-core scan stepper.
//!
//! Multi-core schedulers — [`System::scan_sharded`](crate::System::scan_sharded)
//! and the workload layer's [`System::run_workload`](crate::System::run_workload)
//! — both advance cores one *row* at a time under deterministic min-clock
//! interleaving. [`ScanJob`] is the shared per-row body: it captures the
//! per-scan precomputation (column cursors, MVCC snapshot, per-row CPU
//! charge) once and then steps any row on any core. The bodies mirror the
//! single-core `System::scan_*` loops line for line; the cross-path
//! equivalence proptests pin the correspondence at one core for both the
//! sharded and the workload scheduler.
//!
//! [`Parts`] is the split-borrow view of the [`System`] a step works on:
//! the per-core frontends, the shared L2, the DRAM controller, physical
//! memory and the RME, borrowed simultaneously the way the scan loops in
//! `system.rs` destructure the platform.

use relmem_cache::{CoreFrontend, SharedL2};
use relmem_dram::{DramModel, PhysicalMemory};
use relmem_rme::RmeEngine;
use relmem_sim::SimTime;
use relmem_storage::{RowTable, Snapshot};

use crate::cost::CpuCostModel;
use crate::system::{DramBackend, RmeBackend, RowEffect, ScanSource, System};

/// Split-borrow view of a [`System`] for one scheduler step.
pub(crate) struct Parts<'a> {
    pub cores: &'a mut [CoreFrontend],
    pub l2: &'a mut SharedL2,
    pub dram: &'a mut DramModel,
    pub mem: &'a mut PhysicalMemory,
    pub engine: &'a mut RmeEngine,
    pub line_bytes: usize,
}

impl System {
    /// Splits the platform into the borrows one scheduler step needs.
    pub(crate) fn parts(&mut self) -> Parts<'_> {
        Parts {
            cores: &mut self.cores,
            l2: &mut self.l2,
            dram: &mut self.dram,
            mem: &mut self.mem,
            engine: &mut self.engine,
            line_bytes: self.cfg.l1.line_bytes,
        }
    }
}

/// Outcome of stepping one row.
pub(crate) struct RowStep {
    /// The core's local clock after the row.
    pub now: SimTime,
    /// CPU time charged for the row.
    pub cpu: SimTime,
    /// Whether the row was processed (false: skipped by MVCC visibility).
    pub scanned: bool,
}

/// The per-scan precomputation of one [`ScanSource`], ready to step any
/// row on any core.
pub(crate) struct ScanJob<'a> {
    kind: JobKind<'a>,
    rows: u64,
    row_cpu: SimTime,
    num_columns: usize,
}

enum JobKind<'a> {
    Rows {
        table: &'a RowTable,
        /// (offset within the physical row, width) per projected column,
        /// with the MVCC header folded into the offset.
        cursors: Vec<(u64, usize)>,
        base: u64,
        stride: u64,
        snapshot: Option<Snapshot>,
        visibility_cpu: SimTime,
        /// Line-granular step schedule, one plan per row-base alignment
        /// (`None`: step per field — the oracle path).
        plans: Option<Vec<LinePlan>>,
    },
    Columnar {
        /// (column array base, width) per projected column.
        cursors: Vec<(u64, usize)>,
    },
    Ephemeral {
        /// (offset within the packed row, width) per packed column.
        cursors: Vec<(u64, usize)>,
        base: u64,
        stride: u64,
        /// Packed rows per Reorganization-Buffer frame (for frame-aware
        /// scheduling; `u64::MAX` when the engine holds no configuration).
        frame_rows: u64,
        /// Line-granular step schedule (see [`JobKind::Rows`]).
        plans: Option<Vec<LinePlan>>,
    },
}

/// The line-granular schedule of one row's field accesses, valid for every
/// row whose base shares this plan's alignment within a cache line.
///
/// A row's cursors are fixed offsets off its base address, so which fields
/// share a line — and which straddle one — depends only on
/// `row_base % line_bytes`. That alignment cycles with period
/// `line_bytes / gcd(stride, line_bytes)` rows (at most `line_bytes`), so
/// a scan precomputes one plan per alignment and the hot loop replays
/// [`PlanStep`]s: maximal runs of consecutive same-line fields become one
/// [`CoreFrontend::access_run`] (one tag walk / MRU update / prefetcher
/// event / backend booking per *line*, per-field cost replayed
/// arithmetically inside), and line-straddling fields keep the full
/// per-field access. Step order equals slot order, so the access sequence
/// the cache hierarchy observes is exactly the per-field sequence.
struct LinePlan {
    /// `row_base % line_bytes` for rows this plan covers; the aligned
    /// line base is `row_base - align`.
    align: u64,
    steps: Vec<PlanStep>,
}

enum PlanStep {
    /// `fields` consecutive cursors starting at slot `first_slot`, all
    /// resident in the line `rel_line` bytes past the row's aligned base.
    Run {
        rel_line: u64,
        fields: u32,
        first_slot: u32,
    },
    /// A cursor straddling a line boundary: full per-field access.
    Field { slot: u32 },
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Builds the per-alignment [`LinePlan`]s for cursors relative to a
/// `base`/`stride` row layout. `line_bytes` is a power of two.
fn build_plans(cursors: &[(u64, usize)], base: u64, stride: u64, line_bytes: u64) -> Vec<LinePlan> {
    let l = line_bytes;
    let period = l / gcd(stride % l, l).max(1);
    (0..period)
        .map(|r| {
            let align = (base + r * stride) % l;
            let mut steps: Vec<PlanStep> = Vec::with_capacity(cursors.len());
            for (slot, &(offset, width)) in cursors.iter().enumerate() {
                let start = align + offset;
                let line = start & !(l - 1);
                let last_line = (start + width.max(1) as u64 - 1) & !(l - 1);
                if line != last_line {
                    steps.push(PlanStep::Field { slot: slot as u32 });
                    continue;
                }
                // Extend the previous run when this field continues it.
                match steps.last_mut() {
                    Some(PlanStep::Run {
                        rel_line,
                        fields,
                        first_slot,
                    }) if *rel_line == line && *first_slot as usize + *fields as usize == slot => {
                        *fields += 1;
                    }
                    _ => steps.push(PlanStep::Run {
                        rel_line: line,
                        fields: 1,
                        first_slot: slot as u32,
                    }),
                }
            }
            LinePlan { align, steps }
        })
        .collect()
}

impl<'a> ScanJob<'a> {
    /// Captures the per-scan constants of `source`. Borrows only the
    /// source's tables — not the system — so a job can outlive any number
    /// of [`Parts`] borrows. With `batched` set, row-layout sources
    /// precompute [`LinePlan`]s so [`step_row`](Self::step_row) advances
    /// whole-line runs of fields; without it every field steps through the
    /// hierarchy individually (the reference path the equivalence suite
    /// uses as its oracle).
    pub(crate) fn new(
        source: &ScanSource<'a>,
        cost: &CpuCostModel,
        engine: &RmeEngine,
        line_bytes: usize,
        batched: bool,
    ) -> ScanJob<'a> {
        match *source {
            ScanSource::Rows {
                table,
                columns,
                snapshot,
            } => {
                let schema = table.schema();
                let header = table.mvcc().header_bytes() as u64;
                let cursors: Vec<(u64, usize)> = columns
                    .iter()
                    .map(|&col| {
                        (
                            header + schema.offset(col).expect("valid column") as u64,
                            schema.width(col).expect("valid column"),
                        )
                    })
                    .collect();
                let base = table.row_addr(0);
                let stride = table.physical_row_bytes() as u64;
                ScanJob {
                    rows: table.num_rows(),
                    row_cpu: cost.row_loop() + cost.fields(columns.len()),
                    num_columns: columns.len(),
                    kind: JobKind::Rows {
                        table,
                        plans: batched
                            .then(|| build_plans(&cursors, base, stride, line_bytes as u64)),
                        cursors,
                        base,
                        stride,
                        snapshot: snapshot.filter(|_| table.mvcc().is_enabled()),
                        visibility_cpu: cost.visibility(),
                    },
                }
            }
            ScanSource::Columnar { table, columns } => {
                let schema = table.schema();
                let cursors: Vec<(u64, usize)> = columns
                    .iter()
                    .map(|&col| {
                        (
                            table.column_base(col).expect("valid column"),
                            schema.width(col).expect("valid column"),
                        )
                    })
                    .collect();
                ScanJob {
                    rows: table.num_rows(),
                    row_cpu: cost.row_loop()
                        + cost.fields(columns.len())
                        + cost.tuple_reconstruction(columns.len()),
                    num_columns: columns.len(),
                    kind: JobKind::Columnar { cursors },
                }
            }
            ScanSource::Ephemeral { var } => {
                let num_columns = var.num_columns();
                let cursors: Vec<(u64, usize)> = (0..num_columns)
                    .map(|j| (var.field_addr(0, j) - var.base(), var.width(j)))
                    .collect();
                let base = var.base();
                let stride = var.packed_row_bytes() as u64;
                ScanJob {
                    rows: var.rows(),
                    row_cpu: cost.row_loop() + cost.fields(num_columns),
                    num_columns,
                    kind: JobKind::Ephemeral {
                        plans: batched
                            .then(|| build_plans(&cursors, base, stride, line_bytes as u64)),
                        cursors,
                        base,
                        stride,
                        frame_rows: engine.rows_per_frame().unwrap_or(u64::MAX).max(1),
                    },
                }
            }
        }
    }

    /// Total rows the scan covers (before MVCC visibility filtering).
    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Values produced per row.
    pub(crate) fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// For ephemeral scans, the packed rows per Reorganization-Buffer
    /// frame — the scheduler granule that keeps frame fetches bounded.
    /// `None` for sources that don't go through the engine.
    pub(crate) fn frame_rows(&self) -> Option<u64> {
        match self.kind {
            JobKind::Ephemeral { frame_rows, .. } => Some(frame_rows),
            _ => None,
        }
    }

    /// Simulates row `row` on `core` starting at local time `now`: the
    /// row's access chain, the per-row closure, its [`RowEffect`], exactly
    /// as the single-core scan loops do. `values` must hold
    /// [`num_columns`](Self::num_columns) slots.
    pub(crate) fn step_row<F>(
        &self,
        p: Parts<'_>,
        core: usize,
        row: u64,
        now: SimTime,
        values: &mut [u64],
        per_row: &mut F,
    ) -> RowStep
    where
        F: FnMut(u64, &[u64]) -> RowEffect,
    {
        let Parts {
            cores,
            l2,
            dram,
            mem,
            engine,
            line_bytes,
        } = p;
        let mut cpu = SimTime::ZERO;
        let mut now = now;
        match &self.kind {
            JobKind::Rows {
                table,
                cursors,
                base,
                stride,
                snapshot,
                visibility_cpu,
                plans,
            } => {
                let front = &mut cores[core];
                let mut backend = DramBackend {
                    dram,
                    line_bytes,
                    core,
                };
                let row_base = base + row * stride;
                if let Some(snap) = *snapshot {
                    let out = front.access(row_base, 16, now, l2, &mut backend);
                    now = out.completion + *visibility_cpu;
                    cpu += *visibility_cpu;
                    if !table.visible(mem, row, snap).unwrap_or(false) {
                        return RowStep {
                            now,
                            cpu,
                            scanned: false,
                        };
                    }
                }
                match plans {
                    Some(plans) => {
                        let plan = if plans.len() == 1 {
                            // The common aligned layout has one plan; skip
                            // the per-row modulo (an integer divide).
                            &plans[0]
                        } else {
                            &plans[(row % plans.len() as u64) as usize]
                        };
                        let aligned = row_base - plan.align;
                        for step in &plan.steps {
                            match *step {
                                PlanStep::Run {
                                    rel_line,
                                    fields,
                                    first_slot,
                                } => {
                                    let out = front.access_run(
                                        aligned + rel_line,
                                        fields,
                                        now,
                                        l2,
                                        &mut backend,
                                    );
                                    now = out.completion;
                                    // Value reads are pure; replaying them
                                    // after the run keeps slot order.
                                    for i in 0..fields as usize {
                                        let slot = first_slot as usize + i;
                                        let (offset, width) = cursors[slot];
                                        values[slot] =
                                            mem.read_uint(row_base + offset, width.min(8));
                                    }
                                }
                                PlanStep::Field { slot } => {
                                    let (offset, width) = cursors[slot as usize];
                                    let addr = row_base + offset;
                                    let out = front.access(addr, width, now, l2, &mut backend);
                                    now = out.completion;
                                    values[slot as usize] = mem.read_uint(addr, width.min(8));
                                }
                            }
                        }
                    }
                    None => {
                        for (slot, &(offset, width)) in cursors.iter().enumerate() {
                            let addr = row_base + offset;
                            let out = front.access(addr, width, now, l2, &mut backend);
                            now = out.completion;
                            values[slot] = mem.read_uint(addr, width.min(8));
                        }
                    }
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    now = front.access(addr, bytes, now, l2, &mut backend).completion;
                }
            }
            JobKind::Columnar { cursors } => {
                let front = &mut cores[core];
                let mut backend = DramBackend {
                    dram,
                    line_bytes,
                    core,
                };
                for (slot, &(col_base, width)) in cursors.iter().enumerate() {
                    let addr = col_base + row * width as u64;
                    let out = front.access(addr, width, now, l2, &mut backend);
                    now = out.completion;
                    values[slot] = mem.read_uint(addr, width.min(8));
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    now = front.access(addr, bytes, now, l2, &mut backend).completion;
                }
            }
            JobKind::Ephemeral {
                cursors,
                base,
                stride,
                plans,
                ..
            } => {
                let front = &mut cores[core];
                let row_base = base + row * stride;
                match plans {
                    Some(plans) => {
                        let plan = if plans.len() == 1 {
                            // The common aligned layout has one plan; skip
                            // the per-row modulo (an integer divide).
                            &plans[0]
                        } else {
                            &plans[(row % plans.len() as u64) as usize]
                        };
                        let aligned = row_base - plan.align;
                        for step in &plan.steps {
                            match *step {
                                PlanStep::Run {
                                    rel_line,
                                    fields,
                                    first_slot,
                                } => {
                                    let out = front.access_run(
                                        aligned + rel_line,
                                        fields,
                                        now,
                                        l2,
                                        &mut RmeBackend {
                                            engine: &mut *engine,
                                            dram: &mut *dram,
                                            mem,
                                            line_bytes,
                                            core,
                                        },
                                    );
                                    now = out.completion;
                                    for i in 0..fields as usize {
                                        let slot = first_slot as usize + i;
                                        let (offset, width) = cursors[slot];
                                        values[slot] = engine.read_packed_u64(
                                            row_base + offset,
                                            width,
                                            mem,
                                        );
                                    }
                                }
                                PlanStep::Field { slot } => {
                                    let (offset, width) = cursors[slot as usize];
                                    let addr = row_base + offset;
                                    let out = front.access(
                                        addr,
                                        width,
                                        now,
                                        l2,
                                        &mut RmeBackend {
                                            engine: &mut *engine,
                                            dram: &mut *dram,
                                            mem,
                                            line_bytes,
                                            core,
                                        },
                                    );
                                    now = out.completion;
                                    values[slot as usize] =
                                        engine.read_packed_u64(addr, width, mem);
                                }
                            }
                        }
                    }
                    None => {
                        for (slot, &(offset, width)) in cursors.iter().enumerate() {
                            let addr = row_base + offset;
                            let out = front.access(
                                addr,
                                width,
                                now,
                                l2,
                                &mut RmeBackend {
                                    engine: &mut *engine,
                                    dram: &mut *dram,
                                    mem,
                                    line_bytes,
                                    core,
                                },
                            );
                            now = out.completion;
                            values[slot] = engine.read_packed_u64(addr, width, mem);
                        }
                    }
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    let out = front.access(
                        addr,
                        bytes,
                        now,
                        l2,
                        &mut DramBackend {
                            dram: &mut *dram,
                            line_bytes,
                            core,
                        },
                    );
                    now = out.completion;
                }
            }
        }
        RowStep {
            now,
            cpu,
            scanned: true,
        }
    }

    /// Whether [`run_rows_fast`](Self::run_rows_fast) covers this job: a
    /// row-table scan with no MVCC snapshot and a single (stride-aligned)
    /// line plan. This is the shape every non-MVCC benchmark table has.
    pub(crate) fn fast_rows_shape(&self) -> bool {
        matches!(
            &self.kind,
            JobKind::Rows {
                snapshot: None,
                plans: Some(plans),
                ..
            } if plans.len() == 1
        )
    }

    /// The whole-scan fast loop for the [`fast_rows_shape`](Self::fast_rows_shape)
    /// case: identical per-row work to [`step_row`](Self::step_row) — the
    /// same accesses, value reads and CPU charges in the same order — with
    /// the per-row invariants (kind dispatch, frontend borrow, backend
    /// construction, plan selection) hoisted out of the loop. Single-core
    /// scans spend their whole life here, so the loop body must carry no
    /// rediscovery of what the plan already knows.
    ///
    /// Returns `(end, cpu_total, rows_scanned)` exactly as the caller's
    /// per-row accumulation over `step_row` would.
    pub(crate) fn run_rows_fast<F>(
        &self,
        p: Parts<'_>,
        core: usize,
        start: SimTime,
        values: &mut [u64],
        per_row: &mut F,
    ) -> (SimTime, SimTime, u64)
    where
        F: FnMut(u64, &[u64]) -> RowEffect,
    {
        let Parts {
            cores,
            l2,
            dram,
            mem,
            engine: _,
            line_bytes,
        } = p;
        let JobKind::Rows {
            cursors,
            base,
            stride,
            plans: Some(plans),
            ..
        } = &self.kind
        else {
            unreachable!("run_rows_fast requires fast_rows_shape");
        };
        let plan = &plans[0];
        let front = &mut cores[core];
        let mut backend = DramBackend {
            dram,
            line_bytes,
            core,
        };
        let mut now = start;
        let mut cpu_total = SimTime::ZERO;
        for row in 0..self.rows {
            let row_base = base + row * stride;
            let aligned = row_base - plan.align;
            for step in &plan.steps {
                match *step {
                    PlanStep::Run {
                        rel_line,
                        fields,
                        first_slot,
                    } => {
                        let out =
                            front.access_run(aligned + rel_line, fields, now, l2, &mut backend);
                        now = out.completion;
                        // Value reads are pure; replaying them after the
                        // run keeps slot order.
                        for i in 0..fields as usize {
                            let slot = first_slot as usize + i;
                            let (offset, width) = cursors[slot];
                            values[slot] = mem.read_uint(row_base + offset, width.min(8));
                        }
                    }
                    PlanStep::Field { slot } => {
                        let (offset, width) = cursors[slot as usize];
                        let addr = row_base + offset;
                        let out = front.access(addr, width, now, l2, &mut backend);
                        now = out.completion;
                        values[slot as usize] = mem.read_uint(addr, width.min(8));
                    }
                }
            }
            let effect = per_row(row, values);
            let row_cpu = self.row_cpu + effect.cpu;
            now += row_cpu;
            cpu_total += row_cpu;
            if let Some((addr, bytes)) = effect.touch {
                now = front.access(addr, bytes, now, l2, &mut backend).completion;
            }
        }
        (now, cpu_total, self.rows)
    }
}
