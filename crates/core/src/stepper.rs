//! The reusable per-core scan stepper.
//!
//! Multi-core schedulers — [`System::scan_sharded`](crate::System::scan_sharded)
//! and the workload layer's [`System::run_workload`](crate::System::run_workload)
//! — both advance cores one *row* at a time under deterministic min-clock
//! interleaving. [`ScanJob`] is the shared per-row body: it captures the
//! per-scan precomputation (column cursors, MVCC snapshot, per-row CPU
//! charge) once and then steps any row on any core. The bodies mirror the
//! single-core `System::scan_*` loops line for line; the cross-path
//! equivalence proptests pin the correspondence at one core for both the
//! sharded and the workload scheduler.
//!
//! [`Parts`] is the split-borrow view of the [`System`] a step works on:
//! the per-core frontends, the shared L2, the DRAM controller, physical
//! memory and the RME, borrowed simultaneously the way the scan loops in
//! `system.rs` destructure the platform.

use relmem_cache::{CoreFrontend, SharedL2};
use relmem_dram::{DramModel, PhysicalMemory};
use relmem_rme::RmeEngine;
use relmem_sim::SimTime;
use relmem_storage::{RowTable, Snapshot};

use crate::cost::CpuCostModel;
use crate::system::{DramBackend, RmeBackend, RowEffect, ScanSource, System};

/// Split-borrow view of a [`System`] for one scheduler step.
pub(crate) struct Parts<'a> {
    pub cores: &'a mut [CoreFrontend],
    pub l2: &'a mut SharedL2,
    pub dram: &'a mut DramModel,
    pub mem: &'a mut PhysicalMemory,
    pub engine: &'a mut RmeEngine,
    pub line_bytes: usize,
}

impl System {
    /// Splits the platform into the borrows one scheduler step needs.
    pub(crate) fn parts(&mut self) -> Parts<'_> {
        Parts {
            cores: &mut self.cores,
            l2: &mut self.l2,
            dram: &mut self.dram,
            mem: &mut self.mem,
            engine: &mut self.engine,
            line_bytes: self.cfg.l1.line_bytes,
        }
    }
}

/// Outcome of stepping one row.
pub(crate) struct RowStep {
    /// The core's local clock after the row.
    pub now: SimTime,
    /// CPU time charged for the row.
    pub cpu: SimTime,
    /// Whether the row was processed (false: skipped by MVCC visibility).
    pub scanned: bool,
}

/// The per-scan precomputation of one [`ScanSource`], ready to step any
/// row on any core.
pub(crate) struct ScanJob<'a> {
    kind: JobKind<'a>,
    rows: u64,
    row_cpu: SimTime,
    num_columns: usize,
}

enum JobKind<'a> {
    Rows {
        table: &'a RowTable,
        /// (offset within the physical row, width) per projected column,
        /// with the MVCC header folded into the offset.
        cursors: Vec<(u64, usize)>,
        base: u64,
        stride: u64,
        snapshot: Option<Snapshot>,
        visibility_cpu: SimTime,
    },
    Columnar {
        /// (column array base, width) per projected column.
        cursors: Vec<(u64, usize)>,
    },
    Ephemeral {
        /// (offset within the packed row, width) per packed column.
        cursors: Vec<(u64, usize)>,
        base: u64,
        stride: u64,
        /// Packed rows per Reorganization-Buffer frame (for frame-aware
        /// scheduling; `u64::MAX` when the engine holds no configuration).
        frame_rows: u64,
    },
}

impl<'a> ScanJob<'a> {
    /// Captures the per-scan constants of `source`. Borrows only the
    /// source's tables — not the system — so a job can outlive any number
    /// of [`Parts`] borrows.
    pub(crate) fn new(
        source: &ScanSource<'a>,
        cost: &CpuCostModel,
        engine: &RmeEngine,
    ) -> ScanJob<'a> {
        match *source {
            ScanSource::Rows {
                table,
                columns,
                snapshot,
            } => {
                let schema = table.schema();
                let header = table.mvcc().header_bytes() as u64;
                let cursors: Vec<(u64, usize)> = columns
                    .iter()
                    .map(|&col| {
                        (
                            header + schema.offset(col).expect("valid column") as u64,
                            schema.width(col).expect("valid column"),
                        )
                    })
                    .collect();
                ScanJob {
                    rows: table.num_rows(),
                    row_cpu: cost.row_loop() + cost.fields(columns.len()),
                    num_columns: columns.len(),
                    kind: JobKind::Rows {
                        table,
                        cursors,
                        base: table.row_addr(0),
                        stride: table.physical_row_bytes() as u64,
                        snapshot: snapshot.filter(|_| table.mvcc().is_enabled()),
                        visibility_cpu: cost.visibility(),
                    },
                }
            }
            ScanSource::Columnar { table, columns } => {
                let schema = table.schema();
                let cursors: Vec<(u64, usize)> = columns
                    .iter()
                    .map(|&col| {
                        (
                            table.column_base(col).expect("valid column"),
                            schema.width(col).expect("valid column"),
                        )
                    })
                    .collect();
                ScanJob {
                    rows: table.num_rows(),
                    row_cpu: cost.row_loop()
                        + cost.fields(columns.len())
                        + cost.tuple_reconstruction(columns.len()),
                    num_columns: columns.len(),
                    kind: JobKind::Columnar { cursors },
                }
            }
            ScanSource::Ephemeral { var } => {
                let num_columns = var.num_columns();
                let cursors: Vec<(u64, usize)> = (0..num_columns)
                    .map(|j| (var.field_addr(0, j) - var.base(), var.width(j)))
                    .collect();
                ScanJob {
                    rows: var.rows(),
                    row_cpu: cost.row_loop() + cost.fields(num_columns),
                    num_columns,
                    kind: JobKind::Ephemeral {
                        cursors,
                        base: var.base(),
                        stride: var.packed_row_bytes() as u64,
                        frame_rows: engine.rows_per_frame().unwrap_or(u64::MAX).max(1),
                    },
                }
            }
        }
    }

    /// Total rows the scan covers (before MVCC visibility filtering).
    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Values produced per row.
    pub(crate) fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// For ephemeral scans, the packed rows per Reorganization-Buffer
    /// frame — the scheduler granule that keeps frame fetches bounded.
    /// `None` for sources that don't go through the engine.
    pub(crate) fn frame_rows(&self) -> Option<u64> {
        match self.kind {
            JobKind::Ephemeral { frame_rows, .. } => Some(frame_rows),
            _ => None,
        }
    }

    /// Simulates row `row` on `core` starting at local time `now`: the
    /// row's access chain, the per-row closure, its [`RowEffect`], exactly
    /// as the single-core scan loops do. `values` must hold
    /// [`num_columns`](Self::num_columns) slots.
    pub(crate) fn step_row<F>(
        &self,
        p: Parts<'_>,
        core: usize,
        row: u64,
        now: SimTime,
        values: &mut [u64],
        per_row: &mut F,
    ) -> RowStep
    where
        F: FnMut(u64, &[u64]) -> RowEffect,
    {
        let Parts {
            cores,
            l2,
            dram,
            mem,
            engine,
            line_bytes,
        } = p;
        let mut cpu = SimTime::ZERO;
        let mut now = now;
        match &self.kind {
            JobKind::Rows {
                table,
                cursors,
                base,
                stride,
                snapshot,
                visibility_cpu,
            } => {
                let front = &mut cores[core];
                let mut backend = DramBackend {
                    dram,
                    line_bytes,
                    core,
                };
                let row_base = base + row * stride;
                if let Some(snap) = *snapshot {
                    let out = front.access(row_base, 16, now, l2, &mut backend);
                    now = out.completion + *visibility_cpu;
                    cpu += *visibility_cpu;
                    if !table.visible(mem, row, snap).unwrap_or(false) {
                        return RowStep {
                            now,
                            cpu,
                            scanned: false,
                        };
                    }
                }
                for (slot, &(offset, width)) in cursors.iter().enumerate() {
                    let addr = row_base + offset;
                    let out = front.access(addr, width, now, l2, &mut backend);
                    now = out.completion;
                    values[slot] = mem.read_uint(addr, width.min(8));
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    now = front.access(addr, bytes, now, l2, &mut backend).completion;
                }
            }
            JobKind::Columnar { cursors } => {
                let front = &mut cores[core];
                let mut backend = DramBackend {
                    dram,
                    line_bytes,
                    core,
                };
                for (slot, &(col_base, width)) in cursors.iter().enumerate() {
                    let addr = col_base + row * width as u64;
                    let out = front.access(addr, width, now, l2, &mut backend);
                    now = out.completion;
                    values[slot] = mem.read_uint(addr, width.min(8));
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    now = front.access(addr, bytes, now, l2, &mut backend).completion;
                }
            }
            JobKind::Ephemeral {
                cursors,
                base,
                stride,
                ..
            } => {
                let front = &mut cores[core];
                let row_base = base + row * stride;
                for (slot, &(offset, width)) in cursors.iter().enumerate() {
                    let addr = row_base + offset;
                    let out = front.access(
                        addr,
                        width,
                        now,
                        l2,
                        &mut RmeBackend {
                            engine: &mut *engine,
                            dram: &mut *dram,
                            mem,
                            line_bytes,
                            core,
                        },
                    );
                    now = out.completion;
                    values[slot] = engine.read_packed_u64(addr, width, mem);
                }
                let effect = per_row(row, values);
                let row_cpu = self.row_cpu + effect.cpu;
                now += row_cpu;
                cpu += row_cpu;
                if let Some((addr, bytes)) = effect.touch {
                    let out = front.access(
                        addr,
                        bytes,
                        now,
                        l2,
                        &mut DramBackend {
                            dram: &mut *dram,
                            line_bytes,
                            core,
                        },
                    );
                    now = out.completion;
                }
            }
        }
        RowStep {
            now,
            cpu,
            scanned: true,
        }
    }
}
