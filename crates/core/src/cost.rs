//! The CPU cost model.
//!
//! The simulator charges explicit CPU time for the work the query loop does
//! between memory accesses. The constants describe a ~1.2 GHz in-order
//! Cortex-A53 running the compiled C benchmark of the paper (a handful of
//! dual-issued instructions per row for the loop and the arithmetic, more
//! for hashing). They are structural — none of them depends on the access
//! path — so every path pays the same CPU-side work and differences between
//! paths come purely from data movement, exactly as in the paper.

use relmem_sim::SimTime;

/// Per-operation CPU costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Loop iteration overhead per row (index increment, bounds check,
    /// branch).
    pub row_loop_ns: f64,
    /// Cost of consuming one field value (load-to-use, register move).
    pub field_ns: f64,
    /// Extra cost per field when the tuple has to be re-assembled from
    /// separate column arrays (the paper's "tuple reconstruction cost").
    pub tuple_reconstruction_ns: f64,
    /// Evaluating a selection predicate (compare + predicated move).
    pub predicate_ns: f64,
    /// Updating a running aggregate (add / min / max).
    pub aggregate_ns: f64,
    /// Materialising one projected output field (store to the result
    /// buffer).
    pub output_ns: f64,
    /// Hashing a key and updating a group-by hash table entry.
    pub group_by_ns: f64,
    /// Hashing a key and inserting into a join hash table (build side).
    pub hash_build_ns: f64,
    /// Hashing a key and probing the join hash table (probe side),
    /// excluding the memory access to the table itself, which is simulated.
    pub hash_probe_ns: f64,
    /// Checking MVCC visibility of a row version (two compares).
    pub visibility_ns: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            row_loop_ns: 2.5,
            field_ns: 1.7,
            tuple_reconstruction_ns: 1.7,
            predicate_ns: 1.7,
            aggregate_ns: 1.7,
            output_ns: 1.7,
            group_by_ns: 20.0,
            hash_build_ns: 35.0,
            hash_probe_ns: 30.0,
            visibility_ns: 1.7,
        }
    }
}

impl CpuCostModel {
    /// Converts a nanosecond constant into simulated time.
    fn t(ns: f64) -> SimTime {
        SimTime::from_nanos_f64(ns)
    }

    /// Per-row loop overhead.
    pub fn row_loop(&self) -> SimTime {
        Self::t(self.row_loop_ns)
    }

    /// Consuming `fields` field values.
    pub fn fields(&self, fields: usize) -> SimTime {
        Self::t(self.field_ns * fields as f64)
    }

    /// Tuple reconstruction for `fields` fields gathered from separate
    /// arrays.
    pub fn tuple_reconstruction(&self, fields: usize) -> SimTime {
        Self::t(self.tuple_reconstruction_ns * fields as f64)
    }

    /// One predicate evaluation.
    pub fn predicate(&self) -> SimTime {
        Self::t(self.predicate_ns)
    }

    /// One aggregate update.
    pub fn aggregate(&self) -> SimTime {
        Self::t(self.aggregate_ns)
    }

    /// Materialising `fields` output fields.
    pub fn output(&self, fields: usize) -> SimTime {
        Self::t(self.output_ns * fields as f64)
    }

    /// One group-by hash update.
    pub fn group_by(&self) -> SimTime {
        Self::t(self.group_by_ns)
    }

    /// One hash-table build insert.
    pub fn hash_build(&self) -> SimTime {
        Self::t(self.hash_build_ns)
    }

    /// One hash-table probe.
    pub fn hash_probe(&self) -> SimTime {
        Self::t(self.hash_probe_ns)
    }

    /// One MVCC visibility check.
    pub fn visibility(&self) -> SimTime {
        Self::t(self.visibility_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_counts() {
        let m = CpuCostModel::default();
        assert_eq!(m.fields(4), SimTime::from_nanos_f64(4.0 * m.field_ns));
        assert_eq!(m.output(0), SimTime::ZERO);
        assert!(m.group_by() > m.aggregate());
        assert!(m.hash_build() >= m.hash_probe());
    }

    #[test]
    fn defaults_are_single_digit_nanoseconds_for_scalar_work() {
        let m = CpuCostModel::default();
        for ns in [m.row_loop_ns, m.field_ns, m.predicate_ns, m.aggregate_ns] {
            assert!(ns > 0.0 && ns < 10.0);
        }
    }
}
