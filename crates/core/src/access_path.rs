//! The four access paths the evaluation compares.

/// How a query reaches its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Read the needed fields directly from the row-major base table.
    DirectRowWise,
    /// Read them from a materialised column-store copy of the table.
    DirectColumnar,
    /// Read them through an ephemeral variable; the Reorganization Buffer
    /// starts empty, so the engine fetches and packs on demand.
    RmeCold,
    /// Read them through an ephemeral variable whose first frame has already
    /// been packed into the Reorganization Buffer.
    RmeHot,
}

impl AccessPath {
    /// Label used in figures (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            AccessPath::DirectRowWise => "Direct Row-wise",
            AccessPath::DirectColumnar => "Direct Columnar",
            AccessPath::RmeCold => "RME Cold",
            AccessPath::RmeHot => "RME Hot",
        }
    }

    /// Whether the path goes through the Relational Memory Engine.
    pub fn uses_rme(&self) -> bool {
        matches!(self, AccessPath::RmeCold | AccessPath::RmeHot)
    }

    /// All paths, in the order the paper's figures list them.
    pub fn all() -> [AccessPath; 4] {
        [
            AccessPath::DirectRowWise,
            AccessPath::DirectColumnar,
            AccessPath::RmeCold,
            AccessPath::RmeHot,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_predicates() {
        assert_eq!(AccessPath::DirectRowWise.label(), "Direct Row-wise");
        assert_eq!(AccessPath::RmeHot.label(), "RME Hot");
        assert!(AccessPath::RmeCold.uses_rme());
        assert!(!AccessPath::DirectColumnar.uses_rme());
        assert_eq!(AccessPath::all().len(), 4);
    }
}
