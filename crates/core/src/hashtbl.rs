//! A simulated hash table used by group-by and hash-join.
//!
//! Functional behaviour is an ordinary open hash map; what matters for the
//! timing model is that probes and inserts touch *memory*: each operation
//! derives a pseudo-random bucket address inside a region allocated in
//! simulated physical memory and performs a cache access there. For the
//! small group-by tables of Q4 the region fits in cache and the cost is CPU
//! dominated; for the 44 K-entry join table of Q5 the probes miss often,
//! which is exactly why the paper's Figure 12 shows the (path-independent)
//! hashing cost dominating the join.

use std::collections::HashMap;

/// Simulated hash table: functional map + memory region for timing.
#[derive(Debug, Clone)]
pub struct SimHashTable {
    map: HashMap<u64, Vec<u64>>,
    /// Base address of the bucket array in simulated memory.
    region_base: u64,
    /// Number of buckets (power of two).
    buckets: u64,
    /// Bytes per bucket entry.
    entry_bytes: u64,
}

impl SimHashTable {
    /// Bytes per bucket entry (key + payload + next pointer).
    pub const ENTRY_BYTES: u64 = 24;

    /// Creates a table whose bucket array lives at `region_base` and is
    /// sized for `expected_entries`.
    pub fn new(region_base: u64, expected_entries: u64) -> Self {
        let buckets = expected_entries.next_power_of_two().max(16);
        SimHashTable {
            map: HashMap::with_capacity(expected_entries as usize),
            region_base,
            buckets,
            entry_bytes: Self::ENTRY_BYTES,
        }
    }

    /// Bytes of simulated memory the bucket array needs.
    pub fn region_bytes(expected_entries: u64) -> u64 {
        expected_entries.next_power_of_two().max(16) * Self::ENTRY_BYTES
    }

    /// The simulated address touched by an operation on `key`.
    pub fn bucket_addr(&self, key: u64) -> u64 {
        self.region_base + (Self::mix(key) % self.buckets) * self.entry_bytes
    }

    /// Inserts a `(key, value)` pair (functional part).
    pub fn insert(&mut self, key: u64, value: u64) {
        self.map.entry(key).or_default().push(value);
    }

    /// Values stored under `key` (functional part).
    pub fn get(&self, key: u64) -> &[u64] {
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of stored values.
    pub fn entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// A simple 64-bit finaliser (splitmix64) for spreading keys over
    /// buckets deterministically.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// Order-insensitive checksum helper used to validate row-set results
/// across access paths.
pub fn checksum_accumulate(acc: u64, values: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    acc.wrapping_add(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_map_behaviour() {
        let mut t = SimHashTable::new(0x8000, 100);
        t.insert(1, 10);
        t.insert(1, 11);
        t.insert(2, 20);
        assert_eq!(t.get(1), &[10, 11]);
        assert_eq!(t.get(3), &[] as &[u64]);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.entries(), 3);
    }

    #[test]
    fn bucket_addresses_stay_inside_the_region() {
        let t = SimHashTable::new(0x10_000, 1_000);
        let region = SimHashTable::region_bytes(1_000);
        for key in 0..10_000u64 {
            let a = t.bucket_addr(key);
            assert!(a >= 0x10_000 && a < 0x10_000 + region);
        }
    }

    #[test]
    fn bucket_addresses_spread() {
        let t = SimHashTable::new(0, 1_024);
        let distinct: std::collections::HashSet<u64> =
            (0..1_024u64).map(|k| t.bucket_addr(k)).collect();
        // At least half of sequential keys land in distinct buckets.
        assert!(distinct.len() > 512, "only {} distinct buckets", distinct.len());
    }

    #[test]
    fn checksum_is_order_insensitive_but_value_sensitive() {
        let a = checksum_accumulate(checksum_accumulate(0, &[1, 2]), &[3, 4]);
        let b = checksum_accumulate(checksum_accumulate(0, &[3, 4]), &[1, 2]);
        assert_eq!(a, b);
        let c = checksum_accumulate(checksum_accumulate(0, &[1, 2]), &[3, 5]);
        assert_ne!(a, c);
    }
}
