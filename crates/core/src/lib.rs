//! Ephemeral variables and the Relational Memory query engine.
//!
//! This crate is the software half of the paper's co-design: it wires the
//! simulated platform together (physical memory, DRAM controller, cache
//! hierarchy, Relational Memory Engine), exposes the *ephemeral variable*
//! abstraction (`register_var` in the paper's Listing 4), and implements the
//! Relational Memory Benchmark — queries Q0–Q5 of Listing 5 — over four
//! access paths:
//!
//! * [`AccessPath::DirectRowWise`] — read the needed fields straight from
//!   the row-major table (the paper's "Direct Row-wise" baseline),
//! * [`AccessPath::DirectColumnar`] — read them from a materialised
//!   column-store copy ("Direct Columnar"),
//! * [`AccessPath::RmeCold`] — read them through an ephemeral variable with
//!   an empty Reorganization Buffer ("RME Cold"),
//! * [`AccessPath::RmeHot`] — the same with the buffer pre-packed
//!   ("RME Hot").
//!
//! Every query returns both its (bit-exact, cross-path-validated) result and
//! a [`measure::QueryMeasurement`] with simulated time and hardware
//! counters, which the `relmem-bench` crate turns into the paper's figures.

pub mod access_path;
pub mod benchmark;
pub mod cost;
pub mod ephemeral;
pub mod hashtbl;
pub mod measure;
pub mod openloop;
pub mod queries;
mod stepper;
pub mod system;
pub mod txn;
pub mod workload;

pub use access_path::AccessPath;
pub use benchmark::{Benchmark, BenchmarkParams};
pub use cost::CpuCostModel;
pub use ephemeral::EphemeralVariable;
pub use measure::{QueryMeasurement, QueryOutput};
pub use openloop::{
    AdmissionConfig, ArrivalProcess, DegradePolicy, OpenLoopOp, OpenLoopOutcome, OpenLoopRun,
    OpenLoopStream, OpenLoopStreamReport, OpenLoopWorkload,
};
pub use queries::Query;
pub use system::{CoreScan, ShardedScan, System, SystemConfig};
pub use txn::{TxnAbort, TxnOp, TxnSpec, TXN_TS_BASE};
pub use workload::{
    OpKind, OpOutcome, QueryStream, StreamReport, Workload, WorkloadError, WorkloadOp, WorkloadRun,
};
