//! Open-loop traffic with admission control and graceful degradation.
//!
//! [`System::run_workload`](crate::System::run_workload) is *closed-loop*:
//! each stream issues its next op the instant the previous one completes,
//! so offered load always equals service capacity and the system can never
//! fall behind. Production traffic is open-loop — requests arrive on their
//! own schedule, independent of completions — and the behaviour that
//! matters for robustness (the saturation knee, queueing-dominated p99.9,
//! what gets *shed* when the system cannot keep up) only exists there.
//!
//! This module adds that mode on top of the exact same per-unit machinery
//! the closed-loop scheduler uses:
//!
//! * [`ArrivalProcess`] — a deterministic pseudo-Poisson process
//!   (exponential inter-arrival gaps via inverse-CDF over the vendored
//!   xoshiro256** generator) that injects template [`WorkloadOp`]s into
//!   **bounded per-core admission queues** in simulated time.
//! * Admission control — **reject-on-full** at arrival,
//!   **deadline-based load shedding** (an op whose queueing delay exceeds
//!   [`AdmissionConfig::delay_budget`] is dropped at dequeue, no retry) and
//!   a **client timeout with bounded retry** (an op still queued past
//!   [`AdmissionConfig::timeout`] is abandoned; the client re-submits after
//!   an exponential backoff, up to [`AdmissionConfig::max_retries`] times;
//!   retries re-enter the queue and are counted separately from first
//!   arrivals). The timeout is checked before the delay budget: a client
//!   that gave up takes precedence over the server dropping the op.
//!   Service is never preempted — an op that starts executing runs to
//!   completion; timeouts and sheds apply only while queued.
//! * Graceful degradation — under sustained pressure (a shed event, or
//!   admission-queue depth at/above
//!   [`DegradePolicy::high_watermark`], observed `trigger_after` times in
//!   a row) the run enters *degraded mode*: every subsequent op that
//!   carries a cheaper alternative ([`OpenLoopOp::degraded`] — typically
//!   an OLAP scan downgraded from the direct path to the RME path, which
//!   PR 3 showed leaves OLTP tails unharmed) executes the alternative
//!   instead. `clear_after` consecutive calm observations (no shed, depth
//!   at/below `low_watermark`) restore normal mode. Every transition is
//!   recorded with its timestamp in [`OverloadStats::transitions`].
//!
//! # Accounting identities
//!
//! [`OverloadStats`] satisfies, at the end of every run:
//!
//! ```text
//! arrivals + retries == admitted + shed_queue_full
//! admitted          == completed + shed_deadline + timed_out
//! ```
//!
//! # Determinism
//!
//! Everything is deterministic: arrivals come from a seeded generator, the
//! interleaver is the same frame-aware min-clock rule as the closed-loop
//! scheduler (an idle core's key is its next arrival time), and ties break
//! to the lowest core index. Identical seeds and configuration produce
//! identical [`OverloadStats`], latency profiles and data-path counters.
//! At low rates (queues never fill, nothing sheds or times out) an
//! open-loop stream executes the *same op sequence* as the equivalent
//! closed-loop stream — `tests/cross_path_equivalence.rs` proves by
//! proptest that the data-path counters match bit for bit.

use std::collections::VecDeque;

use rand::{rngs::StdRng, RngCore, SeedableRng};
use relmem_cache::HierarchyStats;
use relmem_sim::{
    DegradeTransition, LatencyProfile, OverloadStats, SimTime, TraceEvent, TraceEventKind, Tracer,
    Track, TxnStats,
};

use crate::system::{RowEffect, System};
use crate::txn::TxnAbort;
use crate::workload::{OpKind, StreamState, WorkloadError, WorkloadOp};

/// A deterministic pseudo-Poisson arrival process.
///
/// Inter-arrival gaps are exponentially distributed with mean `1 / rate`,
/// drawn by inverse CDF from the workspace's vendored xoshiro256**
/// generator — fully determined by the seed, stable across runs. Gaps are
/// floored at one picosecond so arrivals are strictly increasing.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: StdRng,
    mean_gap_ns: f64,
}

impl ArrivalProcess {
    /// A Poisson process of `rate_ops_per_s` arrivals per simulated
    /// second, seeded with `seed`.
    ///
    /// # Panics
    /// Panics if the rate is not positive and finite —
    /// [`System::run_open_loop`] validates stream rates upfront and
    /// returns [`WorkloadError::InvalidArrivalRate`] instead.
    pub fn poisson(rate_ops_per_s: f64, seed: u64) -> Self {
        assert!(
            rate_ops_per_s.is_finite() && rate_ops_per_s > 0.0,
            "arrival rate must be positive and finite"
        );
        ArrivalProcess {
            rng: StdRng::seed_from_u64(seed),
            mean_gap_ns: 1e9 / rate_ops_per_s,
        }
    }

    /// Draws the next inter-arrival gap (always at least one picosecond).
    pub fn next_gap(&mut self) -> SimTime {
        // 53 random bits give u uniform in [0, 1); 1 - u is in (0, 1] so
        // the log is finite and the gap non-negative.
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let gap_ns = -(1.0 - u).ln() * self.mean_gap_ns;
        SimTime::from_nanos_f64(gap_ns).max(SimTime::from_picos(1))
    }
}

/// One template op of an open-loop stream, with an optional cheaper
/// alternative to run in degraded mode.
#[derive(Clone, Copy)]
pub struct OpenLoopOp<'a> {
    /// The op as issued under normal operation.
    pub op: WorkloadOp<'a>,
    /// The degraded-mode substitute (typically the same scan through the
    /// RME path instead of the direct path). `None` means the op runs
    /// unchanged even in degraded mode.
    pub degraded: Option<WorkloadOp<'a>>,
}

impl<'a> OpenLoopOp<'a> {
    /// An op with no degraded alternative.
    pub fn new(op: WorkloadOp<'a>) -> Self {
        OpenLoopOp { op, degraded: None }
    }

    /// An op that executes `degraded` instead while the run is in
    /// degraded mode.
    pub fn with_degraded(op: WorkloadOp<'a>, degraded: WorkloadOp<'a>) -> Self {
        OpenLoopOp {
            op,
            degraded: Some(degraded),
        }
    }
}

/// One core's open-loop traffic: `arrivals` ops drawn round-robin from the
/// `ops` template, arriving at `rate_ops_per_s`.
pub struct OpenLoopStream<'a> {
    /// Template ops; arrival `i` injects `ops[i % ops.len()]`.
    pub ops: Vec<OpenLoopOp<'a>>,
    /// Mean arrival rate in operations per simulated second.
    pub rate_ops_per_s: f64,
    /// Total arrivals the stream generates (the run ends when every
    /// stream's arrivals, retries and queues have drained).
    pub arrivals: u64,
}

impl<'a> OpenLoopStream<'a> {
    /// A stream injecting `arrivals` ops from `ops` at `rate_ops_per_s`.
    pub fn new(ops: Vec<OpenLoopOp<'a>>, rate_ops_per_s: f64, arrivals: u64) -> Self {
        OpenLoopStream {
            ops,
            rate_ops_per_s,
            arrivals,
        }
    }

    /// A stream generating no traffic (its core stays idle).
    pub fn idle() -> Self {
        OpenLoopStream {
            ops: Vec::new(),
            rate_ops_per_s: 1.0,
            arrivals: 0,
        }
    }
}

/// Open-loop traffic for the whole system: stream `i` targets core `i`.
pub struct OpenLoopWorkload<'a> {
    /// Per-core streams. May be shorter than the core count (the rest
    /// idle) but never longer.
    pub streams: Vec<OpenLoopStream<'a>>,
}

impl<'a> OpenLoopWorkload<'a> {
    /// A workload of the given per-core streams.
    pub fn new(streams: Vec<OpenLoopStream<'a>>) -> Self {
        OpenLoopWorkload { streams }
    }
}

/// Watermark-based hysteresis controlling graceful degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Queue depth that counts as pressure (a shed event always does).
    pub high_watermark: usize,
    /// Queue depth at/below which an observation counts as calm.
    pub low_watermark: usize,
    /// Consecutive pressure observations before entering degraded mode.
    pub trigger_after: u32,
    /// Consecutive calm observations before restoring normal mode.
    pub clear_after: u32,
}

/// Admission-control policy for [`System::run_open_loop`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Seed for the per-stream arrival processes (stream `i` derives its
    /// own independent stream from this).
    pub seed: u64,
    /// Bounded admission-queue capacity per core; arrivals beyond it are
    /// rejected (`shed_queue_full`). Must be at least 1.
    pub queue_capacity: usize,
    /// Maximum queueing delay before the *system* sheds the op at dequeue
    /// (`shed_deadline`, never retried). `None` disables shedding.
    pub delay_budget: Option<SimTime>,
    /// Maximum queueing delay before the *client* abandons the op
    /// (`timed_out`) and — attempts permitting — re-submits it. `None`
    /// disables timeouts (and therefore retries).
    pub timeout: Option<SimTime>,
    /// Retry attempts per op after its first submission.
    pub max_retries: u32,
    /// Base backoff: retry `k` (1-based) of an op arriving at `t` is
    /// re-submitted at `t + timeout + retry_backoff · 2^(k-1)`.
    pub retry_backoff: SimTime,
    /// Graceful-degradation policy; `None` never degrades.
    pub degrade: Option<DegradePolicy>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            seed: 0,
            queue_capacity: 64,
            delay_budget: None,
            timeout: None,
            max_retries: 0,
            retry_backoff: SimTime::ZERO,
            degrade: None,
        }
    }
}

/// One completed open-loop op.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOutcome {
    /// Index into the stream's op template.
    pub template: usize,
    /// What kind of op ran.
    pub kind: OpKind,
    /// When this attempt of the op arrived (retries carry their
    /// re-submission time).
    pub arrival: SimTime,
    /// When the op left the queue and started executing.
    pub start: SimTime,
    /// When the op completed.
    pub end: SimTime,
    /// Rows processed.
    pub rows: u64,
    /// 0 for a first submission, `k` for the `k`-th retry.
    pub attempt: u32,
    /// Whether the degraded-mode alternative ran instead of the op.
    pub degraded: bool,
}

impl OpenLoopOutcome {
    /// End-to-end latency the client observed: queueing plus service.
    pub fn latency(&self) -> SimTime {
        self.end.saturating_sub(self.arrival)
    }

    /// Time the op spent queued before service.
    pub fn queue_delay(&self) -> SimTime {
        self.start.saturating_sub(self.arrival)
    }
}

/// One core's open-loop results.
#[derive(Debug, Clone)]
pub struct OpenLoopStreamReport {
    /// The core the stream ran on.
    pub core: usize,
    /// Completed ops in completion order (shed and abandoned attempts do
    /// not appear here — they are counted in [`OverloadStats`]).
    pub outcomes: Vec<OpenLoopOutcome>,
    /// The core's local clock when it drained.
    pub end: SimTime,
    /// CPU time the core charged.
    pub cpu: SimTime,
    /// Rows processed on the core.
    pub rows: u64,
    /// The core's cache counters for the whole measurement window.
    pub cache: HierarchyStats,
}

/// Outcome of a [`System::run_open_loop`] call.
#[derive(Debug, Clone)]
pub struct OpenLoopRun {
    /// Drain time of the slowest core.
    pub end: SimTime,
    /// Total CPU time across cores.
    pub cpu: SimTime,
    /// Total rows processed.
    pub rows: u64,
    /// Per-core results.
    pub streams: Vec<OpenLoopStreamReport>,
    /// Admission-control accounting for the whole run.
    pub overload: OverloadStats,
    /// Transaction accounting for the run (all zero without
    /// [`WorkloadOp::Txn`] templates). Submissions dropped before
    /// execution — queue-full, deadline shed, final timeout — count as
    /// `begun` *and* `aborted_shed`, keeping the identity
    /// `begun == committed + aborted_conflict + aborted_shed`.
    pub txn: TxnStats,
    /// Every transaction abort that reached execution, in abort order.
    pub txn_aborts: Vec<TxnAbort>,
}

impl OpenLoopRun {
    /// End-to-end (arrival → completion) latencies of every completed op.
    pub fn latencies(&self) -> LatencyProfile {
        self.streams
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .map(|o| o.latency())
            .collect()
    }

    /// Queueing delays (arrival → service start) of every completed op.
    pub fn queue_delays(&self) -> LatencyProfile {
        self.streams
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .map(|o| o.queue_delay())
            .collect()
    }

    /// End-to-end latencies of completed OLTP ops only.
    pub fn oltp_latencies(&self) -> LatencyProfile {
        self.streams
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .filter(|o| o.kind.is_oltp())
            .map(|o| o.latency())
            .collect()
    }
}

/// One queued (or scheduled-to-retry) submission of a template op.
#[derive(Debug, Clone, Copy)]
struct Pending {
    template: usize,
    arrival: SimTime,
    attempt: u32,
}

/// The op currently in service on a core (only scans span steps).
struct Inflight {
    pending: Pending,
    degraded: bool,
}

/// Global degradation hysteresis (one state machine per run — degradation
/// is a system-wide mode switch, not a per-core one).
struct DegradeState {
    policy: Option<DegradePolicy>,
    degraded: bool,
    pressure_run: u32,
    calm_run: u32,
}

impl DegradeState {
    fn new(policy: Option<DegradePolicy>) -> Self {
        DegradeState {
            policy,
            degraded: false,
            pressure_run: 0,
            calm_run: 0,
        }
    }

    /// Feeds one admission/shed observation into the hysteresis, recording
    /// a transition in `stats` — and, mirrored at the exact same
    /// timestamp, a [`TraceEventKind::Degrade`] instant — when the mode
    /// flips.
    fn observe(
        &mut self,
        at: SimTime,
        shed: bool,
        depth: usize,
        stats: &mut OverloadStats,
        tracer: &mut Tracer,
    ) {
        let Some(p) = self.policy else {
            return;
        };
        if shed || depth >= p.high_watermark {
            self.pressure_run += 1;
            self.calm_run = 0;
        } else if depth <= p.low_watermark {
            self.calm_run += 1;
            self.pressure_run = 0;
        } else {
            // Between watermarks: neither pressure nor calm accumulates.
            self.pressure_run = 0;
            self.calm_run = 0;
        }
        if !self.degraded && self.pressure_run >= p.trigger_after.max(1) {
            self.degraded = true;
            self.pressure_run = 0;
            stats
                .transitions
                .push(DegradeTransition { at, degraded: true });
            tracer.emit(|| TraceEvent::instant(Track::System, TraceEventKind::Degrade, at, 1, 0));
        } else if self.degraded && self.calm_run >= p.clear_after.max(1) {
            self.degraded = false;
            self.calm_run = 0;
            stats.transitions.push(DegradeTransition {
                at,
                degraded: false,
            });
            tracer.emit(|| TraceEvent::instant(Track::System, TraceEventKind::Degrade, at, 0, 0));
        }
    }
}

/// Per-core open-loop scheduler state, wrapping the closed-loop
/// [`StreamState`] so both modes share the identical data path.
struct CoreState<'a, 'w> {
    st: StreamState<'a, 'w>,
    template: &'w [OpenLoopOp<'a>],
    arrivals: ArrivalProcess,
    /// First arrivals not yet injected.
    remaining: u64,
    /// Arrival time of the next first arrival (valid while `remaining > 0`).
    next_arrival: SimTime,
    /// Index (mod template length) of the next first arrival.
    arrival_index: u64,
    /// Scheduled retries, sorted by arrival time (stable for ties).
    retries: Vec<Pending>,
    /// The bounded admission queue.
    queue: VecDeque<Pending>,
    inflight: Option<Inflight>,
    outcomes: Vec<OpenLoopOutcome>,
}

impl CoreState<'_, '_> {
    /// Arrival time of the next un-admitted event (first arrival or
    /// retry), or `None` when the source has drained.
    fn next_event_time(&self) -> Option<SimTime> {
        let first = (self.remaining > 0).then_some(self.next_arrival);
        let retry = self.retries.first().map(|p| p.arrival);
        match (first, retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The core's scheduling key: its clock while it has work, its next
    /// arrival while idle, `None` once fully drained.
    fn ready_at(&self) -> Option<SimTime> {
        if self.st.active.is_some() || self.st.active_txn.is_some() || !self.queue.is_empty() {
            Some(self.st.now)
        } else {
            self.next_event_time().map(|t| self.st.now.max(t))
        }
    }

    /// Schedules a retry, keeping the list sorted by arrival time.
    fn schedule_retry(&mut self, p: Pending) {
        let at = self.retries.partition_point(|q| q.arrival <= p.arrival);
        self.retries.insert(at, p);
    }
}

impl System {
    /// Runs open-loop traffic: each stream's [`ArrivalProcess`] injects
    /// template ops into its core's bounded admission queue in simulated
    /// time, independent of service completion, under the admission /
    /// shedding / timeout-retry / degradation policy of `cfg` (see the
    /// [module docs](crate::openloop)). The run ends when every arrival
    /// and retry has been admitted, shed or abandoned and all queues have
    /// drained.
    ///
    /// `observer` is invoked exactly as in
    /// [`run_workload`](System::run_workload), with the *template index*
    /// as the op label.
    ///
    /// # Errors
    /// Returns a [`WorkloadError`] — before any simulated work runs — on
    /// more streams than cores, an invalid (non-positive or non-finite)
    /// arrival rate, a non-empty arrival count with an empty op template,
    /// a zero queue capacity, degradation watermarks with `low > high`,
    /// or any template op (or degraded alternative) that fails the same
    /// validation `run_workload` applies.
    pub fn run_open_loop<F>(
        &mut self,
        workload: &OpenLoopWorkload<'_>,
        cfg: &AdmissionConfig,
        start: SimTime,
        mut observer: F,
    ) -> Result<OpenLoopRun, WorkloadError>
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        if workload.streams.len() > self.cores.len() {
            return Err(WorkloadError::TooManyStreams {
                streams: workload.streams.len(),
                cores: self.cores.len(),
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(WorkloadError::ZeroQueueCapacity);
        }
        if let Some(p) = cfg.degrade {
            if p.low_watermark > p.high_watermark {
                return Err(WorkloadError::InvalidWatermarks {
                    high: p.high_watermark,
                    low: p.low_watermark,
                });
            }
        }
        for (i, stream) in workload.streams.iter().enumerate() {
            if !(stream.rate_ops_per_s.is_finite() && stream.rate_ops_per_s > 0.0) {
                return Err(WorkloadError::InvalidArrivalRate { stream: i });
            }
            if stream.arrivals > 0 && stream.ops.is_empty() {
                return Err(WorkloadError::EmptyTemplate { stream: i });
            }
            for (j, op) in stream.ops.iter().enumerate() {
                op.op.validate(i, j)?;
                if let Some(alt) = &op.degraded {
                    alt.validate(i, j)?;
                }
            }
        }

        self.txn_rt.reset(true);
        let mut states: Vec<CoreState<'_, '_>> = workload
            .streams
            .iter()
            .enumerate()
            .map(|(i, stream)| {
                // Give every stream its own statistically independent
                // arrival stream derived from the one seed.
                let seed = cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut arrivals = ArrivalProcess::poisson(stream.rate_ops_per_s, seed);
                let first = start + arrivals.next_gap();
                CoreState {
                    st: StreamState::fresh(&[], start),
                    template: &stream.ops,
                    arrivals,
                    remaining: stream.arrivals,
                    next_arrival: first,
                    arrival_index: 0,
                    retries: Vec::new(),
                    queue: VecDeque::new(),
                    inflight: None,
                    outcomes: Vec::new(),
                }
            })
            .collect();
        let mut stats = OverloadStats::default();
        let mut degrade = DegradeState::new(cfg.degrade);

        loop {
            // Frame-aware min-clock pick, exactly as in `run_workload`,
            // except an idle core's key is its next arrival time.
            let resident = self.engine.resident_frame();
            let pick_by = |pred: &dyn Fn(&CoreState<'_, '_>) -> bool| {
                let mut pick: Option<(usize, SimTime)> = None;
                for (i, cs) in states.iter().enumerate() {
                    if let Some(k) = cs.ready_at() {
                        if pred(cs) && pick.is_none_or(|(_, best)| k < best) {
                            pick = Some((i, k));
                        }
                    }
                }
                pick
            };
            let plain = pick_by(&|cs| !cs.st.ephemeral_next());
            let eph = pick_by(&|cs| cs.st.ephemeral_next() && cs.st.in_frame(resident))
                .or_else(|| pick_by(&|cs| cs.st.ephemeral_next()));
            let pick = match (plain, eph) {
                (Some((a, ka)), Some((b, kb))) => {
                    if kb < ka {
                        Some(b)
                    } else if ka < kb {
                        Some(a)
                    } else {
                        Some(a.min(b))
                    }
                }
                (a, b) => a.or(b).map(|(i, _)| i),
            };
            let Some(core) = pick else {
                break;
            };
            self.step_open_core(
                core,
                &mut states[core],
                cfg,
                &mut stats,
                &mut degrade,
                &mut observer,
            );
            // The stepped core's clock is the scheduler's event horizon:
            // retire every memory completion it can now observe.
            let horizon = states[core].st.now;
            self.dram.drain_completions(horizon);
        }
        self.settle_memory();

        let mut end = SimTime::ZERO;
        let mut cpu = SimTime::ZERO;
        let mut rows = 0u64;
        let mut streams = Vec::with_capacity(states.len());
        for (core, cs) in states.into_iter().enumerate() {
            debug_assert!(cs.st.outcomes.is_empty(), "every op outcome is consumed");
            end = end.max(cs.st.now);
            cpu += cs.st.cpu;
            rows += cs.st.rows;
            streams.push(OpenLoopStreamReport {
                core,
                outcomes: cs.outcomes,
                end: cs.st.now,
                cpu: cs.st.cpu,
                rows: cs.st.rows,
                cache: *self.cores[core].stats(),
            });
        }
        debug_assert!(
            self.txn_rt.stats.is_consistent(),
            "txn accounting identity violated: {:?}",
            self.txn_rt.stats
        );
        Ok(OpenLoopRun {
            end,
            cpu,
            rows,
            streams,
            overload: stats,
            txn: self.txn_rt.stats.clone(),
            txn_aborts: std::mem::take(&mut self.txn_rt.aborts),
        })
    }

    /// Advances one core by one unit: a row of its active scan, or one
    /// dequeue decision (shed / timeout / start an op). An idle core first
    /// advances its clock to the next arrival. Admissions are drained
    /// lazily — every event at or before the core's clock is admitted (or
    /// rejected) before the unit runs.
    #[allow(clippy::too_many_arguments)] // private scheduler helper
    fn step_open_core<'a, F>(
        &mut self,
        core: usize,
        cs: &mut CoreState<'a, '_>,
        cfg: &AdmissionConfig,
        stats: &mut OverloadStats,
        degrade: &mut DegradeState,
        observer: &mut F,
    ) where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        // An idle core sleeps until its next arrival.
        if cs.st.active.is_none() && cs.st.active_txn.is_none() && cs.queue.is_empty() {
            if let Some(t) = cs.next_event_time() {
                cs.st.now = cs.st.now.max(t);
            }
        }
        drain_admissions(
            cs,
            cfg,
            stats,
            degrade,
            &mut self.txn_rt.stats,
            core as u32,
            &mut self.tracer,
        );

        // One row of the in-progress scan, if any.
        if self.step_scan_row(core, &mut cs.st, observer) {
            if cs.st.active.is_none() {
                finish_op(cs, cfg, stats);
            }
            return;
        }
        // One unit of the in-progress transaction, if any. A conflict
        // abort frees the queue slot immediately; `finish_op` reschedules
        // it through the admission queue when retries remain.
        if self.step_txn_unit(core, &mut cs.st, observer) {
            if cs.st.active_txn.is_none() {
                finish_op(cs, cfg, stats);
            }
            return;
        }

        // Dequeue until something runs: sheds and abandoned timeouts are
        // pure bookkeeping and consume no simulated time.
        while let Some(p) = cs.queue.pop_front() {
            let waited = cs.st.now.saturating_sub(p.arrival);
            if let Some(timeout) = cfg.timeout {
                if waited > timeout {
                    stats.timed_out += 1;
                    let (at, template, attempt) =
                        (cs.st.now, p.template as u64, u64::from(p.attempt));
                    self.tracer.emit(|| {
                        TraceEvent::instant(
                            Track::Core(core as u32),
                            TraceEventKind::OpTimeout,
                            at,
                            template,
                            attempt,
                        )
                    });
                    if p.attempt < cfg.max_retries {
                        let backoff = cfg.retry_backoff.scaled(1u64 << p.attempt.min(20));
                        cs.schedule_retry(Pending {
                            template: p.template,
                            arrival: p.arrival + timeout + backoff,
                            attempt: p.attempt + 1,
                        });
                    } else {
                        // The final attempt of a transaction template was
                        // abandoned before it could begin: account it as
                        // begun-and-shed so the txn identity holds.
                        account_txn_drop(cs, p.template, &mut self.txn_rt.stats);
                    }
                    continue;
                }
            }
            if let Some(budget) = cfg.delay_budget {
                if waited > budget {
                    stats.shed_deadline += 1;
                    account_txn_drop(cs, p.template, &mut self.txn_rt.stats);
                    let (at, template, delay) =
                        (cs.st.now, p.template as u64, waited.as_picos());
                    self.tracer.emit(|| {
                        TraceEvent::instant(
                            Track::Core(core as u32),
                            TraceEventKind::OpShedDeadline,
                            at,
                            template,
                            delay,
                        )
                    });
                    degrade.observe(cs.st.now, true, cs.queue.len(), stats, &mut self.tracer);
                    continue;
                }
            }
            let tmpl = &cs.template[p.template];
            let degraded = degrade.degraded && tmpl.degraded.is_some();
            let op = if degraded {
                tmpl.degraded.expect("checked above")
            } else {
                tmpl.op
            };
            if degraded {
                stats.degraded_ops += 1;
            }
            cs.inflight = Some(Inflight {
                pending: p,
                degraded,
            });
            self.start_op(core, &mut cs.st, p.template, op, observer);
            if cs.st.active.is_none() && cs.st.active_txn.is_none() {
                // Point ops, snapshots and empty scans complete in-call.
                finish_op(cs, cfg, stats);
            }
            return;
        }
    }
}

/// Accounts an open-loop transaction submission dropped before execution
/// (queue-full rejection, deadline shed, or final timeout): it counts as
/// begun *and* shed so `begun == committed + aborted_conflict +
/// aborted_shed` holds for the run. Non-transaction templates are
/// untouched.
fn account_txn_drop(cs: &CoreState<'_, '_>, template: usize, txn: &mut TxnStats) {
    if matches!(cs.template[template].op, WorkloadOp::Txn { .. }) {
        txn.begun += 1;
        txn.aborted_shed += 1;
    }
}

/// Admits (or rejects) every pending arrival and retry at or before the
/// core's clock, feeding each observation into the degradation hysteresis.
#[allow(clippy::too_many_arguments)] // private scheduler helper
fn drain_admissions(
    cs: &mut CoreState<'_, '_>,
    cfg: &AdmissionConfig,
    stats: &mut OverloadStats,
    degrade: &mut DegradeState,
    txn: &mut TxnStats,
    core: u32,
    tracer: &mut Tracer,
) {
    loop {
        let first = (cs.remaining > 0).then_some(cs.next_arrival);
        let retry = cs.retries.first().map(|p| p.arrival);
        // Take the earlier event; ties go to the first arrival.
        let take_retry = match (first, retry) {
            (Some(a), Some(b)) => b < a,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return,
        };
        let at = if take_retry {
            retry.expect("retry chosen")
        } else {
            first.expect("arrival chosen")
        };
        if at > cs.st.now {
            return;
        }
        let p = if take_retry {
            stats.retries += 1;
            cs.retries.remove(0)
        } else {
            stats.arrivals += 1;
            let template = (cs.arrival_index % cs.template.len() as u64) as usize;
            cs.arrival_index += 1;
            cs.remaining -= 1;
            let gap = cs.arrivals.next_gap();
            cs.next_arrival += gap;
            Pending {
                template,
                arrival: at,
                attempt: 0,
            }
        };
        let (template, attempt) = (p.template as u64, u64::from(p.attempt));
        tracer.emit(|| {
            TraceEvent::instant(
                Track::Core(core),
                TraceEventKind::OpArrival,
                at,
                template,
                attempt,
            )
        });
        if cs.queue.len() >= cfg.queue_capacity {
            stats.shed_queue_full += 1;
            account_txn_drop(cs, p.template, txn);
            tracer.emit(|| {
                TraceEvent::instant(
                    Track::Core(core),
                    TraceEventKind::OpShedQueueFull,
                    at,
                    template,
                    0,
                )
            });
            degrade.observe(at, true, cs.queue.len(), stats, tracer);
        } else {
            cs.queue.push_back(p);
            stats.admitted += 1;
            stats.max_queue_depth = stats.max_queue_depth.max(cs.queue.len() as u64);
            let depth = cs.queue.len() as u64;
            tracer.emit(|| {
                TraceEvent::instant(
                    Track::Core(core),
                    TraceEventKind::OpAdmitted,
                    at,
                    template,
                    depth,
                )
            });
            degrade.observe(at, false, cs.queue.len(), stats, tracer);
        }
    }
}

/// Converts the just-pushed closed-loop [`OpOutcome`](crate::OpOutcome)
/// into an [`OpenLoopOutcome`] for the in-flight submission.
///
/// A conflict-aborted transaction counts as *completed* service (the
/// attempt occupied the core and its outcome is recorded) but, attempts
/// permitting, its submission is rescheduled through the admission queue
/// with the same exponential backoff as client timeouts — re-entering as
/// a retry, so the overload identities keep holding.
fn finish_op(cs: &mut CoreState<'_, '_>, cfg: &AdmissionConfig, stats: &mut OverloadStats) {
    let inflight = cs.inflight.take().expect("an op was in flight");
    let out = cs.st.outcomes.pop().expect("the op pushed its outcome");
    stats.completed += 1;
    cs.outcomes.push(OpenLoopOutcome {
        template: inflight.pending.template,
        kind: out.kind,
        arrival: inflight.pending.arrival,
        start: out.start,
        end: out.end,
        rows: out.rows,
        attempt: inflight.pending.attempt,
        degraded: inflight.degraded,
    });
    if out.kind == OpKind::TxnAbortConflict && inflight.pending.attempt < cfg.max_retries {
        let backoff = cfg
            .retry_backoff
            .scaled(1u64 << inflight.pending.attempt.min(20));
        cs.schedule_retry(Pending {
            template: inflight.pending.template,
            arrival: cs.st.now + backoff,
            attempt: inflight.pending.attempt + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_gaps_are_deterministic_positive_and_mean_reverting() {
        let mut a = ArrivalProcess::poisson(1e6, 42);
        let mut b = ArrivalProcess::poisson(1e6, 42);
        let mut sum = SimTime::ZERO;
        for _ in 0..10_000 {
            let g = a.next_gap();
            assert_eq!(g, b.next_gap());
            assert!(g > SimTime::ZERO);
            sum += g;
        }
        // Mean gap of a 1M ops/s process is 1 µs; 10k samples put the
        // sample mean within a few percent of it.
        let mean_ns = sum.as_nanos_f64() / 10_000.0;
        assert!(
            (mean_ns - 1_000.0).abs() < 50.0,
            "mean gap {mean_ns} ns is not close to 1000 ns"
        );
        let mut c = ArrivalProcess::poisson(1e6, 43);
        assert_ne!(a.next_gap(), c.next_gap());
    }

    #[test]
    fn degradation_hysteresis_triggers_and_clears() {
        let mut stats = OverloadStats::default();
        let mut st = DegradeState::new(Some(DegradePolicy {
            high_watermark: 4,
            low_watermark: 1,
            trigger_after: 2,
            clear_after: 3,
        }));
        let mut tr = Tracer::new();
        // One pressure observation is not enough.
        st.observe(SimTime::from_nanos(1), true, 0, &mut stats, &mut tr);
        assert!(!st.degraded);
        // A calm observation in between resets the run.
        st.observe(SimTime::from_nanos(2), false, 0, &mut stats, &mut tr);
        st.observe(SimTime::from_nanos(3), false, 5, &mut stats, &mut tr);
        assert!(!st.degraded);
        st.observe(SimTime::from_nanos(4), true, 0, &mut stats, &mut tr);
        assert!(st.degraded, "two consecutive pressure events degrade");
        // Three consecutive calm observations clear it; a depth between
        // the watermarks counts as neither.
        st.observe(SimTime::from_nanos(5), false, 0, &mut stats, &mut tr);
        st.observe(SimTime::from_nanos(6), false, 2, &mut stats, &mut tr);
        st.observe(SimTime::from_nanos(7), false, 0, &mut stats, &mut tr);
        st.observe(SimTime::from_nanos(8), false, 1, &mut stats, &mut tr);
        assert!(st.degraded);
        st.observe(SimTime::from_nanos(9), false, 0, &mut stats, &mut tr);
        assert!(!st.degraded, "three consecutive calm events restore");
        assert_eq!(
            stats.transitions,
            vec![
                DegradeTransition {
                    at: SimTime::from_nanos(4),
                    degraded: true
                },
                DegradeTransition {
                    at: SimTime::from_nanos(9),
                    degraded: false
                },
            ]
        );
    }

    #[test]
    fn no_policy_never_degrades() {
        let mut stats = OverloadStats::default();
        let mut st = DegradeState::new(None);
        let mut tr = Tracer::new();
        for i in 0..100 {
            st.observe(SimTime::from_nanos(i), true, 1_000, &mut stats, &mut tr);
        }
        assert!(!st.degraded);
        assert!(stats.transitions.is_empty());
    }
}
