//! Multi-row transactions through the timing model.
//!
//! [`WorkloadOp::Txn`](crate::workload::WorkloadOp::Txn) groups point
//! reads, in-place updates, appends and deletes — over one or more tables
//! — into an atomic unit with MVCC first-updater-wins conflict detection.
//! Transactions run *inside* the simulated platform: every header probe,
//! intent check, commit stamp and published row is charged as real cache
//! and DRAM traffic on the issuing core, contending with concurrent OLAP
//! scans exactly like the flat point ops of
//! [`run_workload`](crate::System::run_workload).
//!
//! # Execution model
//!
//! A [`TxnSpec`] executes in three phases, each phase advancing the
//! stream's clock through the normal min-clock interleaver:
//!
//! 1. **Begin** (zero time, like [`WorkloadOp::TakeSnapshot`](crate::workload::WorkloadOp::TakeSnapshot)): the
//!    transaction receives an id and becomes the stream's active
//!    transaction.
//! 2. **Execute**, one [`TxnOp`] per scheduler unit. [`TxnOp::Read`] runs
//!    the exact point-lookup data path (optionally under the spec's
//!    [`read_ts`](TxnSpec::read_ts) snapshot). Write ops buffer a *write
//!    intent*: [`TxnOp::Update`] and [`TxnOp::Delete`] claim their
//!    `(table, row)` key in a global intent table — on an MVCC table the
//!    claim pays one 16-byte header access plus the visibility-check CPU
//!    cost — and [`TxnOp::Insert`] just buffers (the row does not exist
//!    yet, so there is nothing to claim). Intents are not visible to the
//!    transaction's own reads (no read-your-own-writes).
//! 3. **Commit**, one final unit: inserts are capacity-checked (a full
//!    table aborts the transaction as *shed*, publishing nothing), then
//!    every intent is applied — updates run the exact in-place
//!    point-update body, deletes end the version at the commit timestamp,
//!    inserts append and publish whole rows (touching fresh lines, so
//!    they exhibit cold-miss behaviour). On MVCC tables each commit stamp
//!    and each published row additionally issues an **explicit DRAM
//!    write** ([`ReqKind::Write`](relmem_dram::ReqKind::Write)) forcing
//!    the version header to memory. Commit durability is deliberately
//!    *synchronous* — a commit is not observable until its write is
//!    ordered — so these writes bypass the event-driven write buffer and
//!    always exercise the cycle-accurate model's tWR/tWTR constraints.
//!    (Dirty-eviction writebacks are the other CPU-side write source,
//!    emitted asynchronously on the event-driven cycle-accurate path.)
//!
//! # Conflicts
//!
//! The intent table implements **first-updater-wins**: the first live
//! transaction to claim a `(table, row)` key holds it until commit or
//! abort; a later transaction claiming the same key aborts itself
//! deterministically ([`OpKind::TxnAbortConflict`]), releasing its own
//! claims. Charges already paid stay paid — a wasted attempt costs real
//! simulated time, which is the point. Closed-loop streams re-run an
//! aborted transaction in place up to [`TxnSpec::retries`] times (each
//! attempt counts in [`TxnStats::begun`]); open-loop traffic instead
//! reschedules the aborted submission through the admission queue with
//! the same exponential backoff as client timeouts, up to
//! [`AdmissionConfig::max_retries`](crate::AdmissionConfig::max_retries).
//!
//! MVCC updates restamp the row's header to begin at the commit
//! timestamp. This models the version handoff without allocating a new
//! row: the pre-commit version is no longer reachable (the simulator
//! keeps one version per slot), which is the same approximation the flat
//! [`WorkloadOp::PointUpdate`](crate::workload::WorkloadOp::PointUpdate)
//! makes.
//!
//! # Accounting
//!
//! [`TxnStats`] satisfies, at the end of every run:
//!
//! ```text
//! begun == committed + aborted_conflict + aborted_shed
//! ```
//!
//! Open-loop submissions that never reach execution (rejected at a full
//! queue, shed past the delay budget, or abandoned by their final
//! timeout) count as `begun` *and* `aborted_shed`, so the identity holds
//! across both drivers. A timed-out attempt with retries remaining is
//! not accounted — its retry will be.

use std::collections::HashMap;

use relmem_dram::{MemRequest, Requestor};
use relmem_sim::{SimTime, TraceEvent, TraceEventKind, Track, TxnStats};
use relmem_storage::mvcc::encode_header;
use relmem_storage::{ColumnarTable, Row, RowTable, Snapshot, Timestamp, Value};

use crate::system::{DramBackend, RowEffect, System};
use crate::workload::{OpKind, OpOutcome, StreamState};

/// First commit timestamp a run hands out. Far above any timestamp the
/// workloads use for data generation or snapshots, so commit-stamped
/// versions are ordered after all pre-existing ones.
pub const TXN_TS_BASE: Timestamp = 1 << 32;

/// One operation inside a transaction.
///
/// Like [`WorkloadOp`](crate::workload::WorkloadOp), ops hold only shared
/// references and copyable payloads, so they are `Copy`.
#[derive(Clone, Copy)]
pub enum TxnOp<'a> {
    /// A point read of the named columns of one row, on the exact
    /// point-lookup data path (MVCC visibility under the spec's
    /// [`read_ts`](TxnSpec::read_ts), or the stream's current snapshot).
    Read {
        /// The row-major base table.
        table: &'a RowTable,
        /// Column indices to read.
        columns: &'a [usize],
        /// Row to read.
        row: u64,
    },
    /// An in-place update intent on one `UInt` field, applied at commit.
    Update {
        /// The row-major base table.
        table: &'a RowTable,
        /// Row to update.
        row: u64,
        /// Column to overwrite (must be a `UInt` column).
        column: usize,
        /// New value (masked to the column width).
        value: u64,
    },
    /// An append intent: one value per column of the table's schema,
    /// published (and made visible from the commit timestamp) at commit.
    Insert {
        /// The row-major base table to extend.
        table: &'a RowTable,
        /// A materialised columnar copy to extend in the same commit
        /// (must have append headroom — see
        /// [`ColumnarTable::materialize_with_capacity`]).
        columnar: Option<&'a ColumnarTable>,
        /// One value per schema column, in schema order.
        values: &'a [u64],
    },
    /// A delete intent: ends the row's version at the commit timestamp
    /// (requires an MVCC table).
    Delete {
        /// The row-major base table.
        table: &'a RowTable,
        /// Row to delete.
        row: u64,
    },
}

/// A transaction template: ops executed in order, write intents applied
/// atomically at commit.
pub struct TxnSpec<'a> {
    /// The ops, executed front to back (reads immediately, writes as
    /// buffered intents).
    pub ops: Vec<TxnOp<'a>>,
    /// Snapshot timestamp the transaction's reads run under. `None`
    /// reads under the stream's current snapshot, exactly like a flat
    /// [`WorkloadOp::PointLookup`](crate::workload::WorkloadOp::PointLookup).
    pub read_ts: Option<Timestamp>,
    /// In-place re-runs after a conflict abort (closed-loop driver only;
    /// open-loop traffic retries through the admission queue instead).
    pub retries: u32,
}

impl<'a> TxnSpec<'a> {
    /// A transaction over `ops` with no snapshot override and no retries.
    pub fn new(ops: Vec<TxnOp<'a>>) -> Self {
        TxnSpec {
            ops,
            read_ts: None,
            retries: 0,
        }
    }

    /// Reads run under a snapshot at `ts` (builder style).
    pub fn with_read_ts(mut self, ts: Timestamp) -> Self {
        self.read_ts = Some(ts);
        self
    }

    /// Re-run up to `retries` times after a conflict abort (builder
    /// style, closed-loop driver only).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

/// One recorded abort victim, for deterministic-replay assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnAbort {
    /// Core the victim ran on.
    pub core: usize,
    /// Op index (closed loop) or template index (open loop) of the
    /// transaction in its stream.
    pub op: usize,
    /// Which attempt aborted (0 = first submission).
    pub attempt: u32,
    /// Local time of the abort.
    pub at: SimTime,
}

/// Run-scoped transaction machinery owned by the [`System`]: the global
/// intent table, id/commit-timestamp allocators and the run's
/// [`TxnStats`]. Reset at the start of every workload / open-loop run.
#[derive(Debug)]
pub(crate) struct TxnRuntime {
    /// Live write-intent claims: `(table base address, row)` → txn id.
    claims: HashMap<(u64, u64), u64>,
    next_id: u64,
    next_commit_ts: Timestamp,
    /// Open-loop runs disable the closed-loop in-place retry (the
    /// admission queue owns rescheduling there).
    pub(crate) open_loop: bool,
    pub(crate) stats: TxnStats,
    pub(crate) aborts: Vec<TxnAbort>,
}

impl Default for TxnRuntime {
    fn default() -> Self {
        TxnRuntime {
            claims: HashMap::new(),
            next_id: 0,
            next_commit_ts: TXN_TS_BASE,
            open_loop: false,
            stats: TxnStats::default(),
            aborts: Vec::new(),
        }
    }
}

impl TxnRuntime {
    /// Clears all run-scoped state for a fresh run.
    pub(crate) fn reset(&mut self, open_loop: bool) {
        self.claims.clear();
        self.next_id = 0;
        self.next_commit_ts = TXN_TS_BASE;
        self.open_loop = open_loop;
        self.stats = TxnStats::default();
        self.aborts.clear();
    }
}

/// A stream's in-progress transaction.
pub(crate) struct ActiveTxn<'a> {
    spec: &'a TxnSpec<'a>,
    /// Op-index label for outcomes (template index under open loop).
    op_idx: usize,
    id: u64,
    attempt: u32,
    /// Next spec op to execute; `spec.ops.len()` means commit next.
    next: usize,
    /// Buffered write intents, in execution order.
    intents: Vec<TxnOp<'a>>,
    /// Intent-table keys this transaction holds.
    claimed: Vec<(u64, u64)>,
    start: SimTime,
    rows: u64,
}

impl System {
    /// Begins `spec` on a stream (zero simulated time — acquiring a
    /// transaction id is a counter increment): the transaction becomes
    /// the stream's active transaction and subsequent scheduler units
    /// execute one [`TxnOp`] (or the commit) each.
    pub(crate) fn begin_txn<'a>(
        &mut self,
        core: usize,
        st: &mut StreamState<'a, '_>,
        op_idx: usize,
        spec: &'a TxnSpec<'a>,
    ) {
        self.txn_rt.stats.begun += 1;
        let id = self.txn_rt.next_id;
        self.txn_rt.next_id += 1;
        let at = st.now;
        self.tracer.emit(|| {
            TraceEvent::instant(Track::Core(core as u32), TraceEventKind::TxnBegin, at, id, 0)
        });
        st.active_txn = Some(ActiveTxn {
            spec,
            op_idx,
            id,
            attempt: 0,
            next: 0,
            intents: Vec::new(),
            claimed: Vec::new(),
            start: st.now,
            rows: 0,
        });
    }

    /// Advances the stream's active transaction by one unit — one
    /// [`TxnOp`], or the commit once every op has executed. Returns
    /// `false` — and does nothing — if no transaction is active.
    pub(crate) fn step_txn_unit<F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        observer: &mut F,
    ) -> bool
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        // Take the transaction out so the point-op helpers can borrow the
        // stream state freely; put it back unless it finished.
        let Some(mut txn) = st.active_txn.take() else {
            return false;
        };
        if txn.next < txn.spec.ops.len() {
            let op = txn.spec.ops[txn.next];
            txn.next += 1;
            if self.execute_txn_op(core, st, &mut txn, op, observer) {
                st.active_txn = Some(txn);
            } else {
                self.abort_conflict(core, st, txn);
            }
        } else {
            self.commit_txn(core, st, txn, observer);
        }
        true
    }

    /// Executes one [`TxnOp`]: reads run immediately, writes claim and
    /// buffer their intent. Returns `false` on a write-write conflict
    /// (the caller aborts the transaction).
    fn execute_txn_op<'a, F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'a, '_>,
        txn: &mut ActiveTxn<'a>,
        op: TxnOp<'a>,
        observer: &mut F,
    ) -> bool
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        match op {
            TxnOp::Read {
                table,
                columns,
                row,
            } => {
                let saved = st.snapshot;
                if let Some(ts) = txn.spec.read_ts {
                    st.snapshot = Some(Snapshot::at(ts));
                }
                let out = self.point_lookup(core, st, txn.op_idx, table, columns, row, observer);
                if txn.spec.read_ts.is_some() {
                    st.snapshot = saved;
                }
                txn.rows += out.rows;
                true
            }
            TxnOp::Update { table, row, .. } | TxnOp::Delete { table, row } => {
                if table.mvcc().is_enabled() {
                    // The intent check reads the row's version header.
                    let front = &mut self.cores[core];
                    let mut backend = DramBackend {
                        dram: &mut self.dram,
                        line_bytes: self.cfg.l1.line_bytes,
                        core,
                    };
                    let out =
                        front.access(table.row_addr(row), 16, st.now, &mut self.l2, &mut backend);
                    st.now = out.completion + self.cost.visibility();
                    st.cpu += self.cost.visibility();
                }
                let key = (table.base_addr(), row);
                match self.txn_rt.claims.get(&key) {
                    Some(&holder) if holder != txn.id => return false,
                    Some(_) => {}
                    None => {
                        self.txn_rt.claims.insert(key, txn.id);
                        txn.claimed.push(key);
                    }
                }
                txn.intents.push(op);
                true
            }
            TxnOp::Insert { .. } => {
                // Nothing to claim: the row does not exist until commit.
                txn.intents.push(op);
                true
            }
        }
    }

    /// Aborts a transaction on a write-write conflict, releasing its
    /// claims. Closed-loop streams with retry budget re-run in place as a
    /// fresh attempt.
    fn abort_conflict<'a>(
        &mut self,
        core: usize,
        st: &mut StreamState<'a, '_>,
        mut txn: ActiveTxn<'a>,
    ) {
        for key in txn.claimed.drain(..) {
            self.txn_rt.claims.remove(&key);
        }
        self.txn_rt.stats.aborted_conflict += 1;
        self.txn_rt.aborts.push(TxnAbort {
            core,
            op: txn.op_idx,
            attempt: txn.attempt,
            at: st.now,
        });
        let (id, at) = (txn.id, st.now);
        self.tracer.emit(|| {
            TraceEvent::instant(Track::Core(core as u32), TraceEventKind::TxnAbort, at, id, 0)
        });
        let outcome = OpOutcome {
            op: txn.op_idx,
            kind: OpKind::TxnAbortConflict,
            start: txn.start,
            end: st.now,
            rows: txn.rows,
        };
        self.emit_op_span(core, &outcome);
        st.outcomes.push(outcome);
        if !self.txn_rt.open_loop && txn.attempt < txn.spec.retries {
            // In-place retry: the stream immediately re-runs the
            // transaction from its first op as a fresh attempt. Charges
            // the aborted attempt paid stay paid.
            self.txn_rt.stats.begun += 1;
            txn.attempt += 1;
            txn.id = self.txn_rt.next_id;
            self.txn_rt.next_id += 1;
            txn.next = 0;
            txn.intents.clear();
            txn.start = st.now;
            txn.rows = 0;
            let (id, attempt, at) = (txn.id, u64::from(txn.attempt), st.now);
            self.tracer.emit(|| {
                TraceEvent::instant(
                    Track::Core(core as u32),
                    TraceEventKind::TxnBegin,
                    at,
                    id,
                    attempt,
                )
            });
            st.active_txn = Some(txn);
        }
    }

    /// Commits a transaction: capacity-checks every insert (a full table
    /// sheds the whole transaction, publishing nothing), then applies
    /// every intent and releases the claims.
    fn commit_txn<F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        mut txn: ActiveTxn<'_>,
        observer: &mut F,
    ) where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        // Capacity pre-check so the commit is all-or-nothing: project the
        // row count of every appended-to table (and columnar copy)
        // across *this* transaction's inserts.
        let mut projected: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut shed = false;
        for intent in &txn.intents {
            if let TxnOp::Insert {
                table, columnar, ..
            } = *intent
            {
                let e = projected
                    .entry(table.base_addr())
                    .or_insert((table.num_rows(), table.capacity_rows()));
                e.0 += 1;
                shed |= e.0 > e.1;
                if let Some(ct) = columnar {
                    let key = ct.column_base(0).expect("schemas have at least one column");
                    let e = projected
                        .entry(key)
                        .or_insert((ct.num_rows(), ct.capacity_rows()));
                    e.0 += 1;
                    shed |= e.0 > e.1;
                }
            }
        }
        if shed {
            for key in txn.claimed.drain(..) {
                self.txn_rt.claims.remove(&key);
            }
            self.txn_rt.stats.aborted_shed += 1;
            self.txn_rt.aborts.push(TxnAbort {
                core,
                op: txn.op_idx,
                attempt: txn.attempt,
                at: st.now,
            });
            let (id, at) = (txn.id, st.now);
            self.tracer.emit(|| {
                TraceEvent::instant(Track::Core(core as u32), TraceEventKind::TxnAbort, at, id, 1)
            });
            let outcome = OpOutcome {
                op: txn.op_idx,
                kind: OpKind::TxnAbortShed,
                start: txn.start,
                end: st.now,
                rows: txn.rows,
            };
            self.emit_op_span(core, &outcome);
            st.outcomes.push(outcome);
            return;
        }

        let cts = self.txn_rt.next_commit_ts;
        self.txn_rt.next_commit_ts += 1;
        let intents = std::mem::take(&mut txn.intents);
        let num_intents = intents.len() as u64;
        for intent in intents {
            match intent {
                TxnOp::Update {
                    table,
                    row,
                    column,
                    value,
                } => {
                    // The exact in-place point-update body, charged at
                    // commit time...
                    let out =
                        self.point_update(core, st, txn.op_idx, table, row, column, value, observer);
                    txn.rows += out.rows;
                    // ...plus, on MVCC tables, the version handoff: the
                    // header is restamped to begin at the commit
                    // timestamp and forced to DRAM.
                    if table.mvcc().is_enabled() {
                        self.mem
                            .write(table.row_addr(row), &encode_header(cts, 0));
                        self.commit_stamp(core, st, table.row_addr(row));
                    }
                }
                TxnOp::Delete { table, row } => {
                    // The exact point-delete body (ending the version at
                    // the commit timestamp), plus the durability write.
                    let out = self.point_delete(core, st, txn.op_idx, table, row, cts);
                    txn.rows += out.rows;
                    self.commit_stamp(core, st, table.row_addr(row));
                }
                TxnOp::Insert {
                    table,
                    columnar,
                    values,
                } => {
                    self.publish_insert(core, st, table, columnar, values, cts);
                    self.txn_rt.stats.rows_inserted += 1;
                    txn.rows += 1;
                    st.rows += 1;
                }
                TxnOp::Read { .. } => unreachable!("reads are never buffered as intents"),
            }
        }
        for key in txn.claimed.drain(..) {
            self.txn_rt.claims.remove(&key);
        }
        self.txn_rt.stats.committed += 1;
        let (id, at) = (txn.id, st.now);
        self.tracer.emit(|| {
            TraceEvent::instant(
                Track::Core(core as u32),
                TraceEventKind::TxnCommit,
                at,
                id,
                num_intents,
            )
        });
        let outcome = OpOutcome {
            op: txn.op_idx,
            kind: OpKind::TxnCommit,
            start: txn.start,
            end: st.now,
            rows: txn.rows,
        };
        self.emit_op_span(core, &outcome);
        st.outcomes.push(outcome);
    }

    /// Forces 16 bytes at `addr` (a version header) to DRAM: one cache
    /// write for the stamp itself plus an explicit, *synchronous* DRAM
    /// write request — durability means the commit is not observable
    /// before its write is ordered, so this never goes through the
    /// event-driven write buffer and the cycle-accurate model's tWR/tWTR
    /// constraints always bite on commits. (Dirty-eviction writebacks are
    /// the asynchronous counterpart, emitted only on the event-driven
    /// cycle-accurate path.)
    fn commit_stamp(&mut self, core: usize, st: &mut StreamState<'_, '_>, addr: u64) {
        let front = &mut self.cores[core];
        let mut backend = DramBackend {
            dram: &mut self.dram,
            line_bytes: self.cfg.l1.line_bytes,
            core,
        };
        let out = front.write(addr, 16, st.now, &mut self.l2, &mut backend);
        st.now = out.completion;
        let done = self.dram.access(
            MemRequest::new(addr, 16, st.now)
                .with_requestor(Requestor::Core(core))
                .as_write(),
        );
        st.now = done.finish;
    }

    /// Publishes one inserted row: appends to the row table (visible from
    /// the commit timestamp), writes the fresh physical bytes through the
    /// cache (cold lines — nothing has ever touched them) and forces them
    /// to DRAM, then does the same per column of the optional columnar
    /// copy.
    fn publish_insert(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        table: &RowTable,
        columnar: Option<&ColumnarTable>,
        values: &[u64],
        cts: Timestamp,
    ) {
        let idx = table
            .append(&mut self.mem, &Row::from_u64s(values), cts)
            .expect("capacity pre-checked at commit");
        let addr = table.row_addr(idx);
        let bytes = table.physical_row_bytes();
        {
            let front = &mut self.cores[core];
            let mut backend = DramBackend {
                dram: &mut self.dram,
                line_bytes: self.cfg.l1.line_bytes,
                core,
            };
            let out = front.write(addr, bytes, st.now, &mut self.l2, &mut backend);
            st.now = out.completion;
        }
        let done = self.dram.access(
            MemRequest::new(addr, bytes, st.now)
                .with_requestor(Requestor::Core(core))
                .as_write(),
        );
        st.now = done.finish;
        let cpu = self.cost.fields(values.len());
        st.now += cpu;
        st.cpu += cpu;

        if let Some(ct) = columnar {
            let vals: Vec<Value> = values.iter().map(|&v| Value::UInt(v)).collect();
            let cidx = ct
                .append(&mut self.mem, &vals)
                .expect("capacity pre-checked at commit");
            for col in 0..ct.schema().num_columns() {
                let width = ct.schema().width(col).expect("valid column");
                let addr = ct.column_base(col).expect("valid column") + cidx * width as u64;
                {
                    let front = &mut self.cores[core];
                    let mut backend = DramBackend {
                        dram: &mut self.dram,
                        line_bytes: self.cfg.l1.line_bytes,
                        core,
                    };
                    let out = front.write(addr, width, st.now, &mut self.l2, &mut backend);
                    st.now = out.completion;
                }
                let done = self.dram.access(
                    MemRequest::new(addr, width, st.now)
                        .with_requestor(Requestor::Core(core))
                        .as_write(),
                );
                st.now = done.finish;
            }
        }
    }
}
