//! The Relational Memory Benchmark runner.
//!
//! [`Benchmark`] owns a [`System`] plus the relation(s) the benchmark
//! queries touch, and executes any of Q0–Q5 over any [`AccessPath`],
//! returning both the (cross-path identical) functional output and the
//! simulated measurement. The experiment harness in `relmem-bench` drives
//! this type for every figure of the paper.

use relmem_rme::HwRevision;
use relmem_sim::{PlatformConfig, SimTime};
use relmem_storage::{
    ColumnDef, ColumnGroup, ColumnType, ColumnarTable, DataGen, MvccConfig, RowTable, Schema,
    Snapshot,
};

use crate::access_path::AccessPath;
use crate::ephemeral::EphemeralVariable;
use crate::hashtbl::{checksum_accumulate, SimHashTable};
use crate::measure::{QueryOutput, QueryRun};
use crate::queries::{spread_columns, Query, Q2_THRESHOLD, Q3_THRESHOLD};
use crate::system::{RowEffect, ScanSource, System};

/// Parameters of one benchmark instance (one point of a figure sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkParams {
    /// Rows of the main relation `S` (the paper's default is 44 K).
    pub rows: u64,
    /// Row width in bytes (default 64).
    pub row_bytes: usize,
    /// Width of each data column in bytes (default 4).
    pub column_width: usize,
    /// Byte offset of the single target column within the row. `None` uses
    /// the natural multi-column layout; `Some(o)` builds the Figure 6 layout
    /// (padding, one target column at offset `o`, padding).
    pub target_offset: Option<usize>,
    /// Rows of the join relation `R` (Q5).
    pub inner_rows: u64,
    /// Fraction of `R` rows with a join partner in `S` (Q5, default 0.5).
    pub match_fraction: f64,
    /// RNG seed for data generation.
    pub seed: u64,
    /// RME hardware revision to model.
    pub revision: HwRevision,
}

impl Default for BenchmarkParams {
    fn default() -> Self {
        BenchmarkParams {
            rows: 44_000,
            row_bytes: 64,
            column_width: 4,
            target_offset: None,
            inner_rows: 44_000,
            match_fraction: 0.5,
            seed: 42,
            revision: HwRevision::Mlp,
        }
    }
}

impl BenchmarkParams {
    /// A scaled-down configuration for unit tests.
    pub fn small_for_tests() -> Self {
        BenchmarkParams {
            rows: 2_000,
            inner_rows: 2_000,
            ..BenchmarkParams::default()
        }
    }

    /// Number of data columns in the main relation's schema.
    pub fn data_columns(&self) -> usize {
        match self.target_offset {
            Some(_) => 1,
            None => self.row_bytes / self.column_width,
        }
    }

    /// Physical memory needed to hold both relations, their columnar copies
    /// and scratch space.
    fn mem_bytes(&self) -> usize {
        let main = self.rows as usize * (self.row_bytes + 16);
        let inner = self.inner_rows as usize * (self.row_bytes + 16);
        (main + inner) * 2 + (16 << 20)
    }
}

/// The benchmark runner.
pub struct Benchmark {
    params: BenchmarkParams,
    system: System,
    table: RowTable,
    columnar: Option<ColumnarTable>,
    inner: Option<RowTable>,
    inner_columnar: Option<ColumnarTable>,
    /// Column index of `A1` (differs from 0 only in the Figure 6 layout).
    target_col: usize,
    hash_region: Option<u64>,
    group_region: Option<u64>,
}

/// Which relation a scan runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Outer,
    Inner,
}

/// A prepared (path-specific) source description.
enum Prepared {
    Rows(Vec<usize>),
    Columnar(Vec<usize>),
    Ephemeral(EphemeralVariable),
}

impl Benchmark {
    /// Builds the benchmark: allocates the platform, creates and populates
    /// the main relation `S`.
    pub fn new(params: BenchmarkParams) -> Self {
        Benchmark::with_platform(params, PlatformConfig::zcu102())
    }

    /// Builds the benchmark on a custom platform configuration (used by the
    /// ablation benches).
    pub fn with_platform(params: BenchmarkParams, cfg: PlatformConfig) -> Self {
        let mut system = System::new(cfg, params.revision, params.mem_bytes());
        let schema = Self::schema_for(&params);
        let target_col = match params.target_offset {
            Some(0) | None => 0,
            Some(_) => 1,
        };
        let mut table = system
            .create_table(schema, params.rows, MvccConfig::Disabled)
            .expect("main relation fits in memory");
        DataGen::new(params.seed)
            .fill_table(system.mem_mut(), &mut table, params.rows)
            .expect("data generation succeeds");
        Benchmark {
            params,
            system,
            table,
            columnar: None,
            inner: None,
            inner_columnar: None,
            target_col,
            hash_region: None,
            group_region: None,
        }
    }

    /// The parameters this benchmark was built with.
    pub fn params(&self) -> &BenchmarkParams {
        &self.params
    }

    /// The underlying system (for inspecting configuration and stats).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The main relation.
    pub fn table(&self) -> &RowTable {
        &self.table
    }

    fn schema_for(params: &BenchmarkParams) -> Schema {
        match params.target_offset {
            None | Some(0) => Schema::benchmark(
                params.data_columns(),
                params.column_width,
                params.row_bytes,
            ),
            Some(offset) => {
                assert!(
                    offset + params.column_width <= params.row_bytes,
                    "target column does not fit in the row"
                );
                let mut defs = vec![ColumnDef::new("pad_head", ColumnType::Bytes(offset))];
                let ty = if params.column_width <= 8 {
                    ColumnType::UInt(params.column_width)
                } else {
                    ColumnType::Bytes(params.column_width)
                };
                defs.push(ColumnDef::new("A1", ty));
                let used = offset + params.column_width;
                if used < params.row_bytes {
                    defs.push(ColumnDef::new(
                        "pad_tail",
                        ColumnType::Bytes(params.row_bytes - used),
                    ));
                }
                Schema::new(defs).expect("figure-6 schema is valid")
            }
        }
    }

    /// Runs `query` over `path`.
    pub fn run(&mut self, query: Query, path: AccessPath) -> QueryRun {
        assert!(
            query.min_columns() <= self.params.data_columns(),
            "{} needs {} data columns but the relation has {}",
            query.label(),
            query.min_columns(),
            self.params.data_columns()
        );
        match query {
            Query::Q0 => self.q0(path),
            Query::Q1 { projectivity } => self.q1(projectivity, path),
            Query::Q2 => self.q2(path),
            Query::Q3 => self.q3(path),
            Query::Q4 => self.q4(path),
            Query::Q5 => self.q5(path),
        }
    }

    // ------------------------------------------------------------------
    // Individual queries
    // ------------------------------------------------------------------

    /// `SELECT SUM(A1) FROM S`.
    fn q0(&mut self, path: AccessPath) -> QueryRun {
        let cols = vec![self.target_col];
        let prepared = self.prepare(path, &cols, Relation::Outer, None);
        self.system.begin_measurement(path);
        let agg = self.system.cost_model().aggregate();
        let mut sum = 0u64;
        let src = scan_source(&prepared, &self.table, self.columnar.as_ref(), None);
        let (end, cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            sum = sum.wrapping_add(v[0]);
            RowEffect { cpu: agg, touch: None }
        });
        self.finish(path, QueryOutput::Scalar(sum), end, cpu)
    }

    /// `SELECT A1..Ak FROM S`.
    fn q1(&mut self, projectivity: usize, path: AccessPath) -> QueryRun {
        let cols = spread_columns(projectivity, self.params.data_columns());
        let prepared = self.prepare(path, &cols, Relation::Outer, None);
        self.system.begin_measurement(path);
        let out_cost = self.system.cost_model().output(projectivity);
        let mut checksum = 0u64;
        let mut rows = 0u64;
        let src = scan_source(&prepared, &self.table, self.columnar.as_ref(), None);
        let (end, cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            checksum = checksum_accumulate(checksum, v);
            rows += 1;
            RowEffect { cpu: out_cost, touch: None }
        });
        self.finish(path, QueryOutput::Set { rows, checksum }, end, cpu)
    }

    /// `SELECT A1 FROM S WHERE A3 > k` (~90 % selectivity).
    fn q2(&mut self, path: AccessPath) -> QueryRun {
        let cols = vec![0, 2];
        let prepared = self.prepare(path, &cols, Relation::Outer, None);
        self.system.begin_measurement(path);
        let cost = *self.system.cost_model();
        let mut checksum = 0u64;
        let mut rows = 0u64;
        let src = scan_source(&prepared, &self.table, self.columnar.as_ref(), None);
        let (end, cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            let mut extra = cost.predicate();
            if v[1] > Q2_THRESHOLD {
                checksum = checksum_accumulate(checksum, &[v[0]]);
                rows += 1;
                extra += cost.output(1);
            }
            RowEffect { cpu: extra, touch: None }
        });
        self.finish(path, QueryOutput::Set { rows, checksum }, end, cpu)
    }

    /// `SELECT SUM(A2) FROM S WHERE A4 < k` (<10 % selectivity).
    fn q3(&mut self, path: AccessPath) -> QueryRun {
        let cols = vec![1, 3];
        let prepared = self.prepare(path, &cols, Relation::Outer, None);
        self.system.begin_measurement(path);
        let cost = *self.system.cost_model();
        let mut sum = 0u64;
        let src = scan_source(&prepared, &self.table, self.columnar.as_ref(), None);
        let (end, cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            let mut extra = cost.predicate();
            if v[1] < Q3_THRESHOLD {
                sum = sum.wrapping_add(v[0]);
                extra += cost.aggregate();
            }
            RowEffect { cpu: extra, touch: None }
        });
        self.finish(path, QueryOutput::Scalar(sum), end, cpu)
    }

    /// `SELECT AVG(A1) FROM S WHERE A3 < k GROUP BY A2`.
    fn q4(&mut self, path: AccessPath) -> QueryRun {
        let cols = vec![0, 1, 2];
        let prepared = self.prepare(path, &cols, Relation::Outer, None);
        let group_region = self.ensure_group_region();
        self.system.begin_measurement(path);
        let cost = *self.system.cost_model();
        // The group-by hash table (≤ VALUE_RANGE entries) fits comfortably in
        // the caches, so its maintenance is charged as CPU work; `group_region`
        // documents where it would live.
        let _ = SimHashTable::new(group_region, relmem_storage::datagen::VALUE_RANGE);
        let mut sums: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
        let src = scan_source(&prepared, &self.table, self.columnar.as_ref(), None);
        let (end, cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            let mut extra = cost.predicate();
            if v[2] < Q3_THRESHOLD {
                let entry = sums.entry(v[1]).or_insert((0, 0));
                entry.0 = entry.0.wrapping_add(v[0]);
                entry.1 += 1;
                extra += cost.group_by();
            }
            RowEffect { cpu: extra, touch: None }
        });
        let mut checksum = 0u64;
        for (&key, &(sum, count)) in &sums {
            let avg = sum.checked_div(count).unwrap_or(0);
            checksum = checksum_accumulate(checksum, &[key, avg]);
        }
        let output = QueryOutput::Set {
            rows: sums.len() as u64,
            checksum,
        };
        self.finish(path, output, end, cpu)
    }

    /// `SELECT S.A1, R.A3 FROM S JOIN R ON S.A2 = R.A2`, single-pass hash
    /// join: build on `S`, probe with `R`.
    fn q5(&mut self, path: AccessPath) -> QueryRun {
        self.ensure_inner();
        let hash_region = self.ensure_hash_region();

        // The Reorganization Buffer cannot hold two relations' projections
        // at once, so the join is always a "cold" RME run.
        let path = if path == AccessPath::RmeHot {
            AccessPath::RmeCold
        } else {
            path
        };

        // Build side: S.A1 (payload) and S.A2 (key).
        let build_cols = vec![0, 1];
        let prepared_build = self.prepare(path, &build_cols, Relation::Outer, None);
        self.system.begin_measurement(path);
        let cost = *self.system.cost_model();
        // Hash-table maintenance is charged as CPU work (the build/probe cost
        // constants include the average cache behaviour of a table this
        // size); the paper likewise observes that hashing is a CPU-dominated,
        // path-independent cost (Figure 12b).
        let mut hash = SimHashTable::new(hash_region, self.params.rows);
        let src = scan_source(&prepared_build, &self.table, self.columnar.as_ref(), None);
        let (build_end, build_cpu, _) = self.system.scan(&src, SimTime::ZERO, |_, v| {
            hash.insert(v[1], v[0]);
            RowEffect {
                cpu: cost.hash_build(),
                touch: None,
            }
        });

        // Probe side: R.A2 (key) and R.A3 (output).
        let probe_cols = vec![1, 2];
        let prepared_probe = self.prepare(path, &probe_cols, Relation::Inner, None);
        let inner = self.inner.as_ref().expect("inner relation exists");
        let mut matches = 0u64;
        let mut checksum = 0u64;
        let src = scan_source(&prepared_probe, inner, self.inner_columnar.as_ref(), None);
        let (end, probe_cpu, _) = self.system.scan(&src, build_end, |_, v| {
            let mut extra = cost.hash_probe();
            for &s_a1 in hash.get(v[0]) {
                matches += 1;
                checksum = checksum_accumulate(checksum, &[s_a1, v[1]]);
                extra += cost.output(2);
            }
            RowEffect { cpu: extra, touch: None }
        });

        let output = QueryOutput::Set {
            rows: matches,
            checksum,
        };
        self.finish(path, output, end, build_cpu + probe_cpu)
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn prepare(
        &mut self,
        path: AccessPath,
        columns: &[usize],
        relation: Relation,
        snapshot: Option<Snapshot>,
    ) -> Prepared {
        match path {
            AccessPath::DirectRowWise => Prepared::Rows(columns.to_vec()),
            AccessPath::DirectColumnar => {
                self.ensure_columnar(relation);
                Prepared::Columnar(columns.to_vec())
            }
            AccessPath::RmeCold | AccessPath::RmeHot => {
                if relation == Relation::Inner {
                    self.ensure_inner();
                }
                let group = ColumnGroup::new(columns.to_vec()).expect("valid column group");
                let table = match relation {
                    Relation::Outer => &self.table,
                    Relation::Inner => self.inner.as_ref().expect("inner relation exists"),
                };
                let var = self
                    .system
                    .register_ephemeral(table, group, snapshot)
                    .expect("ephemeral registration succeeds");
                Prepared::Ephemeral(var)
            }
        }
    }

    fn ensure_columnar(&mut self, relation: Relation) {
        match relation {
            Relation::Outer => {
                if self.columnar.is_none() {
                    self.columnar = Some(
                        self.system
                            .materialize_columnar(&self.table)
                            .expect("columnar copy fits in memory"),
                    );
                }
            }
            Relation::Inner => {
                self.ensure_inner();
                if self.inner_columnar.is_none() {
                    let inner = self.inner.as_ref().expect("inner relation exists");
                    self.inner_columnar = Some(
                        self.system
                            .materialize_columnar(inner)
                            .expect("columnar copy fits in memory"),
                    );
                }
            }
        }
    }

    fn ensure_inner(&mut self) {
        if self.inner.is_some() {
            return;
        }
        let schema = Self::schema_for(&self.params);
        let mut inner = self
            .system
            .create_table(schema, self.params.inner_rows, MvccConfig::Disabled)
            .expect("inner relation fits in memory");
        DataGen::new(self.params.seed.wrapping_add(1))
            .fill_join_inner(
                self.system.mem_mut(),
                &mut inner,
                self.params.inner_rows,
                1,
                self.params.match_fraction,
            )
            .expect("join data generation succeeds");
        self.inner = Some(inner);
    }

    fn ensure_hash_region(&mut self) -> u64 {
        if let Some(base) = self.hash_region {
            return base;
        }
        let base = self
            .system
            .alloc_scratch(SimHashTable::region_bytes(self.params.rows));
        self.hash_region = Some(base);
        base
    }

    fn ensure_group_region(&mut self) -> u64 {
        if let Some(base) = self.group_region {
            return base;
        }
        let base = self
            .system
            .alloc_scratch(SimHashTable::region_bytes(relmem_storage::datagen::VALUE_RANGE));
        self.group_region = Some(base);
        base
    }

    fn finish(
        &self,
        path: AccessPath,
        output: QueryOutput,
        end: SimTime,
        cpu: SimTime,
    ) -> QueryRun {
        QueryRun {
            output,
            measurement: self.system.finish_measurement(end, cpu, path),
        }
    }
}

/// Builds a [`ScanSource`] from a prepared description and the relation's
/// storage objects. Free function so the caller can keep disjoint borrows of
/// the benchmark's fields.
fn scan_source<'a>(
    prepared: &'a Prepared,
    table: &'a RowTable,
    columnar: Option<&'a ColumnarTable>,
    snapshot: Option<Snapshot>,
) -> ScanSource<'a> {
    match prepared {
        Prepared::Rows(columns) => ScanSource::Rows {
            table,
            columns,
            snapshot,
        },
        Prepared::Columnar(columns) => ScanSource::Columnar {
            table: columnar.expect("columnar copy was materialised"),
            columns,
        },
        Prepared::Ephemeral(var) => ScanSource::Ephemeral { var },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> Benchmark {
        Benchmark::new(BenchmarkParams::small_for_tests())
    }

    #[test]
    fn every_query_gives_identical_results_on_every_path() {
        let mut b = bench();
        for query in Query::all() {
            let reference = b.run(query, AccessPath::DirectRowWise).output;
            for path in [
                AccessPath::DirectColumnar,
                AccessPath::RmeCold,
                AccessPath::RmeHot,
            ] {
                let run = b.run(query, path);
                assert_eq!(
                    run.output,
                    reference,
                    "{} produced a different result on {}",
                    query.label(),
                    path.label()
                );
            }
        }
    }

    #[test]
    fn q0_sum_matches_a_direct_computation() {
        let mut b = bench();
        let run = b.run(Query::Q0, AccessPath::DirectRowWise);
        let mut expected = 0u64;
        for row in 0..b.table().num_rows() {
            expected = expected.wrapping_add(
                b.table()
                    .read_field(b.system().mem(), row, 0)
                    .unwrap()
                    .as_u64(),
            );
        }
        assert_eq!(run.output, QueryOutput::Scalar(expected));
        assert!(run.measurement.elapsed > SimTime::ZERO);
    }

    #[test]
    fn q2_selectivity_is_about_ninety_percent() {
        let mut b = bench();
        let run = b.run(Query::Q2, AccessPath::DirectRowWise);
        let rows = run.output.cardinality() as f64 / b.params().rows as f64;
        assert!((rows - 0.9).abs() < 0.05, "selectivity was {rows}");
    }

    #[test]
    fn q5_join_finds_about_half_of_the_inner_rows() {
        let mut b = bench();
        let run = b.run(Query::Q5, AccessPath::DirectRowWise);
        // Every matching inner row joins with every S row sharing the key;
        // with |S| = 2000 rows over 1000 key values, each matching R row
        // joins ~2 S rows, so matches ≈ inner_rows * 0.5 * 2.
        let matches = run.output.cardinality() as f64;
        let expected = b.params().inner_rows as f64;
        assert!(
            matches > expected * 0.7 && matches < expected * 1.3,
            "match count {matches} far from expected ~{expected}"
        );
    }

    #[test]
    fn rme_beats_direct_row_wise_on_the_projection_query() {
        let mut b = bench();
        let row = b.run(Query::Q1 { projectivity: 3 }, AccessPath::DirectRowWise);
        let cold = b.run(Query::Q1 { projectivity: 3 }, AccessPath::RmeCold);
        let hot = b.run(Query::Q1 { projectivity: 3 }, AccessPath::RmeHot);
        assert!(
            cold.measurement.elapsed < row.measurement.elapsed,
            "RME cold {} vs direct {}",
            cold.measurement.elapsed,
            row.measurement.elapsed
        );
        assert!(hot.measurement.elapsed <= cold.measurement.elapsed);
    }

    #[test]
    fn figure6_layout_puts_the_target_column_at_the_requested_offset() {
        let params = BenchmarkParams {
            target_offset: Some(13),
            rows: 500,
            ..BenchmarkParams::default()
        };
        let mut b = Benchmark::new(params);
        assert_eq!(b.params().data_columns(), 1);
        let schema = b.table().schema();
        assert_eq!(schema.offset(1).unwrap(), 13);
        assert_eq!(schema.row_bytes(), 64);
        // Q0 still runs (it aggregates the single target column).
        let run = b.run(Query::Q0, AccessPath::RmeCold);
        assert!(run.measurement.elapsed > SimTime::ZERO);
        assert!(run.measurement.rme.useful_bytes >= 500 * 4);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn queries_that_need_more_columns_than_available_panic() {
        let params = BenchmarkParams {
            target_offset: Some(8),
            rows: 100,
            ..BenchmarkParams::default()
        };
        let mut b = Benchmark::new(params);
        let _ = b.run(Query::Q2, AccessPath::DirectRowWise);
    }
}
