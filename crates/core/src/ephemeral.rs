//! Ephemeral variables — the paper's software abstraction for Relational
//! Memory.
//!
//! Registering an ephemeral variable (`register_var(the_table, num_fld1,
//! num_fld3, num_fld4)` in Listing 4) picks a column group of a row-major
//! table, programs the RME's configuration port with the table's geometry
//! and returns a handle that behaves like a dense array of packed rows. The
//! variable is never materialised in main memory: reads of its address
//! range are intercepted and answered by the engine.

use relmem_storage::{ColumnGroup, RowTable, Schema, Snapshot, StorageError};

/// A registered ephemeral variable.
#[derive(Debug, Clone)]
pub struct EphemeralVariable {
    group: ColumnGroup,
    /// Base address of the (never materialised) packed alias range.
    base: u64,
    /// Bytes per packed row.
    packed_row_bytes: usize,
    /// Byte offset of each projected column within the packed row.
    packed_offsets: Vec<usize>,
    /// Width of each projected column.
    widths: Vec<usize>,
    /// Number of packed (visible) rows.
    rows: u64,
    /// The snapshot the variable was registered against, if any.
    snapshot: Option<Snapshot>,
}

impl EphemeralVariable {
    /// Builds the software-side description of an ephemeral variable. The
    /// hardware-side registration (configuration-port programming) is done
    /// by [`System::register_ephemeral`](crate::System::register_ephemeral),
    /// which calls this.
    pub fn describe(
        schema: &Schema,
        group: ColumnGroup,
        base: u64,
        visible_rows: u64,
        snapshot: Option<Snapshot>,
    ) -> Result<Self, StorageError> {
        let packed_row_bytes = group.packed_row_bytes(schema)?;
        let packed_offsets = group.packed_offsets(schema)?;
        let widths = group.widths(schema)?;
        Ok(EphemeralVariable {
            group,
            base,
            packed_row_bytes,
            packed_offsets,
            widths,
            rows: visible_rows,
            snapshot,
        })
    }

    /// The projected column group.
    pub fn group(&self) -> &ColumnGroup {
        &self.group
    }

    /// Base address of the alias range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Bytes per packed row.
    pub fn packed_row_bytes(&self) -> usize {
        self.packed_row_bytes
    }

    /// Number of packed rows visible through this variable.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of projected columns.
    pub fn num_columns(&self) -> usize {
        self.widths.len()
    }

    /// Width in bytes of projected column `j`.
    pub fn width(&self, j: usize) -> usize {
        self.widths[j]
    }

    /// The snapshot this variable reads at, if MVCC filtering is active.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.snapshot
    }

    /// Total bytes of the packed projection.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.packed_row_bytes as u64
    }

    /// Address of projected column `j` of packed row `i`.
    pub fn field_addr(&self, i: u64, j: usize) -> u64 {
        self.base + i * self.packed_row_bytes as u64 + self.packed_offsets[j] as u64
    }

    /// Counts the visible rows of `table` at `snapshot` — the software-side
    /// work `register_var` performs when the table is versioned.
    pub fn visible_rows(
        table: &RowTable,
        mem: &relmem_dram::PhysicalMemory,
        snapshot: Option<Snapshot>,
    ) -> Result<Option<Vec<u64>>, StorageError> {
        let Some(snap) = snapshot else {
            return Ok(None);
        };
        if !table.mvcc().is_enabled() {
            return Ok(None);
        }
        let mut rows = Vec::new();
        for row in 0..table.num_rows() {
            if table.visible(mem, row, snap)? {
                rows.push(row);
            }
        }
        Ok(Some(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmem_dram::PhysicalMemory;
    use relmem_storage::{DataGen, MvccConfig, Row};

    #[test]
    fn addresses_are_dense_and_packed() {
        let schema = Schema::listing1();
        let group = ColumnGroup::new(vec![5, 7, 8]).unwrap();
        let var = EphemeralVariable::describe(&schema, group, 0x1000, 100, None).unwrap();
        assert_eq!(var.packed_row_bytes(), 24);
        assert_eq!(var.total_bytes(), 2_400);
        assert_eq!(var.num_columns(), 3);
        assert_eq!(var.width(0), 8);
        assert_eq!(var.field_addr(0, 0), 0x1000);
        assert_eq!(var.field_addr(0, 2), 0x1000 + 16);
        assert_eq!(var.field_addr(2, 1), 0x1000 + 2 * 24 + 8);
        assert!(var.snapshot().is_none());
    }

    #[test]
    fn visible_rows_respects_snapshots() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let schema = Schema::benchmark(2, 8, 16);
        let mut table = RowTable::create(&mut mem, schema, 16, MvccConfig::Enabled).unwrap();
        DataGen::new(3).fill_table(&mut mem, &mut table, 10).unwrap();
        table.mark_deleted(&mut mem, 4, 5).unwrap();
        table
            .update(&mut mem, 7, &Row::from_u64s(&[9, 9]), 8)
            .unwrap();

        // No snapshot requested: no filtering.
        assert!(
            EphemeralVariable::visible_rows(&table, &mem, None)
                .unwrap()
                .is_none()
        );
        // Snapshot after the delete and the update: row 4 and the old row 7
        // are gone, the new version (row 10) is visible.
        let visible = EphemeralVariable::visible_rows(&table, &mem, Some(Snapshot::at(9)))
            .unwrap()
            .unwrap();
        assert!(!visible.contains(&4));
        assert!(!visible.contains(&7));
        assert!(visible.contains(&10));
        assert_eq!(visible.len(), 9);
        // Snapshot before any change sees the original ten rows only.
        let old = EphemeralVariable::visible_rows(&table, &mem, Some(Snapshot::at(1)))
            .unwrap()
            .unwrap();
        assert_eq!(old, (0..10).collect::<Vec<_>>());
    }
}
