//! Concurrent HTAP workload streams, one per core.
//!
//! The paper's headline claim is that the Relational Memory Engine lets
//! analytical projections run *beside* transactional row-wise traffic
//! without the two trashing each other's cache behaviour. The scan API can
//! only shard a single query across cores; this module models the actual
//! HTAP scenario: every core runs its own [`QueryStream`] of OLAP column
//! scans, OLTP point lookups and point updates/deletes against MVCC
//! snapshots, and the streams execute *concurrently in simulated time*,
//! contending on the shared L2 banks, the DRAM controller and the RME.
//!
//! # Scheduling
//!
//! [`System::run_workload`] reuses the deterministic min-clock interleaver
//! of [`System::scan_sharded`]: at every step the unfinished stream with
//! the smallest local clock (ties broken by lowest core index) advances by
//! one *unit* — one row of an in-progress OLAP scan, or one whole point
//! operation. Zero-time ops ([`WorkloadOp::TakeSnapshot`], starting a
//! scan, an empty scan) do not advance the clock. Like the sharded
//! scheduler it is frame-aware for ephemeral scans: streams whose next row
//! lies in the RME's resident frame are preferred, so concurrent scans of
//! a multi-frame variable stay frame-granular instead of thrashing the
//! Reorganization Buffer.
//!
//! A workload of **one stream holding one OLAP scan on a 1-core system is
//! counter-identical to [`System::scan`]** — same timestamps, values and
//! every cache/DRAM/RME counter — which `tests/cross_path_equivalence.rs`
//! asserts by proptest. The per-row body is literally the same code: the
//! crate-private `stepper::ScanJob` shared with `scan_sharded`.
//!
//! # Open-loop traffic
//!
//! [`System::run_open_loop`] drives the *same* per-unit machinery from
//! arrival processes instead of fixed per-core op lists: ops arrive in
//! simulated time independent of service completion, pass through bounded
//! admission queues with load shedding, timeout/retry and graceful
//! degradation. See the [`openloop`](crate::openloop) module.
//!
//! # Example
//!
//! ```
//! use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
//! use relmem_core::workload::{QueryStream, Workload, WorkloadOp};
//! use relmem_core::{AccessPath, System};
//! use relmem_sim::SimTime;
//! use relmem_storage::{DataGen, MvccConfig, Schema};
//!
//! let mut sys = System::with_config(SystemConfig { cores: 2, ..SystemConfig::default() });
//! let schema = Schema::benchmark(4, 4, 64);
//! let mut table = sys.create_table(schema, 5_000, MvccConfig::Disabled).unwrap();
//! DataGen::new(1).fill_table(sys.mem_mut(), &mut table, 5_000).unwrap();
//!
//! // Core 0: an analytical scan. Core 1: transactional point traffic.
//! let columns = [0usize];
//! let workload = Workload::new(vec![
//!     QueryStream::new(vec![WorkloadOp::olap(ScanSource::Rows {
//!         table: &table,
//!         columns: &columns,
//!         snapshot: None,
//!     })]),
//!     QueryStream::new(vec![
//!         WorkloadOp::PointLookup { table: &table, columns: &columns, row: 17 },
//!         WorkloadOp::PointUpdate { table: &table, row: 17, column: 0, value: 99 },
//!         WorkloadOp::PointLookup { table: &table, columns: &columns, row: 17 },
//!     ]),
//! ]);
//! sys.begin_measurement(AccessPath::DirectRowWise);
//! let run = sys
//!     .run_workload(&workload, SimTime::ZERO, |_core, _op, _row, _values| {
//!         RowEffect::default()
//!     })
//!     .expect("workload fits the system");
//! assert_eq!(run.streams.len(), 2);
//! assert_eq!(run.streams[0].ops[0].rows, 5_000);
//! assert_eq!(run.oltp_latencies().count(), 3);
//! ```

use std::fmt;

use relmem_cache::HierarchyStats;
use relmem_sim::{LatencyProfile, SimTime, TraceEvent, TraceEventKind, Track, TxnStats};
use relmem_storage::{ColumnType, RowTable, Snapshot, Timestamp, Value};

use crate::stepper::ScanJob;
use crate::system::{DramBackend, RowEffect, ScanSource, System};
use crate::txn::{ActiveTxn, TxnAbort, TxnOp, TxnSpec};

/// A workload (or open-loop traffic) configuration the system cannot run.
///
/// Every condition here used to be a panic (or an internal `expect`)
/// reachable from public configuration; [`System::run_workload`] and
/// [`System::run_open_loop`](crate::openloop) validate everything upfront
/// and return one of these instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// More streams than the system has cores (stream `i` runs on core
    /// `i`; there is no oversubscription model).
    TooManyStreams {
        /// Streams in the workload.
        streams: usize,
        /// Cores the system simulates.
        cores: usize,
    },
    /// A point op addresses a row outside its table.
    RowOutOfRange {
        /// Stream holding the op.
        stream: usize,
        /// Op index within the stream (template index for open-loop).
        op: usize,
        /// The offending row.
        row: u64,
        /// Rows the table holds.
        rows: u64,
    },
    /// An op names a column the schema does not have.
    ColumnOutOfRange {
        /// Stream holding the op.
        stream: usize,
        /// Op index within the stream.
        op: usize,
        /// The offending column index.
        column: usize,
        /// Columns in the schema.
        columns: usize,
    },
    /// A [`WorkloadOp::PointUpdate`] targets a non-`UInt` column.
    NonUIntUpdate {
        /// Stream holding the op.
        stream: usize,
        /// Op index within the stream.
        op: usize,
        /// The offending column index.
        column: usize,
    },
    /// A [`WorkloadOp::PointDelete`] targets a table without MVCC headers.
    MvccRequired {
        /// Stream holding the op.
        stream: usize,
        /// Op index within the stream.
        op: usize,
    },
    /// An open-loop stream's arrival rate is zero, negative or non-finite.
    InvalidArrivalRate {
        /// The offending stream.
        stream: usize,
    },
    /// An open-loop stream generates arrivals but has no ops to inject.
    EmptyTemplate {
        /// The offending stream.
        stream: usize,
    },
    /// A [`TxnOp::Insert`] carries a value that does not fit its column.
    InsertValueOverflow {
        /// Stream holding the op.
        stream: usize,
        /// Op index within the stream.
        op: usize,
        /// The overflowed column index.
        column: usize,
    },
    /// The admission queue capacity is zero (nothing could ever be
    /// admitted).
    ZeroQueueCapacity,
    /// A degradation policy's low watermark exceeds its high watermark.
    InvalidWatermarks {
        /// Queue depth that counts as pressure.
        high: usize,
        /// Queue depth that counts as calm.
        low: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkloadError::TooManyStreams { streams, cores } => write!(
                f,
                "workload has {streams} streams but the system only has {cores} cores"
            ),
            WorkloadError::RowOutOfRange {
                stream,
                op,
                row,
                rows,
            } => write!(
                f,
                "stream {stream} op {op} addresses row {row} of a {rows}-row table"
            ),
            WorkloadError::ColumnOutOfRange {
                stream,
                op,
                column,
                columns,
            } => write!(
                f,
                "stream {stream} op {op} names column {column} of a {columns}-column schema"
            ),
            WorkloadError::NonUIntUpdate { stream, op, column } => write!(
                f,
                "stream {stream} op {op} updates column {column}, which is not a UInt column"
            ),
            WorkloadError::MvccRequired { stream, op } => write!(
                f,
                "stream {stream} op {op} deletes from a table without MVCC headers"
            ),
            WorkloadError::InsertValueOverflow { stream, op, column } => write!(
                f,
                "stream {stream} op {op} inserts a value that overflows column {column}"
            ),
            WorkloadError::InvalidArrivalRate { stream } => write!(
                f,
                "open-loop stream {stream} needs a positive, finite arrival rate"
            ),
            WorkloadError::EmptyTemplate { stream } => write!(
                f,
                "open-loop stream {stream} generates arrivals but its op template is empty"
            ),
            WorkloadError::ZeroQueueCapacity => {
                write!(f, "admission queue capacity must be at least 1")
            }
            WorkloadError::InvalidWatermarks { high, low } => write!(
                f,
                "degradation low watermark {low} exceeds high watermark {high}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One operation of a per-core query stream.
///
/// Ops hold only shared references and copyable payloads, so they are
/// `Copy` — the open-loop driver re-injects the same template op for every
/// arrival.
#[derive(Clone, Copy)]
pub enum WorkloadOp<'a> {
    /// An analytical scan over any [`ScanSource`]. With `stream_snapshot`
    /// set and a row source, the scan reads under the stream's *current*
    /// snapshot (the latest [`TakeSnapshot`](WorkloadOp::TakeSnapshot))
    /// instead of the snapshot embedded in the source.
    OlapScan {
        /// What to scan.
        source: ScanSource<'a>,
        /// Replace a row source's snapshot with the stream's current one.
        stream_snapshot: bool,
    },
    /// A transactional point read of the named columns of one row. Checks
    /// MVCC visibility under the stream's current snapshot when the table
    /// is versioned and a snapshot was taken.
    PointLookup {
        /// The row-major base table.
        table: &'a RowTable,
        /// Column indices to read.
        columns: &'a [usize],
        /// Row to read.
        row: u64,
    },
    /// A transactional in-place update of one (unsigned-integer) field of
    /// the row-oriented base data.
    PointUpdate {
        /// The row-major base table.
        table: &'a RowTable,
        /// Row to update.
        row: u64,
        /// Column to overwrite (must be a `UInt` column).
        column: usize,
        /// New value (masked to the column width).
        value: u64,
    },
    /// A transactional delete: ends the row's current version at `ts`
    /// (requires an MVCC table).
    PointDelete {
        /// The row-major base table.
        table: &'a RowTable,
        /// Row to delete.
        row: u64,
        /// End timestamp of the version.
        ts: Timestamp,
    },
    /// Sets the stream's current snapshot to read at `ts`. Takes no
    /// simulated time — acquiring a read timestamp is a counter increment
    /// on real MVCC systems.
    TakeSnapshot {
        /// Read timestamp of the snapshot.
        ts: Timestamp,
    },
    /// A multi-row transaction: reads execute immediately, write intents
    /// buffer and apply atomically at commit under first-updater-wins
    /// conflict detection. See the [`txn`](crate::txn) module.
    Txn {
        /// The transaction template.
        spec: &'a TxnSpec<'a>,
    },
}

impl<'a> WorkloadOp<'a> {
    /// An OLAP scan using the snapshot embedded in the source (if any).
    pub fn olap(source: ScanSource<'a>) -> Self {
        WorkloadOp::OlapScan {
            source,
            stream_snapshot: false,
        }
    }

    /// Which [`OpKind`] this op reports as.
    pub fn kind(&self) -> OpKind {
        match self {
            WorkloadOp::OlapScan { .. } => OpKind::OlapScan,
            WorkloadOp::PointLookup { .. } => OpKind::PointLookup,
            WorkloadOp::PointUpdate { .. } => OpKind::PointUpdate,
            WorkloadOp::PointDelete { .. } => OpKind::PointDelete,
            WorkloadOp::TakeSnapshot { .. } => OpKind::TakeSnapshot,
            WorkloadOp::Txn { .. } => OpKind::TxnCommit,
        }
    }

    /// Checks the op against its tables' schemas: rows in range, columns
    /// present, updates target `UInt` columns, deletes require MVCC.
    /// `stream`/`op` only label the error. Running a validated op cannot
    /// hit the storage layer's internal error paths.
    pub(crate) fn validate(&self, stream: usize, op: usize) -> Result<(), WorkloadError> {
        let check_row = |table: &RowTable, row: u64| {
            if row >= table.num_rows() {
                Err(WorkloadError::RowOutOfRange {
                    stream,
                    op,
                    row,
                    rows: table.num_rows(),
                })
            } else {
                Ok(())
            }
        };
        let check_columns = |count: usize, columns: &[usize]| {
            for &column in columns {
                if column >= count {
                    return Err(WorkloadError::ColumnOutOfRange {
                        stream,
                        op,
                        column,
                        columns: count,
                    });
                }
            }
            Ok(())
        };
        match *self {
            WorkloadOp::OlapScan { source, .. } => match source {
                ScanSource::Rows { table, columns, .. } => {
                    check_columns(table.schema().num_columns(), columns)
                }
                ScanSource::Columnar { table, columns } => {
                    check_columns(table.schema().num_columns(), columns)
                }
                ScanSource::Ephemeral { .. } => Ok(()),
            },
            WorkloadOp::PointLookup {
                table,
                columns,
                row,
            } => {
                check_row(table, row)?;
                check_columns(table.schema().num_columns(), columns)
            }
            WorkloadOp::PointUpdate {
                table, row, column, ..
            } => {
                check_row(table, row)?;
                check_columns(table.schema().num_columns(), &[column])?;
                match table.schema().column(column) {
                    Ok(def) if matches!(def.ty, ColumnType::UInt(_)) => Ok(()),
                    _ => Err(WorkloadError::NonUIntUpdate { stream, op, column }),
                }
            }
            WorkloadOp::PointDelete { table, row, .. } => {
                check_row(table, row)?;
                if table.mvcc().is_enabled() {
                    Ok(())
                } else {
                    Err(WorkloadError::MvccRequired { stream, op })
                }
            }
            WorkloadOp::TakeSnapshot { .. } => Ok(()),
            WorkloadOp::Txn { spec } => {
                for top in &spec.ops {
                    match *top {
                        TxnOp::Read {
                            table,
                            columns,
                            row,
                        } => {
                            check_row(table, row)?;
                            check_columns(table.schema().num_columns(), columns)?;
                        }
                        TxnOp::Update {
                            table, row, column, ..
                        } => {
                            check_row(table, row)?;
                            check_columns(table.schema().num_columns(), &[column])?;
                            match table.schema().column(column) {
                                Ok(def) if matches!(def.ty, ColumnType::UInt(_)) => {}
                                _ => {
                                    return Err(WorkloadError::NonUIntUpdate { stream, op, column })
                                }
                            }
                        }
                        TxnOp::Delete { table, row } => {
                            check_row(table, row)?;
                            if !table.mvcc().is_enabled() {
                                return Err(WorkloadError::MvccRequired { stream, op });
                            }
                        }
                        TxnOp::Insert {
                            table,
                            columnar,
                            values,
                        } => {
                            let columns = table.schema().num_columns();
                            if values.len() != columns
                                || columnar
                                    .is_some_and(|ct| ct.schema().num_columns() != values.len())
                            {
                                return Err(WorkloadError::ColumnOutOfRange {
                                    stream,
                                    op,
                                    column: values.len(),
                                    columns,
                                });
                            }
                            for (column, &value) in values.iter().enumerate() {
                                let Ok(def) = table.schema().column(column) else {
                                    continue;
                                };
                                if !Value::UInt(value).compatible_with(def.ty) {
                                    return Err(WorkloadError::InsertValueOverflow {
                                        stream,
                                        op,
                                        column,
                                    });
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// One core's query stream: operations executed in order.
pub struct QueryStream<'a> {
    /// The operations, executed front to back.
    pub ops: Vec<WorkloadOp<'a>>,
}

impl<'a> QueryStream<'a> {
    /// A stream running `ops` in order.
    pub fn new(ops: Vec<WorkloadOp<'a>>) -> Self {
        QueryStream { ops }
    }

    /// A stream with no work (its core stays idle).
    pub fn empty() -> Self {
        QueryStream { ops: Vec::new() }
    }
}

/// A mixed workload: stream `i` runs on core `i`.
pub struct Workload<'a> {
    /// Per-core streams. May be shorter than the core count (the remaining
    /// cores idle) but never longer.
    pub streams: Vec<QueryStream<'a>>,
}

impl<'a> Workload<'a> {
    /// A workload of the given per-core streams.
    pub fn new(streams: Vec<QueryStream<'a>>) -> Self {
        Workload { streams }
    }
}

/// Classification of a finished operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Analytical scan.
    OlapScan,
    /// Transactional point read.
    PointLookup,
    /// Transactional in-place update.
    PointUpdate,
    /// Transactional delete.
    PointDelete,
    /// Snapshot acquisition (zero-time).
    TakeSnapshot,
    /// A multi-row transaction that committed.
    TxnCommit,
    /// A transaction that aborted on a write-write conflict
    /// (first-updater-wins).
    TxnAbortConflict,
    /// A transaction shed at commit (insert capacity exhausted) or — in
    /// open-loop accounting — dropped before execution.
    TxnAbortShed,
}

impl OpKind {
    /// Whether the op counts as OLTP for latency reporting. Aborted
    /// transactions are excluded — they never delivered a result, so
    /// their (shorter) latency would flatter the tail.
    pub fn is_oltp(&self) -> bool {
        matches!(
            self,
            OpKind::PointLookup | OpKind::PointUpdate | OpKind::PointDelete | OpKind::TxnCommit
        )
    }
}

/// One finished operation of a stream.
#[derive(Debug, Clone, Copy)]
pub struct OpOutcome {
    /// Index of the op in its stream.
    pub op: usize,
    /// What kind of op it was.
    pub kind: OpKind,
    /// Local time the op started.
    pub start: SimTime,
    /// Local time the op completed.
    pub end: SimTime,
    /// Rows processed (scan rows, or 1 / 0 for point ops depending on
    /// MVCC visibility).
    pub rows: u64,
}

impl OpOutcome {
    /// End-to-end latency of the op.
    pub fn latency(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// One stream's (= one core's) results.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The core the stream ran on.
    pub core: usize,
    /// Per-op outcomes, in stream order.
    pub ops: Vec<OpOutcome>,
    /// The stream's completion time.
    pub end: SimTime,
    /// CPU time the stream charged.
    pub cpu: SimTime,
    /// Rows the stream processed across all its ops.
    pub rows: u64,
    /// The core's cache counters for the whole measurement window,
    /// including its share of shared-L2 contention delay.
    pub cache: HierarchyStats,
}

/// Outcome of a [`System::run_workload`] call.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Completion of the slowest stream (the workload's makespan).
    pub end: SimTime,
    /// Total CPU time across streams.
    pub cpu: SimTime,
    /// Total rows processed across streams.
    pub rows: u64,
    /// Per-stream results, indexed by core.
    pub streams: Vec<StreamReport>,
    /// Transaction accounting for the run (all zero when the workload
    /// holds no [`WorkloadOp::Txn`] ops). Satisfies
    /// `begun == committed + aborted_conflict + aborted_shed`.
    pub txn: TxnStats,
    /// Every transaction abort of the run, in abort order — deterministic
    /// for a given workload and platform.
    pub txn_aborts: Vec<TxnAbort>,
}

impl WorkloadRun {
    /// Latency samples of every OLTP op (point lookups, updates, deletes)
    /// across all streams — feed into p50/p99 queries.
    pub fn oltp_latencies(&self) -> LatencyProfile {
        let mut profile = LatencyProfile::new();
        for stream in &self.streams {
            for op in &stream.ops {
                if op.kind.is_oltp() {
                    profile.push(op.latency());
                }
            }
        }
        profile
    }

    /// Total rows scanned by OLAP ops across all streams.
    pub fn olap_rows(&self) -> u64 {
        self.streams
            .iter()
            .flat_map(|s| s.ops.iter())
            .filter(|o| o.kind == OpKind::OlapScan)
            .map(|o| o.rows)
            .sum()
    }
}

/// A stream's in-progress OLAP scan.
pub(crate) struct ActiveScan<'a> {
    job: ScanJob<'a>,
    next_row: u64,
    rows_scanned: u64,
    op: usize,
    start: SimTime,
}

/// Per-stream scheduler state. Shared with the open-loop driver
/// ([`crate::openloop`]), which wraps one per core — the data path (clock,
/// CPU charge, snapshot, active scan) is identical in both modes.
pub(crate) struct StreamState<'a, 'w> {
    pub(crate) ops: &'w [WorkloadOp<'a>],
    /// Next op to start (ops before it are finished or active). The
    /// open-loop driver leaves this at 0 and feeds ops explicitly.
    pub(crate) next_op: usize,
    pub(crate) active: Option<ActiveScan<'a>>,
    /// The stream's in-progress transaction, if any (a stream runs at
    /// most one at a time; scans and transactions never overlap).
    pub(crate) active_txn: Option<ActiveTxn<'a>>,
    pub(crate) now: SimTime,
    pub(crate) cpu: SimTime,
    pub(crate) rows: u64,
    pub(crate) snapshot: Option<Snapshot>,
    pub(crate) values: Vec<u64>,
    pub(crate) outcomes: Vec<OpOutcome>,
}

impl<'a, 'w> StreamState<'a, 'w> {
    /// A fresh stream over `ops` with its clock at `start`.
    pub(crate) fn fresh(ops: &'w [WorkloadOp<'a>], start: SimTime) -> Self {
        StreamState {
            ops,
            next_op: 0,
            active: None,
            active_txn: None,
            now: start,
            cpu: SimTime::ZERO,
            rows: 0,
            snapshot: None,
            values: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    fn finished(&self) -> bool {
        self.active.is_none() && self.active_txn.is_none() && self.next_op >= self.ops.len()
    }

    /// Whether the stream's next unit is a row of an ephemeral (RME) scan.
    pub(crate) fn ephemeral_next(&self) -> bool {
        self.active
            .as_ref()
            .is_some_and(|a| a.job.frame_rows().is_some())
    }

    /// Whether the next ephemeral row lies in the given resident
    /// Reorganization-Buffer frame.
    pub(crate) fn in_frame(&self, resident: Option<u64>) -> bool {
        self.active.as_ref().is_some_and(|a| {
            a.job
                .frame_rows()
                .is_some_and(|fr| resident == Some(a.next_row / fr))
        })
    }
}

/// The unfinished stream with the smallest local clock among those
/// matching `filter` (ties broken by lowest core index), or `None`.
fn pick_stream(
    states: &[StreamState<'_, '_>],
    filter: impl Fn(&StreamState<'_, '_>) -> bool,
) -> Option<usize> {
    let mut pick: Option<usize> = None;
    for (i, st) in states.iter().enumerate() {
        if !st.finished() && filter(st) && pick.is_none_or(|p| st.now < states[p].now) {
            pick = Some(i);
        }
    }
    pick
}

impl System {
    /// Runs a mixed HTAP workload: stream `i` of `workload` executes on
    /// core `i`, all streams concurrently in simulated time under
    /// deterministic min-clock interleaving (see the module docs).
    ///
    /// `observer` is invoked as `(core, op_index, row, values)` for every
    /// row an OLAP scan produces and for every point lookup/update (with
    /// the read — or written — values); its [`RowEffect`] models the
    /// downstream work (aggregation CPU, an extra memory touch). It is not
    /// called for [`WorkloadOp::TakeSnapshot`], point deletes or rows
    /// invisible under the governing snapshot.
    ///
    /// # Errors
    /// Returns a [`WorkloadError`] — before any simulated work runs — if
    /// the workload has more streams than the system has cores, a point op
    /// addresses a row outside its table, an op names a column the schema
    /// does not have, a [`WorkloadOp::PointUpdate`] targets a non-`UInt`
    /// column, or a [`WorkloadOp::PointDelete`] targets a table without
    /// MVCC headers.
    pub fn run_workload<F>(
        &mut self,
        workload: &Workload<'_>,
        start: SimTime,
        mut observer: F,
    ) -> Result<WorkloadRun, WorkloadError>
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        if workload.streams.len() > self.cores.len() {
            return Err(WorkloadError::TooManyStreams {
                streams: workload.streams.len(),
                cores: self.cores.len(),
            });
        }
        for (i, stream) in workload.streams.iter().enumerate() {
            for (j, op) in stream.ops.iter().enumerate() {
                op.validate(i, j)?;
            }
        }
        self.txn_rt.reset(false);
        let mut states: Vec<StreamState<'_, '_>> = workload
            .streams
            .iter()
            .map(|stream| StreamState::fresh(&stream.ops, start))
            .collect();

        loop {
            // Frame-aware pick, arbitrated like the sharded scheduler but
            // only *among the streams that use the Reorganization Buffer*:
            // streams whose next unit is an ephemeral row prefer the RME's
            // resident frame (bounding frame turnovers), while every other
            // stream competes purely by local clock — a point-query stream
            // must never defer a frame turnover it does not participate
            // in, nor be deferred by one.
            let resident = self.engine.resident_frame();
            let plain = pick_stream(&states, |st| !st.ephemeral_next());
            let eph = pick_stream(&states, |st| st.ephemeral_next() && st.in_frame(resident))
                .or_else(|| pick_stream(&states, |st| st.ephemeral_next()));
            let pick = match (plain, eph) {
                (Some(a), Some(b)) => {
                    // Smaller local clock wins; ties go to the lower core
                    // index, matching the global pick rule.
                    if states[b].now < states[a].now {
                        Some(b)
                    } else if states[a].now < states[b].now {
                        Some(a)
                    } else {
                        Some(a.min(b))
                    }
                }
                (a, b) => a.or(b),
            };
            let Some(core) = pick else {
                break;
            };
            self.step_stream(core, &mut states[core], &mut observer);
            // The stepped stream's clock is the scheduler's event horizon:
            // retire every memory completion it can now observe.
            let horizon = states[core].now;
            self.dram.drain_completions(horizon);
        }
        self.settle_memory();

        let mut end = SimTime::ZERO;
        let mut cpu = SimTime::ZERO;
        let mut rows = 0u64;
        let mut streams = Vec::with_capacity(states.len());
        for (core, st) in states.into_iter().enumerate() {
            end = end.max(st.now);
            cpu += st.cpu;
            rows += st.rows;
            streams.push(StreamReport {
                core,
                ops: st.outcomes,
                end: st.now,
                cpu: st.cpu,
                rows: st.rows,
                cache: *self.cores[core].stats(),
            });
        }
        debug_assert!(
            self.txn_rt.stats.is_consistent(),
            "txn accounting identity violated: {:?}",
            self.txn_rt.stats
        );
        Ok(WorkloadRun {
            end,
            cpu,
            rows,
            streams,
            txn: self.txn_rt.stats.clone(),
            txn_aborts: std::mem::take(&mut self.txn_rt.aborts),
        })
    }

    /// Advances one stream by one unit: a row of the active scan, or one
    /// whole point op. Zero-time units (scan start, empty scan,
    /// `TakeSnapshot`) leave the clock untouched.
    fn step_stream<F>(&mut self, core: usize, st: &mut StreamState<'_, '_>, observer: &mut F)
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        // One row of the in-progress scan, if any.
        if self.step_scan_row(core, st, observer) {
            return;
        }
        // One unit of the in-progress transaction, if any.
        if self.step_txn_unit(core, st, observer) {
            return;
        }

        // Otherwise start/execute the next op. Copy the op out so its
        // borrows don't pin `st` itself.
        let op_idx = st.next_op;
        st.next_op += 1;
        let op = st.ops[op_idx];
        self.start_op(core, st, op_idx, op, observer);
    }

    /// Records a completed op as a span on its core's trace track
    /// (arg0 = op ordinal in its stream, arg1 = rows touched). Per-core
    /// op servicing is sequential, so these spans never overlap.
    #[inline(always)]
    pub(crate) fn emit_op_span(&mut self, core: usize, out: &OpOutcome) {
        let (op, rows, start, end) = (out.op as u64, out.rows, out.start, out.end);
        self.tracer.emit(|| {
            TraceEvent::span(
                Track::Core(core as u32),
                TraceEventKind::OpSpan,
                start,
                end,
                op,
                rows,
            )
        });
    }

    /// Advances one row of the stream's active scan, recording the
    /// [`OpOutcome`] when the scan completes. Returns `false` — and does
    /// nothing — if no scan is active.
    pub(crate) fn step_scan_row<F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        observer: &mut F,
    ) -> bool
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        let Some(active) = &mut st.active else {
            return false;
        };
        let row = active.next_row;
        active.next_row += 1;
        let op = active.op;
        let step = active.job.step_row(
            self.parts(),
            core,
            row,
            st.now,
            &mut st.values,
            &mut |r, v| observer(core, op, r, v),
        );
        st.now = step.now;
        st.cpu += step.cpu;
        if step.scanned {
            active.rows_scanned += 1;
            st.rows += 1;
        }
        if active.next_row >= active.job.rows() {
            let outcome = OpOutcome {
                op: active.op,
                kind: OpKind::OlapScan,
                start: active.start,
                end: st.now,
                rows: active.rows_scanned,
            };
            st.active = None;
            self.emit_op_span(core, &outcome);
            st.outcomes.push(outcome);
        }
        true
    }

    /// Starts (scans) or executes (point ops, snapshots) `op`, labelling
    /// its outcome `op_idx`. Scans with rows become the stream's active
    /// scan; every other op completes within the call and pushes its
    /// [`OpOutcome`].
    pub(crate) fn start_op<'a, F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'a, '_>,
        op_idx: usize,
        op: WorkloadOp<'a>,
        observer: &mut F,
    ) where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        match &op {
            WorkloadOp::OlapScan {
                source,
                stream_snapshot,
            } => {
                let mut source = *source;
                if *stream_snapshot {
                    if let ScanSource::Rows { snapshot, .. } = &mut source {
                        *snapshot = st.snapshot;
                    }
                }
                let job = ScanJob::new(
                    &source,
                    &self.cost,
                    &self.engine,
                    self.cfg.l1.line_bytes,
                    self.batched_stepping,
                );
                if job.rows() == 0 {
                    let outcome = OpOutcome {
                        op: op_idx,
                        kind: OpKind::OlapScan,
                        start: st.now,
                        end: st.now,
                        rows: 0,
                    };
                    self.emit_op_span(core, &outcome);
                    st.outcomes.push(outcome);
                    return;
                }
                st.values.resize(job.num_columns(), 0);
                st.values.fill(0);
                st.active = Some(ActiveScan {
                    job,
                    next_row: 0,
                    rows_scanned: 0,
                    op: op_idx,
                    start: st.now,
                });
            }
            WorkloadOp::PointLookup {
                table,
                columns,
                row,
            } => {
                let outcome = self.point_lookup(core, st, op_idx, table, columns, *row, observer);
                self.emit_op_span(core, &outcome);
                st.outcomes.push(outcome);
            }
            WorkloadOp::PointUpdate {
                table,
                row,
                column,
                value,
            } => {
                let outcome =
                    self.point_update(core, st, op_idx, table, *row, *column, *value, observer);
                self.emit_op_span(core, &outcome);
                st.outcomes.push(outcome);
            }
            WorkloadOp::PointDelete { table, row, ts } => {
                let outcome = self.point_delete(core, st, op_idx, table, *row, *ts);
                self.emit_op_span(core, &outcome);
                st.outcomes.push(outcome);
            }
            WorkloadOp::TakeSnapshot { ts } => {
                st.snapshot = Some(Snapshot::at(*ts));
                let outcome = OpOutcome {
                    op: op_idx,
                    kind: OpKind::TakeSnapshot,
                    start: st.now,
                    end: st.now,
                    rows: 0,
                };
                self.emit_op_span(core, &outcome);
                st.outcomes.push(outcome);
            }
            WorkloadOp::Txn { spec } => {
                // Zero-time begin; subsequent units execute the ops and
                // the commit (see `step_txn_unit`).
                self.begin_txn(core, st, op_idx, spec);
            }
        }
    }

    /// A point read: optional MVCC visibility check under the stream's
    /// snapshot, then one cache access per projected field. Shared with
    /// the transaction layer ([`TxnOp::Read`] is this exact body).
    #[allow(clippy::too_many_arguments)] // private scheduler helper
    pub(crate) fn point_lookup<F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        op_idx: usize,
        table: &RowTable,
        columns: &[usize],
        row: u64,
        observer: &mut F,
    ) -> OpOutcome
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        let start = st.now;
        let mut now = st.now;
        let front = &mut self.cores[core];
        let mut backend = DramBackend {
            dram: &mut self.dram,
            line_bytes: self.cfg.l1.line_bytes,
            core,
        };
        if table.mvcc().is_enabled() {
            if let Some(snap) = st.snapshot {
                let out = front.access(table.row_addr(row), 16, now, &mut self.l2, &mut backend);
                now = out.completion + self.cost.visibility();
                st.cpu += self.cost.visibility();
                if !table.visible(&self.mem, row, snap).unwrap_or(false) {
                    st.now = now;
                    return OpOutcome {
                        op: op_idx,
                        kind: OpKind::PointLookup,
                        start,
                        end: now,
                        rows: 0,
                    };
                }
            }
        }
        st.values.resize(columns.len(), 0);
        for (slot, &col) in columns.iter().enumerate() {
            let addr = table.field_addr(row, col).expect("row in range");
            let width = table.schema().width(col).expect("valid column");
            let out = front.access(addr, width, now, &mut self.l2, &mut backend);
            now = out.completion;
            st.values[slot] = self.mem.read_uint(addr, width.min(8));
        }
        let effect = observer(core, op_idx, row, &st.values);
        let cpu = self.cost.fields(columns.len()) + effect.cpu;
        now += cpu;
        st.cpu += cpu;
        if let Some((addr, bytes)) = effect.touch {
            now = front
                .access(addr, bytes, now, &mut self.l2, &mut backend)
                .completion;
        }
        st.now = now;
        st.rows += 1;
        OpOutcome {
            op: op_idx,
            kind: OpKind::PointLookup,
            start,
            end: now,
            rows: 1,
        }
    }

    /// An in-place field update: one cache write (timing) plus the actual
    /// store into physical memory, so later readers — including the RME's
    /// packing — see the new value. Shared with the transaction layer
    /// ([`TxnOp::Update`] intents apply this exact body at commit).
    #[allow(clippy::too_many_arguments)] // private scheduler helper
    pub(crate) fn point_update<F>(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        op_idx: usize,
        table: &RowTable,
        row: u64,
        column: usize,
        value: u64,
        observer: &mut F,
    ) -> OpOutcome
    where
        F: FnMut(usize, usize, u64, &[u64]) -> RowEffect,
    {
        let start = st.now;
        let mut now = st.now;
        let front = &mut self.cores[core];
        let mut backend = DramBackend {
            dram: &mut self.dram,
            line_bytes: self.cfg.l1.line_bytes,
            core,
        };
        let addr = table.field_addr(row, column).expect("row in range");
        let width = table.schema().width(column).expect("valid column");
        let masked = if width >= 8 {
            value
        } else {
            value & ((1u64 << (8 * width)) - 1)
        };
        let out = front.write(addr, width, now, &mut self.l2, &mut backend);
        now = out.completion;
        table
            .write_field(&mut self.mem, row, column, &Value::UInt(masked))
            .expect("point updates target UInt columns");
        st.values.resize(1, 0);
        st.values[0] = masked;
        let effect = observer(core, op_idx, row, &st.values[..1]);
        let cpu = self.cost.fields(1) + effect.cpu;
        now += cpu;
        st.cpu += cpu;
        if let Some((addr, bytes)) = effect.touch {
            now = front
                .access(addr, bytes, now, &mut self.l2, &mut backend)
                .completion;
        }
        st.now = now;
        st.rows += 1;
        OpOutcome {
            op: op_idx,
            kind: OpKind::PointUpdate,
            start,
            end: now,
            rows: 1,
        }
    }

    /// A delete: one cache write of the 16-byte version header plus the
    /// actual header store ending the version at `ts`. Shared with the
    /// transaction layer ([`TxnOp::Delete`] intents apply this body at
    /// commit, with `ts` the commit timestamp).
    pub(crate) fn point_delete(
        &mut self,
        core: usize,
        st: &mut StreamState<'_, '_>,
        op_idx: usize,
        table: &RowTable,
        row: u64,
        ts: Timestamp,
    ) -> OpOutcome {
        let start = st.now;
        let front = &mut self.cores[core];
        let mut backend = DramBackend {
            dram: &mut self.dram,
            line_bytes: self.cfg.l1.line_bytes,
            core,
        };
        let out = front.write(table.row_addr(row), 16, st.now, &mut self.l2, &mut backend);
        let now = out.completion + self.cost.visibility();
        st.cpu += self.cost.visibility();
        table
            .mark_deleted(&mut self.mem, row, ts)
            .expect("point deletes require an MVCC table and a row in range");
        st.now = now;
        st.rows += 1;
        OpOutcome {
            op: op_idx,
            kind: OpKind::PointDelete,
            start,
            end: now,
            rows: 1,
        }
    }
}
