//! The composed Relational Memory Engine.
//!
//! [`RmeEngine`] ties the Trapper, Monitor Bypass, Requestor, Fetch Units
//! and Reorganization Buffer together and exposes the two operations the
//! rest of the system needs:
//!
//! * [`RmeEngine::serve_line`] — the timing path: a CPU cache-line request
//!   for an ephemeral address enters through the Trapper, is looked up in
//!   the Reorganization Buffer, possibly triggers a frame fetch, and leaves
//!   as an AXI response. The returned time is when the line reaches the L2.
//! * [`RmeEngine::read_packed`] — the functional path: the actual packed
//!   bytes of the projection, produced by really extracting them from the
//!   row-major image in physical memory.
//!
//! Tables whose packed projection exceeds the Data SPM are processed in
//! *frames*: the SPM holds one frame at a time and moving to the next frame
//! uses the single-cycle epoch reset (Section 5, "RME Scales with Data
//! Size" / Figure 13).

use relmem_dram::{DramModel, PhysicalMemory};
use relmem_sim::{
    CdcConfig, ClockDomain, RmeHwConfig, SimTime, TraceEvent, TraceEventKind, Tracer, Track,
};

use crate::config_port::ConfigPort;
use crate::fetch_unit::FetchUnit;
use crate::geometry::TableGeometry;
use crate::monitor::{Lookup, MonitorBypass};
use crate::requestor::{DispatchedDescriptor, Requestor};
use crate::revision::HwRevision;
use crate::stats::RmeStats;
use crate::trapper::Trapper;

/// The Relational Memory Engine.
#[derive(Debug, Clone)]
pub struct RmeEngine {
    hw: RmeHwConfig,
    pl: ClockDomain,
    bus_bytes: usize,
    revision: HwRevision,
    port: ConfigPort,
    trapper: Trapper,
    requestor: Requestor,
    fetch_units: Vec<FetchUnit>,
    monitor: MonitorBypass,
    programmed: Option<Programmed>,
    line_bytes: usize,
    /// Whether frames are fetched incrementally (event-driven mode): a
    /// frame turnover generates the descriptor stream but books each
    /// descriptor's DRAM traffic lazily, as the demand cursor reaches it,
    /// so fetch overlaps compute line by line instead of booking the whole
    /// frame in one step. Off (the synchronous whole-frame fetch) by
    /// default.
    incremental: bool,
    /// Booking cursor of the activated frame (incremental mode only):
    /// descriptors `[next..]` have been generated — with their dispatch
    /// anchors frozen at activation, so booking order is the only thing
    /// laziness changes — but not yet presented to the fetch units.
    progress: Option<FrameProgress>,
    stats: RmeStats,
    /// Line requests served per CPU core (indexed by core, grown on
    /// demand). The engine is a shared device: requests from all cores
    /// funnel through the one Trapper, whose outstanding-transaction limit
    /// is what arbitrates concurrent CPU-side traffic.
    per_core_requests: Vec<u64>,
    /// Total service time (request ready → line delivered) attributed per
    /// CPU core. Per-stream cost attribution for HTAP workloads: each core
    /// runs one query stream, so this is how long each *stream* spent
    /// waiting on the engine — including any frame turnovers its requests
    /// triggered.
    per_core_service: Vec<SimTime>,
    /// Trace hook for frame activations and fetch windows. A no-op unless
    /// the system enables recording; timing is never affected.
    tracer: Tracer,
}

#[derive(Debug, Clone)]
struct Programmed {
    geometry: TableGeometry,
    /// Visible source rows in order (None ⇒ every row is visible).
    visible_rows: Option<Vec<u64>>,
    /// Rows per frame (how many packed rows fit in the Data SPM).
    rows_per_frame: u64,
}

/// Lazy-booking state of the frame most recently activated in incremental
/// mode. The full descriptor stream exists from activation (the hardware
/// Requestor emits one descriptor per PL cycle regardless of demand); what
/// is deferred is presenting descriptors to the Fetch Units — i.e. booking
/// their DRAM traffic — which happens in stream order as the demand cursor
/// advances, and is completed wholesale on frame turnover or at
/// [`RmeEngine::finish_pending_fetch`] so the traffic totals of a run are
/// identical to the synchronous whole-frame fetch.
#[derive(Debug, Clone)]
struct FrameProgress {
    frame: u64,
    descriptors: Vec<DispatchedDescriptor>,
    /// Index of the first descriptor not yet booked.
    next: usize,
    /// Latest buffer-write completion among booked descriptors (the tail
    /// force-complete time, as in the synchronous fetch).
    latest: SimTime,
    packed_row: usize,
    rows_in_frame: usize,
    tail_done: bool,
    /// When the frame was activated (the fetch window's trace anchor).
    activated: SimTime,
}

impl Programmed {
    fn visible_count(&self) -> u64 {
        self.visible_rows
            .as_ref()
            .map(|v| v.len() as u64)
            .unwrap_or(self.geometry.row_count)
    }

    fn packed_row_bytes(&self) -> usize {
        self.geometry.packed_row_bytes()
    }

    /// Packed bytes covered by one full frame.
    fn frame_bytes(&self) -> u64 {
        self.rows_per_frame * self.packed_row_bytes() as u64
    }

    /// Total packed bytes of the projection.
    fn packed_total(&self) -> u64 {
        self.visible_count() * self.packed_row_bytes() as u64
    }

    /// The frame an ephemeral byte offset falls into.
    fn frame_of(&self, offset: u64) -> u64 {
        offset / self.frame_bytes()
    }

    /// Source rows (and their packed indices) belonging to a frame.
    fn frame_rows(&self, frame: u64) -> Vec<u64> {
        let start = frame * self.rows_per_frame;
        let end = (start + self.rows_per_frame).min(self.visible_count());
        if start >= end {
            return Vec::new();
        }
        match &self.visible_rows {
            Some(v) => v[start as usize..end as usize].to_vec(),
            None => (start..end).collect(),
        }
    }
}

impl RmeEngine {
    /// Builds an engine.
    ///
    /// * `hw` — structural parameters (SPM sizes, fetch units, limits),
    /// * `cdc` — PS↔PL boundary parameters,
    /// * `revision` — BSL / PCK / MLP,
    /// * `bus_bytes` — main-memory bus width (16 B on the target platform),
    /// * `line_bytes` — CPU cache line size (64 B).
    pub fn new(
        hw: RmeHwConfig,
        cdc: CdcConfig,
        revision: HwRevision,
        bus_bytes: usize,
        line_bytes: usize,
    ) -> Self {
        let pl = cdc.pl_clock();
        let fetch_units = (0..hw.fetch_units.max(1))
            .map(|_| FetchUnit::new(hw, revision, pl, bus_bytes, cdc.pl_dram_read_latency))
            .collect();
        RmeEngine {
            monitor: MonitorBypass::new(hw.data_spm_bytes, line_bytes),
            requestor: Requestor::new(bus_bytes, pl.cycles(hw.descriptor_cycles)),
            trapper: Trapper::new(cdc),
            fetch_units,
            port: ConfigPort::new(),
            pl,
            bus_bytes,
            revision,
            hw,
            programmed: None,
            line_bytes,
            incremental: false,
            progress: None,
            stats: RmeStats::default(),
            per_core_requests: Vec::new(),
            per_core_service: Vec::new(),
            tracer: Tracer::new(),
        }
    }

    /// The engine's trace hook (recording is controlled by the system;
    /// the hook is a no-op by default).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The hardware revision this engine models.
    pub fn revision(&self) -> HwRevision {
        self.revision
    }

    /// The structural configuration.
    pub fn hw_config(&self) -> &RmeHwConfig {
        &self.hw
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RmeStats {
        let mut s = self.stats;
        s.descriptors = self.requestor.generated();
        s.epoch_resets = self.monitor.buffer().resets();
        s
    }

    /// The configuration port (for register-level programming and tests).
    pub fn config_port_mut(&mut self) -> &mut ConfigPort {
        &mut self.port
    }

    /// Programs the engine for a projection described by `geometry`,
    /// optionally restricted to `visible_rows` (MVCC snapshot filtering).
    /// This is what `register_var(...)` — registering an ephemeral variable —
    /// does under the hood: a handful of configuration-port writes followed
    /// by a software reset.
    pub fn configure(
        &mut self,
        geometry: TableGeometry,
        visible_rows: Option<Vec<u64>>,
    ) -> Result<(), relmem_storage::StorageError> {
        geometry.validate(self.hw.max_columns, self.hw.max_column_width)?;
        self.port.program(&geometry);
        self.port.write(crate::config_port::regs::SW_RESET, 1);
        self.port.take_reset();
        let packed_row = geometry.packed_row_bytes().max(1);
        // Frames must end on a cache-line boundary of the packed projection,
        // otherwise a single line would straddle two frames. Round the rows
        // per frame down to a multiple of the smallest row count whose
        // packed size is line-aligned.
        let step = (self.line_bytes / gcd(packed_row, self.line_bytes)).max(1);
        let raw = (self.hw.data_spm_bytes / packed_row).max(1);
        let rows_per_frame = ((raw / step) * step).max(step) as u64;
        self.monitor.software_reset();
        self.progress = None;
        self.programmed = Some(Programmed {
            geometry,
            visible_rows,
            rows_per_frame,
        });
        Ok(())
    }

    /// The currently programmed geometry.
    pub fn geometry(&self) -> Option<&TableGeometry> {
        self.programmed.as_ref().map(|p| &p.geometry)
    }

    /// Total bytes of the packed projection currently programmed.
    pub fn packed_total_bytes(&self) -> u64 {
        self.programmed
            .as_ref()
            .map(|p| p.packed_total())
            .unwrap_or(0)
    }

    /// Whether `addr` falls inside the programmed ephemeral range.
    pub fn owns_address(&self, addr: u64) -> bool {
        match &self.programmed {
            Some(p) => {
                addr >= p.geometry.ephemeral_base
                    && addr < p.geometry.ephemeral_base + p.packed_total().max(1)
            }
            None => false,
        }
    }

    /// Whether a line can be served without disturbing the resident frame —
    /// used to filter CPU-side prefetches that run past a frame boundary.
    pub fn line_is_prefetchable(&self, addr: u64) -> bool {
        let Some(p) = &self.programmed else {
            return false;
        };
        if !self.owns_address(addr) {
            return false;
        }
        let offset = addr - p.geometry.ephemeral_base;
        self.monitor.resident_frame() == Some(p.frame_of(offset))
    }

    /// Serves a CPU cache-line request for ephemeral address `addr`, issued
    /// at `ready`. Returns the time the line's data arrives at the CPU side.
    ///
    /// # Panics
    /// Panics if the engine has not been configured or the address is
    /// outside the programmed ephemeral range.
    pub fn serve_line(
        &mut self,
        addr: u64,
        ready: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) -> SimTime {
        self.serve_line_from(0, addr, ready, mem, dram)
    }

    /// [`serve_line`](Self::serve_line) with the requesting CPU core made
    /// explicit, so multi-core callers can attribute engine traffic. The
    /// engine itself is core-agnostic: all cores share one Trapper (whose
    /// `max_outstanding` limit arbitrates concurrent requests), one
    /// Reorganization Buffer and one resident frame, so cores scanning
    /// different frames of the same variable will contend for the buffer.
    pub fn serve_line_from(
        &mut self,
        core: usize,
        addr: u64,
        ready: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) -> SimTime {
        if self.per_core_requests.len() <= core {
            self.per_core_requests.resize(core + 1, 0);
            self.per_core_service.resize(core + 1, SimTime::ZERO);
        }
        self.per_core_requests[core] += 1;
        assert!(
            self.owns_address(addr),
            "address 0x{addr:x} is not part of the programmed ephemeral range"
        );
        let (frame, line_in_frame) = {
            let p = self.programmed.as_ref().expect("engine configured");
            let offset = addr - p.geometry.ephemeral_base;
            (p.frame_of(offset), ((offset % p.frame_bytes()) / self.line_bytes as u64) as usize)
        };

        let (axi, at_pl) = self.trapper.accept(addr, ready);

        // In incremental mode, bring the booking cursor up to the demanded
        // line of the resident frame *before* the lookup classifies it: the
        // synchronous fetch booked the whole frame at turnover, so a line
        // the lazy cursor has not reached yet corresponds to a sync "hit
        // whose data is still in flight". Booking it now, at its frozen
        // dispatch anchor, keeps hit/miss accounting and completion times
        // bit-identical to the synchronous path on identical demand streams.
        if self.incremental && self.monitor.resident_frame() == Some(frame) {
            self.advance_booking(frame, line_in_frame, mem, dram);
        }

        let data_ready_pl = match self.monitor.lookup(frame, line_in_frame) {
            Lookup::Hit(completed_at) => {
                self.stats.buffer_hits += 1;
                completed_at.max(at_pl) + self.pl.cycles(self.hw.spm_access_cycles)
            }
            Lookup::Miss => {
                self.stats.buffer_misses += 1;
                if self.incremental {
                    // Frame turnover (or an empty-tail miss, where all of
                    // this is a no-op): settle the outgoing frame's unbooked
                    // descriptors before the epoch reset discards them, then
                    // activate the new frame and book up to the demand.
                    self.finish_frame_remainder(mem, dram);
                    if self.monitor.frame_miss(frame) {
                        self.activate_frame(frame, at_pl, mem, dram);
                    }
                    self.advance_booking(frame, line_in_frame, mem, dram);
                } else if self.monitor.frame_miss(frame) {
                    self.fetch_frame(frame, at_pl, mem, dram);
                }
                let completed_at = match self.monitor.lookup(frame, line_in_frame) {
                    Lookup::Hit(t) => t,
                    Lookup::Miss => at_pl, // an empty frame tail; nothing to wait for
                };
                self.monitor.buffer_mut().stall(line_in_frame, axi.id);
                self.monitor.buffer_mut().take_stalled(line_in_frame);
                completed_at.max(at_pl) + self.pl.cycles(self.hw.spm_access_cycles)
            }
        };

        let finish = self
            .trapper
            .respond(axi.id, data_ready_pl, self.line_bytes)
            .data_ready;
        self.per_core_service[core] += finish.saturating_sub(ready);
        finish
    }

    /// Reads `len` packed bytes at ephemeral-range offset `addr`. Falls back
    /// to packing straight from physical memory when the containing frame is
    /// not resident (e.g. the caches still hold lines of an already evicted
    /// frame).
    pub fn read_packed(&self, addr: u64, len: usize, mem: &PhysicalMemory) -> Vec<u8> {
        let p = self.programmed.as_ref().expect("engine configured");
        let offset = addr - p.geometry.ephemeral_base;
        let frame = p.frame_of(offset);
        if self.monitor.resident_frame() == Some(frame) {
            let in_frame = (offset - frame * p.frame_bytes()) as usize;
            if in_frame + len <= self.monitor.buffer().capacity_bytes()
                && self.lines_complete(frame, in_frame, len)
            {
                return self.monitor.buffer().read_bytes(in_frame, len).to_vec();
            }
        }
        self.pack_from_memory(offset, len, mem)
    }

    /// Whether every buffer line covering `len` bytes at frame-local offset
    /// `in_frame` has completed. Always true inside the packed data of a
    /// synchronously fetched frame; in incremental mode a line the demand
    /// cursor has not reached yet is still incomplete, and functional reads
    /// must fall back to packing from memory rather than return its
    /// half-written bytes.
    fn lines_complete(&self, frame: u64, in_frame: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let first = in_frame / self.line_bytes;
        let last = (in_frame + len - 1) / self.line_bytes;
        (first..=last).all(|line| matches!(self.monitor.lookup(frame, line), Lookup::Hit(_)))
    }

    /// Reads up to 8 packed bytes at ephemeral address `addr` as a
    /// little-endian unsigned integer, without allocating. This is the hot
    /// functional read used by the query engine's scan loops.
    pub fn read_packed_u64(&self, addr: u64, width: usize, mem: &PhysicalMemory) -> u64 {
        let width = width.min(8);
        let p = self.programmed.as_ref().expect("engine configured");
        let offset = addr - p.geometry.ephemeral_base;
        let frame = p.frame_of(offset);
        let mut buf = [0u8; 8];
        if self.monitor.resident_frame() == Some(frame) {
            let in_frame = (offset - frame * p.frame_bytes()) as usize;
            if in_frame + width <= self.monitor.buffer().capacity_bytes()
                && self.lines_complete(frame, in_frame, width)
            {
                buf[..width].copy_from_slice(self.monitor.buffer().read_bytes(in_frame, width));
                return u64::from_le_bytes(buf);
            }
        }
        let bytes = self.pack_from_memory(offset, width, mem);
        buf[..width].copy_from_slice(&bytes);
        u64::from_le_bytes(buf)
    }

    /// Pre-packs `frame` into the Reorganization Buffer with zero timing
    /// cost — the "RME Hot" starting state of the paper's experiments.
    pub fn prewarm_frame(&mut self, frame: u64, mem: &PhysicalMemory) {
        let Some(p) = self.programmed.as_ref() else {
            return;
        };
        let rows = p.frame_rows(frame);
        let geometry = p.geometry.clone();
        let packed_row = geometry.packed_row_bytes();
        self.progress = None; // prewarm materializes everything at once
        self.monitor.frame_miss(frame);
        for (packed_idx, &row) in rows.iter().enumerate() {
            for j in 0..geometry.num_columns() {
                let src = geometry.p(row, j);
                let width = geometry.column_width(j);
                let waddr = packed_idx * packed_row + geometry.packed_column_offset(j);
                let bytes = mem.read(src, width).to_vec();
                self.monitor
                    .buffer_mut()
                    .write_chunk(waddr, &bytes, SimTime::ZERO);
            }
        }
        self.finish_partial_tail(rows.len(), packed_row, SimTime::ZERO);
    }

    /// Clears all timing state (resource occupancy, counters) while keeping
    /// the configuration and any resident frame data.
    pub fn reset_timing(&mut self) {
        self.trapper.reset();
        for fu in &mut self.fetch_units {
            fu.reset();
        }
        self.stats = RmeStats::default();
        self.per_core_requests.clear();
        self.per_core_service.clear();
    }

    /// Line requests served per CPU core since the last timing reset
    /// (indexed by core; empty if no requests were served).
    pub fn per_core_requests(&self) -> &[u64] {
        &self.per_core_requests
    }

    /// Total engine service time (request ready → line delivered)
    /// attributed per CPU core since the last timing reset. With one query
    /// stream per core this is per-*stream* attribution of engine cost.
    pub fn per_core_service_time(&self) -> &[SimTime] {
        &self.per_core_service
    }

    /// The frame currently resident in the Reorganization Buffer, if any.
    /// Multi-core schedulers use this to keep cores working inside the
    /// resident frame instead of forcing a frame turnover on every access.
    pub fn resident_frame(&self) -> Option<u64> {
        self.monitor.resident_frame()
    }

    /// Full software reset: timing state *and* buffer residency.
    pub fn software_reset(&mut self) {
        self.reset_timing();
        self.monitor.software_reset();
        self.progress = None;
    }

    fn fetch_frame(
        &mut self,
        frame: u64,
        start_pl: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) {
        let p = self.programmed.as_ref().expect("engine configured");
        let rows = p.frame_rows(frame);
        let geometry = p.geometry.clone();
        let packed_row = geometry.packed_row_bytes();
        self.stats.frames_fetched += 1;
        self.charge_mvcc_headers(&geometry, &rows, start_pl, mem, dram);
        let dispatched = self.requestor.generate_frame(&geometry, &rows, start_pl);
        let mut latest = start_pl;
        for d in dispatched {
            latest = latest.max(self.book_descriptor(&d, mem, dram));
        }
        self.finish_partial_tail(rows.len(), packed_row, latest);
        let lines = (rows.len() * packed_row).div_ceil(self.line_bytes) as u64;
        self.tracer.emit(|| {
            TraceEvent::instant(Track::Rme, TraceEventKind::FrameActivate, start_pl, frame, 0)
        });
        self.tracer.emit(|| {
            TraceEvent::span(Track::Rme, TraceEventKind::FrameFetch, start_pl, latest, frame, lines)
        });
    }

    /// MVCC visibility filtering must inspect the version header of every
    /// source row in the frame's span, including the rows it ends up
    /// skipping. Charged eagerly at frame activation on both fetch paths:
    /// header inspection is what *determines* the frame's rows, so it is
    /// not demand-elidable.
    fn charge_mvcc_headers(
        &mut self,
        geometry: &TableGeometry,
        rows: &[u64],
        start_pl: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) {
        if !geometry.needs_visibility_filter() {
            return;
        }
        if let (Some(&first), Some(&last)) = (rows.first(), rows.last()) {
            let span = last - first + 1;
            self.stats.rows_filtered += span - rows.len() as u64;
            for (k, row) in (first..=last).enumerate() {
                let header = crate::descriptor::Descriptor {
                    row,
                    column: 0,
                    raddr: geometry.source_base + row * geometry.row_bytes as u64,
                    rburst: geometry.mvcc_header_bytes.div_ceil(self.bus_bytes),
                    waddr: 0,
                    es: 0,
                    len: 0,
                };
                let unit = k % self.fetch_units.len();
                let chunk = self.fetch_units[unit].process(&header, start_pl, mem, dram);
                self.stats.dram_beats += chunk.beats as u64;
            }
        }
    }

    /// Presents one descriptor to a fetch unit and lands its data in the
    /// Reorganization Buffer. Returns the buffer-write completion time.
    fn book_descriptor(
        &mut self,
        d: &DispatchedDescriptor,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) -> SimTime {
        // Round-robin would ignore load imbalance from variable bursts;
        // picking the unit whose reader frees first mirrors the
        // "any idle Fetch Unit" dispatch of the paper.
        let unit = self
            .fetch_units
            .iter()
            .enumerate()
            .min_by_key(|(_, fu)| fu.earliest_slot())
            .map(|(i, _)| i)
            .expect("at least one fetch unit");
        let chunk = self.fetch_units[unit].process(&d.descriptor, d.dispatch_at, mem, dram);
        self.stats.dram_beats += chunk.beats as u64;
        self.stats.useful_bytes += chunk.data.len() as u64;
        self.monitor.buffer_mut().write_chunk(
            d.descriptor.waddr as usize,
            &chunk.data,
            chunk.written_at,
        );
        chunk.written_at
    }

    /// Activates `frame` for incremental fetching: charges the eager MVCC
    /// header traffic, generates the full descriptor stream with dispatch
    /// anchors frozen at `start_pl`, and books *nothing* — booking follows
    /// the demand cursor through [`advance_booking`](Self::advance_booking).
    fn activate_frame(
        &mut self,
        frame: u64,
        start_pl: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) {
        let p = self.programmed.as_ref().expect("engine configured");
        let rows = p.frame_rows(frame);
        let geometry = p.geometry.clone();
        let packed_row = geometry.packed_row_bytes();
        self.stats.frames_fetched += 1;
        self.charge_mvcc_headers(&geometry, &rows, start_pl, mem, dram);
        let descriptors = self.requestor.generate_frame(&geometry, &rows, start_pl);
        self.tracer.emit(|| {
            TraceEvent::instant(Track::Rme, TraceEventKind::FrameActivate, start_pl, frame, 0)
        });
        self.progress = Some(FrameProgress {
            frame,
            descriptors,
            next: 0,
            latest: start_pl,
            packed_row,
            rows_in_frame: rows.len(),
            tail_done: false,
            activated: start_pl,
        });
    }

    /// Books descriptors of the activated frame, in stream order at their
    /// frozen anchors, until the demanded line completes (or the stream is
    /// exhausted, which force-completes the partial tail). Prefix-monotone:
    /// any demand order books the same descriptor prefix sequence the
    /// synchronous whole-frame fetch would, so single-stream timing is
    /// bit-identical to it.
    fn advance_booking(
        &mut self,
        frame: u64,
        line_in_frame: usize,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) {
        let Some(mut progress) = self.progress.take() else {
            return;
        };
        if progress.frame != frame {
            debug_assert!(false, "frame turnover must settle the old frame first");
            self.progress = Some(progress);
            return;
        }
        while progress.next < progress.descriptors.len()
            && matches!(self.monitor.lookup(frame, line_in_frame), Lookup::Miss)
        {
            let written = self.book_descriptor(&progress.descriptors[progress.next], mem, dram);
            progress.latest = progress.latest.max(written);
            progress.next += 1;
        }
        if progress.next < progress.descriptors.len() {
            self.progress = Some(progress);
        } else {
            if !progress.tail_done {
                self.finish_partial_tail(
                    progress.rows_in_frame,
                    progress.packed_row,
                    progress.latest,
                );
            }
            // A fully booked frame needs no progress state: drop it,
            // closing its fetch window in the trace.
            self.emit_frame_fetch(&progress);
        }
    }

    /// Books every remaining descriptor of the activated frame at its
    /// frozen anchor (the frame is being evicted, or the run is ending),
    /// making the frame's total DRAM traffic identical to the synchronous
    /// whole-frame fetch.
    fn finish_frame_remainder(&mut self, mem: &PhysicalMemory, dram: &mut DramModel) {
        let Some(mut progress) = self.progress.take() else {
            return;
        };
        while progress.next < progress.descriptors.len() {
            let written = self.book_descriptor(&progress.descriptors[progress.next], mem, dram);
            progress.latest = progress.latest.max(written);
            progress.next += 1;
        }
        if !progress.tail_done {
            self.finish_partial_tail(progress.rows_in_frame, progress.packed_row, progress.latest);
        }
        self.emit_frame_fetch(&progress);
    }

    /// Emits the fetch window of a fully booked incremental frame:
    /// activation → latest buffer-write completion, matching the span the
    /// synchronous whole-frame fetch records.
    fn emit_frame_fetch(&mut self, progress: &FrameProgress) {
        let lines = (progress.rows_in_frame * progress.packed_row).div_ceil(self.line_bytes) as u64;
        let (frame, activated, latest) = (progress.frame, progress.activated, progress.latest);
        self.tracer.emit(|| {
            TraceEvent::span(Track::Rme, TraceEventKind::FrameFetch, activated, latest, frame, lines)
        });
    }

    /// Settles any incremental frame fetch still in flight by booking every
    /// remaining descriptor, so a run's DRAM traffic totals are identical
    /// to the synchronous fetch even when the run ends mid-frame. Call at
    /// the end of a measured run (and before any timing reset); a no-op in
    /// synchronous mode or when the resident frame is fully booked.
    pub fn finish_pending_fetch(&mut self, mem: &PhysicalMemory, dram: &mut DramModel) {
        self.finish_frame_remainder(mem, dram);
    }

    /// Selects incremental (event-driven) frame fetching. Flip only at a
    /// measurement boundary: switching with a partially booked frame in
    /// flight would silently drop its remaining traffic, so settle it via
    /// [`finish_pending_fetch`](Self::finish_pending_fetch) first.
    pub fn set_incremental(&mut self, on: bool) {
        if self.incremental == on {
            return;
        }
        debug_assert!(
            self.progress.is_none(),
            "settle the pending fetch before flipping the fetch mode"
        );
        self.incremental = on;
        self.progress = None;
    }

    /// Whether incremental frame fetching is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Marks the trailing, partially filled cache line of a frame complete
    /// (it has no more data coming, so a request for it must not stall
    /// forever).
    fn finish_partial_tail(&mut self, rows_in_frame: usize, packed_row: usize, when: SimTime) {
        let frame_packed = rows_in_frame * packed_row;
        if frame_packed == 0 {
            return;
        }
        if !frame_packed.is_multiple_of(self.line_bytes) {
            let tail_line = frame_packed / self.line_bytes;
            self.monitor.buffer_mut().force_complete(tail_line, when);
        }
    }

    /// Largest frame the Reorganization Buffer can currently hold, in
    /// packed rows.
    pub fn rows_per_frame(&self) -> Option<u64> {
        self.programmed.as_ref().map(|p| p.rows_per_frame)
    }

    fn pack_from_memory(&self, offset: u64, len: usize, mem: &PhysicalMemory) -> Vec<u8> {
        let p = self.programmed.as_ref().expect("engine configured");
        let geometry = &p.geometry;
        let packed_row = geometry.packed_row_bytes() as u64;
        let mut out = Vec::with_capacity(len);
        let mut cursor = offset;
        let end = offset + len as u64;
        while cursor < end {
            let packed_idx = cursor / packed_row;
            if packed_idx >= p.visible_count() {
                out.push(0);
                cursor += 1;
                continue;
            }
            let source_row = match &p.visible_rows {
                Some(v) => v[packed_idx as usize],
                None => packed_idx,
            };
            let within = (cursor % packed_row) as usize;
            // Find which column of interest the byte belongs to.
            let mut acc = 0usize;
            let mut byte = 0u8;
            for j in 0..geometry.num_columns() {
                let w = geometry.column_width(j);
                if within < acc + w {
                    let src = geometry.p(source_row, j) + (within - acc) as u64;
                    byte = mem.read(src, 1)[0];
                    break;
                }
                acc += w;
            }
            out.push(byte);
            cursor += 1;
        }
        out
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmem_sim::PlatformConfig;
    use relmem_storage::{ColumnGroup, DataGen, MvccConfig, RowTable, Schema, Snapshot};

    struct Fixture {
        mem: PhysicalMemory,
        dram: DramModel,
        table: RowTable,
        engine: RmeEngine,
        ephemeral_base: u64,
    }

    fn fixture(rows: u64, revision: HwRevision, mvcc: MvccConfig) -> Fixture {
        let cfg = PlatformConfig::zcu102();
        let mut mem = PhysicalMemory::new(32 << 20);
        let schema = Schema::benchmark(8, 4, 64);
        let mut table = RowTable::create(&mut mem, schema, rows, mvcc).unwrap();
        DataGen::new(11).fill_table(&mut mem, &mut table, rows).unwrap();
        let dram = DramModel::new(cfg.dram);
        let engine = RmeEngine::new(cfg.rme, cfg.cdc, revision, cfg.dram.bus_bytes, 64);
        let ephemeral_base = 16 << 20;
        Fixture {
            mem,
            dram,
            table,
            engine,
            ephemeral_base,
        }
    }

    fn configure(f: &mut Fixture, cols: Vec<usize>, snapshot: Option<Snapshot>) {
        let group = ColumnGroup::new(cols).unwrap();
        let visible = snapshot.map(|snap| {
            (0..f.table.num_rows())
                .filter(|&r| f.table.visible(&f.mem, r, snap).unwrap())
                .collect::<Vec<_>>()
        });
        let geometry = TableGeometry::from_schema(
            f.table.schema(),
            &group,
            f.table.base_addr(),
            f.ephemeral_base,
            f.table.num_rows(),
            f.table.mvcc(),
            snapshot,
        )
        .unwrap();
        f.engine.configure(geometry, visible).unwrap();
    }

    /// Reference projection computed in software, for comparison.
    fn reference_packed(f: &Fixture, cols: &[usize], snapshot: Option<Snapshot>) -> Vec<u8> {
        let group = ColumnGroup::new(cols.to_vec()).unwrap();
        let mut out = Vec::new();
        for row in 0..f.table.num_rows() {
            if let Some(snap) = snapshot {
                if !f.table.visible(&f.mem, row, snap).unwrap() {
                    continue;
                }
            }
            let row_bytes = f
                .mem
                .read(f.table.row_data_addr(row), f.table.schema().row_bytes())
                .to_vec();
            out.extend(group.pack_row(f.table.schema(), &row_bytes).unwrap());
        }
        out
    }

    #[test]
    fn packed_data_matches_software_projection() {
        let mut f = fixture(300, HwRevision::Mlp, MvccConfig::Disabled);
        configure(&mut f, vec![1, 3, 6], None);
        // Drive the timing path so the frame gets fetched, then read back.
        let total = f.engine.packed_total_bytes();
        let mut now = SimTime::ZERO;
        let mut line = 0;
        while line < total {
            now = f
                .engine
                .serve_line(f.ephemeral_base + line, now, &f.mem, &mut f.dram);
            line += 64;
        }
        let packed = f.engine.read_packed(f.ephemeral_base, total as usize, &f.mem);
        assert_eq!(packed, reference_packed(&f, &[1, 3, 6], None));
        let stats = f.engine.stats();
        assert_eq!(stats.frames_fetched, 1);
        assert!(stats.useful_bytes >= total);
        assert!(stats.buffer_hits + stats.buffer_misses >= total / 64);
    }

    #[test]
    fn hot_requests_are_served_faster_than_cold() {
        let mut f = fixture(2_000, HwRevision::Mlp, MvccConfig::Disabled);
        configure(&mut f, vec![0], None);
        let total = f.engine.packed_total_bytes();

        // Cold pass.
        let mut now = SimTime::ZERO;
        let mut addr = f.ephemeral_base;
        while addr < f.ephemeral_base + total {
            now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
            addr += 64;
        }
        let cold = now;

        // Hot pass: prewarmed buffer, fresh timing state.
        let mut f2 = fixture(2_000, HwRevision::Mlp, MvccConfig::Disabled);
        configure(&mut f2, vec![0], None);
        f2.engine.prewarm_frame(0, &f2.mem);
        f2.engine.reset_timing();
        let mut now = SimTime::ZERO;
        let mut addr = f2.ephemeral_base;
        while addr < f2.ephemeral_base + total {
            now = f2.engine.serve_line(addr, now, &f2.mem, &mut f2.dram);
            addr += 64;
        }
        let hot = now;
        assert!(hot < cold, "hot ({hot}) must be faster than cold ({cold})");
        assert_eq!(f2.engine.stats().buffer_misses, 0);
    }

    #[test]
    fn mlp_fetches_a_frame_faster_than_bsl() {
        let run = |rev: HwRevision| {
            let mut f = fixture(4_000, rev, MvccConfig::Disabled);
            configure(&mut f, vec![0], None);
            let total = f.engine.packed_total_bytes();
            let mut now = SimTime::ZERO;
            let mut addr = f.ephemeral_base;
            while addr < f.ephemeral_base + total {
                now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
                addr += 64;
            }
            now
        };
        let bsl = run(HwRevision::Bsl);
        let pck = run(HwRevision::Pck);
        let mlp = run(HwRevision::Mlp);
        assert!(pck < bsl);
        assert!(mlp.as_nanos_f64() < 0.3 * bsl.as_nanos_f64(), "mlp {mlp} vs bsl {bsl}");
    }

    #[test]
    fn multi_frame_tables_reset_the_epoch_between_frames() {
        let mut f = fixture(3_000, HwRevision::Mlp, MvccConfig::Disabled);
        // Shrink the SPM so a frame holds only 1024 packed rows (4 KiB).
        let mut hw = *f.engine.hw_config();
        hw.data_spm_bytes = 4 * 1024;
        let cfg = PlatformConfig::zcu102();
        f.engine = RmeEngine::new(hw, cfg.cdc, HwRevision::Mlp, cfg.dram.bus_bytes, 64);
        configure(&mut f, vec![0], None);

        let total = f.engine.packed_total_bytes();
        let mut now = SimTime::ZERO;
        let mut addr = f.ephemeral_base;
        let mut packed = Vec::new();
        while addr < f.ephemeral_base + total {
            now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
            let len = 64.min((f.ephemeral_base + total - addr) as usize);
            packed.extend(f.engine.read_packed(addr, len, &f.mem));
            addr += 64;
        }
        assert_eq!(packed, reference_packed(&f, &[0], None));
        let stats = f.engine.stats();
        assert_eq!(stats.frames_fetched, 3); // 3000 rows / 1024 rows per frame
        // Two frame turnovers, plus the reset performed at configuration.
        assert_eq!(stats.epoch_resets, 3);
    }

    #[test]
    fn mvcc_snapshot_filters_rows_during_packing() {
        let mut f = fixture(200, HwRevision::Mlp, MvccConfig::Enabled);
        // Delete every third row at ts 5; snapshot at ts 10 must skip them.
        for row in (0..200).step_by(3) {
            f.table.mark_deleted(&mut f.mem, row, 5).unwrap();
        }
        let snapshot = Some(Snapshot::at(10));
        configure(&mut f, vec![1, 2], snapshot);
        let total = f.engine.packed_total_bytes();
        assert_eq!(total, (200 - 67) * 8); // 67 rows deleted, 2×4-byte columns

        let mut now = SimTime::ZERO;
        let mut addr = f.ephemeral_base;
        while addr < f.ephemeral_base + total {
            now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
            addr += 64;
        }
        let packed = f.engine.read_packed(f.ephemeral_base, total as usize, &f.mem);
        assert_eq!(packed, reference_packed(&f, &[1, 2], snapshot));
        assert!(f.engine.stats().rows_filtered > 0);

        // An earlier snapshot (before the deletes) sees every row.
        let old_snapshot = Some(Snapshot::at(4));
        configure(&mut f, vec![1, 2], old_snapshot);
        assert_eq!(f.engine.packed_total_bytes(), 200 * 8);
    }

    #[test]
    fn prefetchability_is_limited_to_the_resident_frame() {
        let mut f = fixture(100, HwRevision::Mlp, MvccConfig::Disabled);
        configure(&mut f, vec![0], None);
        assert!(!f.engine.line_is_prefetchable(f.ephemeral_base));
        let _ = f
            .engine
            .serve_line(f.ephemeral_base, SimTime::ZERO, &f.mem, &mut f.dram);
        assert!(f.engine.line_is_prefetchable(f.ephemeral_base + 64));
        assert!(!f.engine.line_is_prefetchable(0xDEAD_0000));
    }

    #[test]
    fn configuration_rejects_geometry_beyond_engine_limits() {
        let mut f = fixture(10, HwRevision::Mlp, MvccConfig::Disabled);
        let schema = Schema::benchmark(12, 4, 64);
        let group = ColumnGroup::all(&schema);
        let geometry = TableGeometry::from_schema(
            &schema,
            &group,
            f.table.base_addr(),
            f.ephemeral_base,
            10,
            MvccConfig::Disabled,
            None,
        )
        .unwrap();
        // 13 columns (12 data + filler) exceed the 11-column limit.
        assert!(f.engine.configure(geometry, None).is_err());
    }

    /// Runs a full sequential scan (with per-line functional reads) and
    /// returns everything observable: per-line service times, packed bytes,
    /// engine stats and DRAM stats.
    fn full_scan(
        incremental: bool,
        spm_bytes: Option<usize>,
        mvcc: MvccConfig,
    ) -> (Vec<SimTime>, Vec<u8>, RmeStats, relmem_dram::DramStats) {
        let mut f = fixture(3_000, HwRevision::Mlp, mvcc);
        if let Some(spm) = spm_bytes {
            let mut hw = *f.engine.hw_config();
            hw.data_spm_bytes = spm;
            let cfg = PlatformConfig::zcu102();
            f.engine = RmeEngine::new(hw, cfg.cdc, HwRevision::Mlp, cfg.dram.bus_bytes, 64);
        }
        f.engine.set_incremental(incremental);
        let snapshot = match mvcc {
            MvccConfig::Enabled => Some(Snapshot::at(10)),
            MvccConfig::Disabled => None,
        };
        configure(&mut f, vec![0, 2], snapshot);
        let total = f.engine.packed_total_bytes();
        let mut now = SimTime::ZERO;
        let mut addr = f.ephemeral_base;
        let mut times = Vec::new();
        let mut packed = Vec::new();
        while addr < f.ephemeral_base + total {
            now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
            times.push(now);
            let len = 64.min((f.ephemeral_base + total - addr) as usize);
            packed.extend(f.engine.read_packed(addr, len, &f.mem));
            addr += 64;
        }
        f.engine.finish_pending_fetch(&f.mem, &mut f.dram);
        (times, packed, f.engine.stats(), f.dram.stats().clone())
    }

    /// An incremental multi-frame scan is bit-identical to the synchronous
    /// whole-frame fetch on single-stream traffic: prefix-monotone booking
    /// at frozen dispatch anchors reproduces the exact same descriptor
    /// sequence, so every service time and every counter matches.
    #[test]
    fn incremental_full_scan_is_bit_identical_to_synchronous() {
        let sync = full_scan(false, Some(4 * 1024), MvccConfig::Disabled);
        let evt = full_scan(true, Some(4 * 1024), MvccConfig::Disabled);
        assert_eq!(sync.0, evt.0, "per-line service times must match");
        assert_eq!(sync.1, evt.1, "packed data must match");
        assert_eq!(sync.2, evt.2, "engine stats must match");
        assert_eq!(sync.3, evt.3, "DRAM stats must match");
    }

    /// Same identity with MVCC filtering active: header-inspection traffic
    /// is charged eagerly at activation on both paths.
    #[test]
    fn incremental_scan_matches_synchronous_under_mvcc() {
        let sync = full_scan(false, None, MvccConfig::Enabled);
        let evt = full_scan(true, None, MvccConfig::Enabled);
        assert_eq!(sync.0, evt.0);
        assert_eq!(sync.1, evt.1);
        assert_eq!(sync.2, evt.2);
        assert_eq!(sync.3, evt.3);
    }

    /// A scan abandoned mid-frame books less traffic up front, but
    /// `finish_pending_fetch` settles the remainder so totals match the
    /// synchronous fetch — the invariant whole-system runs rely on at
    /// measurement end.
    #[test]
    fn abandoned_incremental_fetch_settles_to_synchronous_traffic() {
        let run = |incremental: bool| {
            let mut f = fixture(2_000, HwRevision::Mlp, MvccConfig::Disabled);
            f.engine.set_incremental(incremental);
            configure(&mut f, vec![0], None);
            // Demand only the first quarter of the frame, then stop.
            let total = f.engine.packed_total_bytes() / 4;
            let mut now = SimTime::ZERO;
            let mut addr = f.ephemeral_base;
            while addr < f.ephemeral_base + total {
                now = f.engine.serve_line(addr, now, &f.mem, &mut f.dram);
                addr += 64;
            }
            let booked_early = f.dram.stats().accesses;
            f.engine.finish_pending_fetch(&f.mem, &mut f.dram);
            (booked_early, f.dram.stats().accesses, f.engine.stats())
        };
        let (sync_early, sync_total, sync_stats) = run(false);
        let (evt_early, evt_total, evt_stats) = run(true);
        assert!(
            evt_early < sync_early,
            "incremental mode must defer traffic ({evt_early} vs {sync_early})"
        );
        assert_eq!(sync_total, evt_total, "settled traffic totals must match");
        assert_eq!(sync_stats, evt_stats);
    }

    /// Functional reads never observe a half-fetched line: bytes the demand
    /// cursor has not reached come from the memory-packing fallback and are
    /// still correct.
    #[test]
    fn incremental_reads_ahead_of_the_cursor_stay_correct() {
        let mut f = fixture(500, HwRevision::Mlp, MvccConfig::Disabled);
        f.engine.set_incremental(true);
        configure(&mut f, vec![1, 3], None);
        let total = f.engine.packed_total_bytes();
        // Demand exactly one line, leaving the rest of the frame unbooked.
        let _ = f
            .engine
            .serve_line(f.ephemeral_base, SimTime::ZERO, &f.mem, &mut f.dram);
        let packed = f.engine.read_packed(f.ephemeral_base, total as usize, &f.mem);
        assert_eq!(packed, reference_packed(&f, &[1, 3], None));
    }

    #[test]
    #[should_panic(expected = "not part of the programmed ephemeral range")]
    fn serving_an_unowned_address_panics() {
        let mut f = fixture(10, HwRevision::Mlp, MvccConfig::Disabled);
        configure(&mut f, vec![0], None);
        let _ = f.engine.serve_line(0x10, SimTime::ZERO, &f.mem, &mut f.dram);
    }
}
