//! Hardware revisions of the engine (Section 5.2).
//!
//! The paper develops the design in three steps and Figure 6 compares them:
//!
//! * **BSL** — the baseline: each Fetch Unit supports a single outstanding
//!   read transaction and the Writer pushes every extracted chunk to BRAM
//!   individually.
//! * **PCK** — adds a packing register in the Fetch Unit, so the BRAM is
//!   written only once a full cache line worth of packed data is ready.
//! * **MLP** — additionally lets the Reader keep up to 16 independent
//!   outstanding read transactions in flight, turning the engine from
//!   latency-bound into bandwidth-bound.

/// A hardware revision of the RME.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HwRevision {
    /// Baseline design: serial fetches, per-chunk BRAM writes.
    Bsl,
    /// Baseline + packer register in the Fetch Unit.
    Pck,
    /// Packer + memory-level parallelism (16 outstanding reads).
    #[default]
    Mlp,
}

impl HwRevision {
    /// Maximum outstanding read transactions per Fetch Unit Reader.
    pub fn outstanding_reads(&self) -> usize {
        match self {
            HwRevision::Bsl | HwRevision::Pck => 1,
            HwRevision::Mlp => 16,
        }
    }

    /// Whether extracted chunks are packed into a full line before being
    /// written to the Reorganization Buffer.
    pub fn has_packer(&self) -> bool {
        !matches!(self, HwRevision::Bsl)
    }

    /// Short label used in reports (matches the paper's figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            HwRevision::Bsl => "BSL",
            HwRevision::Pck => "PCK",
            HwRevision::Mlp => "MLP",
        }
    }

    /// All revisions in the order the paper presents them.
    pub fn all() -> [HwRevision; 3] {
        [HwRevision::Bsl, HwRevision::Pck, HwRevision::Mlp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revision_parameters_match_the_paper() {
        assert_eq!(HwRevision::Bsl.outstanding_reads(), 1);
        assert_eq!(HwRevision::Pck.outstanding_reads(), 1);
        assert_eq!(HwRevision::Mlp.outstanding_reads(), 16);
        assert!(!HwRevision::Bsl.has_packer());
        assert!(HwRevision::Pck.has_packer());
        assert!(HwRevision::Mlp.has_packer());
    }

    #[test]
    fn default_is_mlp_and_labels_match() {
        assert_eq!(HwRevision::default(), HwRevision::Mlp);
        assert_eq!(HwRevision::all().map(|r| r.label()), ["BSL", "PCK", "MLP"]);
    }
}
