//! The RME configuration port.
//!
//! The DBMS programs the engine at runtime by writing a small register file;
//! Table 1 of the paper gives the exact address map, reproduced here:
//!
//! | Parameter            | Symbol | Address             |
//! |----------------------|--------|---------------------|
//! | Row size             | `R`    | `base + 0x00`       |
//! | Row count            | `N`    | `base + 0x04`       |
//! | Software reset       | `SW`   | `base + 0x08`       |
//! | Enabled column count | `Q`    | `base + 0x0c`       |
//! | Column width         | `CA_j` | `base + 0x10 + 2·j` |
//! | Column offset        | `OA_j` | `base + 0x26 + 2·j` |
//! | Frame number         | `F`    | `base + 0x3c`       |
//!
//! `R`, `N`, `Q` and `F` are 32-bit registers; `CA_j` and `OA_j` are 16-bit
//! registers, eleven of each (`j ∈ [0, 11)`). As an implementation extension
//! (the paper passes them out of band) the prototype also exposes the source
//! base address at `0x40`/`0x44` and the ephemeral base address at
//! `0x48`/`0x4c` as 32-bit halves of 64-bit values.

use crate::geometry::{ColumnSpec, TableGeometry};

/// Register offsets of the configuration port (Table 1).
pub mod regs {
    /// Row size `R`.
    pub const ROW_SIZE: u64 = 0x00;
    /// Row count `N`.
    pub const ROW_COUNT: u64 = 0x04;
    /// Software reset `SW`.
    pub const SW_RESET: u64 = 0x08;
    /// Enabled columns `Q`.
    pub const ENABLED_COLUMNS: u64 = 0x0c;
    /// First column width register `CA_0` (16-bit, stride 2).
    pub const COLUMN_WIDTH_BASE: u64 = 0x10;
    /// First column offset register `OA_0` (16-bit, stride 2).
    pub const COLUMN_OFFSET_BASE: u64 = 0x26;
    /// Frame number `F`.
    pub const FRAME_NUMBER: u64 = 0x3c;
    /// Source table base address, low half (extension).
    pub const SOURCE_BASE_LO: u64 = 0x40;
    /// Source table base address, high half (extension).
    pub const SOURCE_BASE_HI: u64 = 0x44;
    /// Ephemeral range base address, low half (extension).
    pub const EPHEMERAL_BASE_LO: u64 = 0x48;
    /// Ephemeral range base address, high half (extension).
    pub const EPHEMERAL_BASE_HI: u64 = 0x4c;
    /// Maximum number of columns of interest.
    pub const MAX_COLUMNS: usize = 11;
}

/// The memory-mapped register file of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPort {
    row_size: u32,
    row_count: u32,
    enabled_columns: u32,
    column_widths: [u16; regs::MAX_COLUMNS],
    column_offsets: [u16; regs::MAX_COLUMNS],
    frame_number: u32,
    source_base: u64,
    ephemeral_base: u64,
    /// Set by a write to `SW_RESET`; cleared when the engine consumes it.
    reset_requested: bool,
    writes: u64,
}

impl Default for ConfigPort {
    fn default() -> Self {
        ConfigPort {
            row_size: 0,
            row_count: 0,
            enabled_columns: 0,
            column_widths: [0; regs::MAX_COLUMNS],
            column_offsets: [0; regs::MAX_COLUMNS],
            frame_number: 0,
            source_base: 0,
            ephemeral_base: 0,
            reset_requested: false,
            writes: 0,
        }
    }
}

impl ConfigPort {
    /// Creates an all-zero register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a register at `offset` (relative to the port base).
    ///
    /// # Panics
    /// Panics on an unmapped offset — the hardware would raise a bus error.
    pub fn write(&mut self, offset: u64, value: u32) {
        self.writes += 1;
        match offset {
            regs::ROW_SIZE => self.row_size = value,
            regs::ROW_COUNT => self.row_count = value,
            regs::SW_RESET => self.reset_requested = true,
            regs::ENABLED_COLUMNS => self.enabled_columns = value,
            regs::FRAME_NUMBER => self.frame_number = value,
            regs::SOURCE_BASE_LO => {
                self.source_base = (self.source_base & !0xFFFF_FFFF) | value as u64
            }
            regs::SOURCE_BASE_HI => {
                self.source_base = (self.source_base & 0xFFFF_FFFF) | ((value as u64) << 32)
            }
            regs::EPHEMERAL_BASE_LO => {
                self.ephemeral_base = (self.ephemeral_base & !0xFFFF_FFFF) | value as u64
            }
            regs::EPHEMERAL_BASE_HI => {
                self.ephemeral_base = (self.ephemeral_base & 0xFFFF_FFFF) | ((value as u64) << 32)
            }
            o if (regs::COLUMN_WIDTH_BASE..regs::COLUMN_WIDTH_BASE + 2 * regs::MAX_COLUMNS as u64)
                .contains(&o)
                && (o - regs::COLUMN_WIDTH_BASE).is_multiple_of(2) =>
            {
                let j = ((o - regs::COLUMN_WIDTH_BASE) / 2) as usize;
                self.column_widths[j] = value as u16;
            }
            o if (regs::COLUMN_OFFSET_BASE
                ..regs::COLUMN_OFFSET_BASE + 2 * regs::MAX_COLUMNS as u64)
                .contains(&o)
                && (o - regs::COLUMN_OFFSET_BASE).is_multiple_of(2) =>
            {
                let j = ((o - regs::COLUMN_OFFSET_BASE) / 2) as usize;
                self.column_offsets[j] = value as u16;
            }
            _ => panic!("write to unmapped RME configuration register 0x{offset:x}"),
        }
    }

    /// Reads a register back.
    ///
    /// # Panics
    /// Panics on an unmapped offset.
    pub fn read(&self, offset: u64) -> u32 {
        match offset {
            regs::ROW_SIZE => self.row_size,
            regs::ROW_COUNT => self.row_count,
            regs::SW_RESET => self.reset_requested as u32,
            regs::ENABLED_COLUMNS => self.enabled_columns,
            regs::FRAME_NUMBER => self.frame_number,
            regs::SOURCE_BASE_LO => self.source_base as u32,
            regs::SOURCE_BASE_HI => (self.source_base >> 32) as u32,
            regs::EPHEMERAL_BASE_LO => self.ephemeral_base as u32,
            regs::EPHEMERAL_BASE_HI => (self.ephemeral_base >> 32) as u32,
            o if (regs::COLUMN_WIDTH_BASE..regs::COLUMN_WIDTH_BASE + 2 * regs::MAX_COLUMNS as u64)
                .contains(&o)
                && (o - regs::COLUMN_WIDTH_BASE).is_multiple_of(2) =>
            {
                self.column_widths[((o - regs::COLUMN_WIDTH_BASE) / 2) as usize] as u32
            }
            o if (regs::COLUMN_OFFSET_BASE
                ..regs::COLUMN_OFFSET_BASE + 2 * regs::MAX_COLUMNS as u64)
                .contains(&o)
                && (o - regs::COLUMN_OFFSET_BASE).is_multiple_of(2) =>
            {
                self.column_offsets[((o - regs::COLUMN_OFFSET_BASE) / 2) as usize] as u32
            }
            _ => panic!("read of unmapped RME configuration register 0x{offset:x}"),
        }
    }

    /// Total number of register writes performed (configuration cost).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Consumes a pending software reset request, returning whether one was
    /// pending.
    pub fn take_reset(&mut self) -> bool {
        std::mem::take(&mut self.reset_requested)
    }

    /// Current frame number register.
    pub fn frame_number(&self) -> u32 {
        self.frame_number
    }

    /// Programs the whole register file from a [`TableGeometry`] the way the
    /// software layer (an ephemeral-variable registration) would: one write
    /// per Table 1 register.
    pub fn program(&mut self, geometry: &TableGeometry) {
        self.write(regs::ROW_SIZE, geometry.row_bytes as u32);
        self.write(regs::ROW_COUNT, geometry.row_count as u32);
        self.write(regs::ENABLED_COLUMNS, geometry.num_columns() as u32);
        for (j, col) in geometry.columns.iter().enumerate() {
            self.write(regs::COLUMN_WIDTH_BASE + 2 * j as u64, col.width as u32);
            self.write(regs::COLUMN_OFFSET_BASE + 2 * j as u64, col.oa_delta as u32);
        }
        self.write(regs::FRAME_NUMBER, 0);
        self.write(regs::SOURCE_BASE_LO, geometry.source_base as u32);
        self.write(regs::SOURCE_BASE_HI, (geometry.source_base >> 32) as u32);
        self.write(regs::EPHEMERAL_BASE_LO, geometry.ephemeral_base as u32);
        self.write(
            regs::EPHEMERAL_BASE_HI,
            (geometry.ephemeral_base >> 32) as u32,
        );
    }

    /// Decodes the registers back into a geometry (the engine-side view).
    /// MVCC information travels out of band (it is part of the row layout
    /// the software programmed), so the decoded geometry has no snapshot.
    pub fn decode(&self) -> TableGeometry {
        let columns = (0..self.enabled_columns as usize)
            .map(|j| ColumnSpec {
                width: self.column_widths[j] as usize,
                oa_delta: self.column_offsets[j] as usize,
            })
            .collect();
        TableGeometry {
            row_bytes: self.row_size as usize,
            row_count: self.row_count as u64,
            columns,
            source_base: self.source_base,
            ephemeral_base: self.ephemeral_base,
            mvcc_header_bytes: 0,
            snapshot: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmem_storage::{ColumnGroup, MvccConfig, Schema};

    fn geometry() -> TableGeometry {
        let schema = Schema::listing1();
        let group = ColumnGroup::new(vec![5, 7, 8]).unwrap();
        TableGeometry::from_schema(
            &schema,
            &group,
            0x8000_1000,
            0x1_2000_0000,
            44_000,
            MvccConfig::Disabled,
            None,
        )
        .unwrap()
    }

    #[test]
    fn register_map_matches_table_1() {
        assert_eq!(regs::ROW_SIZE, 0x00);
        assert_eq!(regs::ROW_COUNT, 0x04);
        assert_eq!(regs::SW_RESET, 0x08);
        assert_eq!(regs::ENABLED_COLUMNS, 0x0c);
        assert_eq!(regs::COLUMN_WIDTH_BASE, 0x10);
        assert_eq!(regs::COLUMN_OFFSET_BASE, 0x26);
        assert_eq!(regs::FRAME_NUMBER, 0x3c);
        assert_eq!(regs::MAX_COLUMNS, 11);
        // j-th width register address is base + 0x10 + j*0x2.
        let mut port = ConfigPort::new();
        port.write(regs::COLUMN_WIDTH_BASE + 2 * 10, 64);
        assert_eq!(port.read(0x10 + 0x14), 64);
    }

    #[test]
    fn program_decode_roundtrip() {
        let g = geometry();
        let mut port = ConfigPort::new();
        port.program(&g);
        let decoded = port.decode();
        assert_eq!(decoded.row_bytes, g.row_bytes);
        assert_eq!(decoded.row_count, g.row_count);
        assert_eq!(decoded.columns, g.columns);
        assert_eq!(decoded.source_base, g.source_base);
        assert_eq!(decoded.ephemeral_base, g.ephemeral_base);
        // Programming Q columns costs 4 + 2Q + 1 + 4 register writes.
        assert_eq!(port.writes(), 4 + 2 * 3 + 4);
    }

    #[test]
    fn reset_is_edge_triggered() {
        let mut port = ConfigPort::new();
        assert!(!port.take_reset());
        port.write(regs::SW_RESET, 1);
        assert_eq!(port.read(regs::SW_RESET), 1);
        assert!(port.take_reset());
        assert!(!port.take_reset());
    }

    #[test]
    fn sixty_four_bit_bases_split_across_two_registers() {
        let mut port = ConfigPort::new();
        port.write(regs::SOURCE_BASE_LO, 0xDEAD_BEEF);
        port.write(regs::SOURCE_BASE_HI, 0x1);
        assert_eq!(port.decode().source_base, 0x1_DEAD_BEEF);
        assert_eq!(port.read(regs::SOURCE_BASE_LO), 0xDEAD_BEEF);
        assert_eq!(port.read(regs::SOURCE_BASE_HI), 0x1);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_write_panics() {
        ConfigPort::new().write(0x9999, 1);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn misaligned_column_register_panics() {
        // Odd offset inside the CA_j range is not a register.
        ConfigPort::new().write(regs::COLUMN_WIDTH_BASE + 1, 1);
    }
}
