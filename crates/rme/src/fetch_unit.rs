//! Fetch Units: the Reader / Column Extractor / Writer pipeline.
//!
//! Each Fetch Unit receives descriptors from the Requestor and, for each
//! one, (1) issues a variable-length burst read towards main memory, (2)
//! extracts the useful bytes from the returned beats, and (3) writes the
//! packed chunk into the Reorganization Buffer. The unit's Reader supports a
//! revision-dependent number of outstanding read transactions (1 for
//! BSL/PCK, 16 for MLP); the extractor and writer are shared per unit, so
//! chunk post-processing serialises within a unit even when many reads are
//! in flight.

use relmem_dram::{DramModel, MemRequest, PhysicalMemory};
use relmem_sim::{ClockDomain, Resource, RmeHwConfig, SimTime};

use crate::descriptor::Descriptor;
use crate::extractor::extract;
use crate::revision::HwRevision;

/// The outcome of processing one descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkResult {
    /// The extracted, packed bytes (length = descriptor `len`).
    pub data: Vec<u8>,
    /// Time at which the chunk has been written to the Reorganization
    /// Buffer.
    pub written_at: SimTime,
    /// Bus beats fetched from DRAM for this chunk.
    pub beats: usize,
}

/// One Fetch Unit.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    /// Reader slots: completion times of outstanding read transactions.
    slots: Vec<SimTime>,
    /// The unit's extract/pack/write pipeline (serial within the unit).
    pipeline: Resource,
    /// PL-side ingest port of this unit (beats cross at one per PL cycle).
    port: Resource,
    pl: ClockDomain,
    revision: HwRevision,
    cfg: RmeHwConfig,
    bus_bytes: usize,
    /// Round-trip latency of a PL-originated read through the PS
    /// interconnect and DDR controller (hidden by outstanding reads).
    read_latency: SimTime,
    processed: u64,
}

impl FetchUnit {
    /// Creates a Fetch Unit.
    pub fn new(
        cfg: RmeHwConfig,
        revision: HwRevision,
        pl: ClockDomain,
        bus_bytes: usize,
        read_latency: SimTime,
    ) -> Self {
        FetchUnit {
            slots: vec![SimTime::ZERO; revision.outstanding_reads()],
            pipeline: Resource::new("fetch-unit-pipeline"),
            port: Resource::new("fetch-unit-port"),
            pl,
            revision,
            cfg,
            bus_bytes,
            read_latency,
            processed: 0,
        }
    }

    /// Number of descriptors processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The earliest time this unit could accept another descriptor (used by
    /// the engine to pick the least-loaded unit).
    pub fn earliest_slot(&self) -> SimTime {
        self.slots.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Processes a descriptor dispatched at `dispatch_at`.
    ///
    /// Functional effect: reads the burst from `mem` and extracts the useful
    /// bytes. Timing effect: books a Reader slot, the DRAM controller, the
    /// unit's ingest port and its extract/write pipeline.
    pub fn process(
        &mut self,
        descriptor: &Descriptor,
        dispatch_at: SimTime,
        mem: &PhysicalMemory,
        dram: &mut DramModel,
    ) -> ChunkResult {
        self.processed += 1;
        let burst_bytes = descriptor.burst_bytes(self.bus_bytes);

        // 1. Reader: wait for a free outstanding-transaction slot.
        let (slot_idx, slot_free) = self
            .slots
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("at least one reader slot");
        let issue = dispatch_at.max(slot_free);

        // 2. Main-memory burst (timing) + payload (functional). A read
        //    launched from the PL additionally pays the PS-interconnect
        //    round-trip latency; with many outstanding reads it is hidden.
        let completion = dram.access(
            MemRequest::new(descriptor.raddr, burst_bytes, issue)
                .with_requestor(relmem_dram::Requestor::Rme),
        );
        let data_at_unit = completion.finish + self.read_latency;
        let payload = mem.read(descriptor.raddr, burst_bytes);

        // 3. The beats cross the unit's PL-side read-data port; the landing
        //    FIFO drains `port_beats_per_cycle` beats per PL cycle.
        let beats_per_cycle = self.cfg.port_beats_per_cycle.max(1);
        let port_time = SimTime::from_picos(
            self.pl.cycle().as_picos() * descriptor.rburst as u64 / beats_per_cycle,
        );
        let (_, port_done) = self.port.acquire(data_at_unit, port_time);

        // 4. Column Extractor + Writer occupy the unit's pipeline. With the
        //    packer (PCK/MLP) the extractor streams one beat per PL cycle and
        //    the SPM write is folded into the same pipeline stage, so the
        //    unit sustains one beat of throughput per cycle. Without it
        //    (BSL) every chunk performs its own SPM write and the pipeline
        //    stalls for the write turnaround.
        let pipeline_cycles = if self.revision.has_packer() {
            self.cfg.extract_cycles_per_beat * descriptor.rburst as u64
        } else {
            self.cfg.extract_cycles_per_beat * descriptor.rburst as u64
                + self.cfg.spm_access_cycles * descriptor.rburst as u64
                + 2
        };
        let pipeline_time = self.pl.cycles(pipeline_cycles);
        let (_, written_at) = self.pipeline.acquire(port_done, pipeline_time);

        // 5. The Reader slot stays occupied until the whole chunk has
        //    retired (this is what serialises BSL/PCK).
        self.slots[slot_idx] = written_at;

        let data = extract(descriptor, payload, self.bus_bytes);
        ChunkResult {
            data,
            written_at,
            beats: descriptor.rburst,
        }
    }

    /// Clears all timing state (between measured runs).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = SimTime::ZERO;
        }
        self.pipeline.reset();
        self.port.reset();
        self.processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::descriptor_for;
    use crate::geometry::{ColumnSpec, TableGeometry};
    use relmem_sim::DramConfig;

    fn setup(rows: u64) -> (PhysicalMemory, DramModel, TableGeometry) {
        let mut mem = PhysicalMemory::new(1 << 20);
        let base = mem.alloc(64 * rows as usize, 64);
        // Fill with a recognisable pattern: byte value = address & 0xff.
        for i in 0..64 * rows {
            mem.write(base + i, &[(i & 0xff) as u8]);
        }
        let dram = DramModel::new(DramConfig::default());
        let geometry = TableGeometry {
            row_bytes: 64,
            row_count: rows,
            columns: vec![ColumnSpec { width: 4, oa_delta: 8 }],
            source_base: base,
            ephemeral_base: 0,
            mvcc_header_bytes: 0,
            snapshot: None,
        };
        (mem, dram, geometry)
    }

    fn unit(revision: HwRevision) -> FetchUnit {
        FetchUnit::new(
            RmeHwConfig::default(),
            revision,
            ClockDomain::new("pl", 100.0),
            16,
            SimTime::from_nanos(200),
        )
    }

    #[test]
    fn extracts_the_right_bytes() {
        let (mem, mut dram, g) = setup(16);
        let mut fu = unit(HwRevision::Mlp);
        let d = descriptor_for(&g, 2, 2, 0, 16);
        let chunk = fu.process(&d, SimTime::ZERO, &mem, &mut dram);
        // Row 2, offset 8: source bytes (2*64 + 8 ..) & 0xff.
        assert_eq!(chunk.data, vec![136, 137, 138, 139]);
        assert_eq!(chunk.beats, 1);
        assert_eq!(fu.processed(), 1);
    }

    #[test]
    fn mlp_overlaps_where_bsl_serialises() {
        let (mem, _, g) = setup(256);
        let descriptors: Vec<_> = (0..64u64).map(|i| descriptor_for(&g, i, i, 0, 16)).collect();

        let run = |rev: HwRevision| {
            let mut dram = DramModel::new(DramConfig::default());
            let mut fu = unit(rev);
            let mut last = SimTime::ZERO;
            for d in &descriptors {
                let c = fu.process(d, SimTime::ZERO, &mem, &mut dram);
                last = last.max(c.written_at);
            }
            last
        };

        let bsl = run(HwRevision::Bsl);
        let pck = run(HwRevision::Pck);
        let mlp = run(HwRevision::Mlp);
        assert!(
            mlp.as_nanos_f64() < 0.25 * bsl.as_nanos_f64(),
            "MLP ({mlp}) should be far faster than BSL ({bsl})"
        );
        assert!(pck < bsl, "the packer alone must already help");
    }

    #[test]
    fn reset_restores_idle_state() {
        let (mem, mut dram, g) = setup(4);
        let mut fu = unit(HwRevision::Bsl);
        let d = descriptor_for(&g, 0, 0, 0, 16);
        fu.process(&d, SimTime::ZERO, &mem, &mut dram);
        assert!(fu.earliest_slot() > SimTime::ZERO);
        fu.reset();
        assert_eq!(fu.earliest_slot(), SimTime::ZERO);
        assert_eq!(fu.processed(), 0);
    }
}
