//! FPGA resource estimation (the model behind Table 2).
//!
//! We cannot run Vivado synthesis in this environment, so Table 2 is
//! reproduced with an analytical area model: each engine module contributes
//! LUTs/FFs proportional to its structural parameters, and BRAM usage is
//! dominated by the Data and Metadata SPMs. The per-module constants are
//! calibrated so that the default MLP configuration lands on the paper's
//! reported utilisation (LUT 2.78 %, FF 0.68 %, BRAM 60.69 %, DSP 0.08 % of
//! a ZCU102), and the model then extrapolates to other configurations — the
//! "more fetch units / smaller boards" discussion of Section 6.4.

use relmem_sim::RmeHwConfig;

use crate::revision::HwRevision;

/// Total resources of the ZCU102's XCZU9EG device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl DeviceCapacity {
    /// The ZCU102 development board (XCZU9EG).
    pub fn zcu102() -> Self {
        DeviceCapacity {
            luts: 274_080,
            ffs: 548_160,
            bram36: 912,
            dsps: 2_520,
        }
    }

    /// The much smaller Zybo Z7-10 (XC7Z010) the paper mentions as a
    /// possible low-end target.
    pub fn zybo_z7_10() -> Self {
        DeviceCapacity {
            luts: 17_600,
            ffs: 35_200,
            bram36: 60,
            dsps: 80,
        }
    }
}

/// Absolute resource usage of one engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaUsage {
    /// Look-up tables used.
    pub luts: u64,
    /// Flip-flops used.
    pub ffs: u64,
    /// 36 Kb BRAM blocks used.
    pub bram36: u64,
    /// DSP slices used.
    pub dsps: u64,
}

/// Utilisation report: usage as a percentage of a device's capacity
/// (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Absolute usage.
    pub usage: AreaUsage,
    /// LUT utilisation in percent.
    pub lut_pct: f64,
    /// FF utilisation in percent.
    pub ff_pct: f64,
    /// BRAM utilisation in percent.
    pub bram_pct: f64,
    /// DSP utilisation in percent.
    pub dsp_pct: f64,
}

impl AreaReport {
    /// Whether the design fits the device at all.
    pub fn fits(&self) -> bool {
        self.lut_pct <= 100.0 && self.ff_pct <= 100.0 && self.bram_pct <= 100.0 && self.dsp_pct <= 100.0
    }
}

/// Estimates the absolute resource usage of an engine configuration.
pub fn estimate_usage(cfg: &RmeHwConfig, revision: HwRevision) -> AreaUsage {
    // BRAM: a 36 Kb block holds 4 KiB; the Data SPM is dual-ported (one
    // write port fed by the Fetch Units, one read port towards the Trapper),
    // which on UltraScale+ costs roughly 10 % extra blocks for banking.
    let data_blocks = (cfg.data_spm_bytes as u64).div_ceil(4 * 1024);
    let data_blocks = data_blocks + data_blocks / 10;
    let meta_blocks = (cfg.metadata_spm_bytes as u64).div_ceil(4 * 1024);
    // Each Fetch Unit keeps per-outstanding-transaction reorder/landing
    // buffers of one bus word each; they are small but become BRAM once the
    // outstanding count grows.
    let fifo_blocks = (cfg.fetch_units as u64 * revision.outstanding_reads() as u64).div_ceil(16);
    let bram36 = data_blocks + meta_blocks + fifo_blocks;

    // Logic: fixed control (Trapper + Monitor Bypass + configuration port) +
    // per-fetch-unit data path + per-outstanding-transaction tracking +
    // per-column configuration decoding.
    let base_luts = 2_600u64;
    let per_unit_luts = 950u64;
    let per_outstanding_luts = 18u64;
    let per_column_luts = 35u64;
    let luts = base_luts
        + per_unit_luts * cfg.fetch_units as u64
        + per_outstanding_luts * (cfg.fetch_units * revision.outstanding_reads()) as u64
        + per_column_luts * cfg.max_columns as u64;

    let base_ffs = 1_400u64;
    let per_unit_ffs = 520u64;
    let per_outstanding_ffs = 9u64;
    let ffs = base_ffs
        + per_unit_ffs * cfg.fetch_units as u64
        + per_outstanding_ffs * (cfg.fetch_units * revision.outstanding_reads()) as u64;

    // The address arithmetic of equations (1)–(6) maps to two DSP slices.
    let dsps = 2;

    AreaUsage {
        luts,
        ffs,
        bram36,
        dsps,
    }
}

/// Estimates utilisation of `device` for an engine configuration — the
/// reproduction of Table 2.
pub fn estimate_area(cfg: &RmeHwConfig, revision: HwRevision, device: DeviceCapacity) -> AreaReport {
    let usage = estimate_usage(cfg, revision);
    let pct = |used: u64, total: u64| 100.0 * used as f64 / total as f64;
    AreaReport {
        usage,
        lut_pct: pct(usage.luts, device.luts),
        ff_pct: pct(usage.ffs, device.ffs),
        bram_pct: pct(usage.bram36, device.bram36),
        dsp_pct: pct(usage.dsps, device.dsps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mlp_matches_table_2_within_tolerance() {
        let report = estimate_area(
            &RmeHwConfig::default(),
            HwRevision::Mlp,
            DeviceCapacity::zcu102(),
        );
        // Paper: LUT 2.78 %, FF 0.68 %, BRAM 60.69 %, DSP 0.08 %.
        assert!((report.lut_pct - 2.78).abs() < 0.5, "LUT {}", report.lut_pct);
        assert!((report.ff_pct - 0.68).abs() < 0.2, "FF {}", report.ff_pct);
        assert!((report.bram_pct - 60.69).abs() < 4.0, "BRAM {}", report.bram_pct);
        assert!((report.dsp_pct - 0.08).abs() < 0.05, "DSP {}", report.dsp_pct);
        assert!(report.fits());
    }

    #[test]
    fn bsl_uses_no_more_logic_than_mlp() {
        let cfg = RmeHwConfig::default();
        let bsl = estimate_usage(&cfg, HwRevision::Bsl);
        let mlp = estimate_usage(&cfg, HwRevision::Mlp);
        assert!(bsl.luts < mlp.luts);
        assert!(bsl.ffs < mlp.ffs);
        assert!(bsl.bram36 <= mlp.bram36);
    }

    #[test]
    fn area_scales_with_fetch_units_and_spm() {
        let small = RmeHwConfig {
            fetch_units: 1,
            data_spm_bytes: 256 * 1024,
            ..RmeHwConfig::default()
        };
        let big = RmeHwConfig {
            fetch_units: 8,
            ..RmeHwConfig::default()
        };
        let s = estimate_usage(&small, HwRevision::Mlp);
        let b = estimate_usage(&big, HwRevision::Mlp);
        assert!(s.luts < b.luts);
        assert!(s.bram36 < b.bram36);
    }

    #[test]
    fn fits_on_a_small_board_only_with_a_small_spm() {
        // The paper argues the design could fit a Zybo Z7-10 — but only if
        // the SPMs are shrunk to the smaller device's BRAM budget.
        let shrunk = RmeHwConfig {
            data_spm_bytes: 128 * 1024,
            metadata_spm_bytes: 8 * 1024,
            fetch_units: 2,
            ..RmeHwConfig::default()
        };
        let report = estimate_area(&shrunk, HwRevision::Mlp, DeviceCapacity::zybo_z7_10());
        assert!(report.fits(), "{report:?}");
        let full = estimate_area(
            &RmeHwConfig::default(),
            HwRevision::Mlp,
            DeviceCapacity::zybo_z7_10(),
        );
        assert!(!full.fits());
    }
}
