//! The Reorganization Buffer: Data SPM + Metadata SPM.
//!
//! Extracted column chunks are written into the Data SPM at the packed
//! offset the Requestor computed; the Metadata SPM keeps, for every cache
//! line of packed data, the tuple `{P, K, ID}`: the epoch the line belongs
//! to, the number of valid bytes accumulated so far, and the ID of a stalled
//! CPU transaction waiting for it (if any). A line is complete when its
//! valid-byte count reaches the line size *and* its epoch matches the
//! engine's current epoch; bumping the epoch therefore invalidates the whole
//! buffer in a single cycle — the lightweight reset used when moving to the
//! next frame of a table larger than the SPM.

use relmem_sim::SimTime;

/// Per-line metadata (the Metadata SPM entry `{P, K, ID}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LineMeta {
    /// Epoch the line's data belongs to (`P`).
    epoch: u64,
    /// Valid bytes accumulated (`K`).
    valid_bytes: u32,
    /// Stalled transaction ID, if a CPU request is waiting on this line.
    pending_id: Option<u16>,
    /// Time at which the line became complete (timing-model companion of
    /// the completion bit).
    complete_at: SimTime,
}

/// The Data + Metadata scratch-pad memories.
#[derive(Debug, Clone)]
pub struct ReorganizationBuffer {
    line_bytes: usize,
    data: Vec<u8>,
    meta: Vec<LineMeta>,
    epoch: u64,
    /// Statistics: completed lines and epoch resets.
    lines_completed: u64,
    resets: u64,
}

impl ReorganizationBuffer {
    /// Creates a buffer of `capacity_bytes` data SPM, organised in
    /// `line_bytes` lines.
    pub fn new(capacity_bytes: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        assert!(capacity_bytes.is_multiple_of(line_bytes) && capacity_bytes > 0);
        let lines = capacity_bytes / line_bytes;
        ReorganizationBuffer {
            line_bytes,
            data: vec![0u8; capacity_bytes],
            meta: vec![LineMeta::default(); lines],
            // Start at epoch 1 so that the all-zero metadata is "stale".
            epoch: 1,
            lines_completed: 0,
            resets: 0,
        }
    }

    /// Capacity of the Data SPM in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.data.len()
    }

    /// Number of cache lines the buffer holds.
    pub fn num_lines(&self) -> usize {
        self.meta.len()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of lines that reached completion since construction.
    pub fn lines_completed(&self) -> u64 {
        self.lines_completed
    }

    /// Number of epoch resets performed.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Invalidates every line by bumping the epoch — the single-cycle
    /// software-triggered reset of Section 5.
    pub fn reset_epoch(&mut self) {
        self.epoch += 1;
        self.resets += 1;
    }

    /// Writes an extracted chunk at `offset` bytes within the buffer,
    /// arriving at `when`. Returns the indices of lines that became complete
    /// as a result.
    ///
    /// # Panics
    /// Panics if the chunk does not fit in the buffer.
    pub fn write_chunk(&mut self, offset: usize, bytes: &[u8], when: SimTime) -> Vec<usize> {
        assert!(
            offset + bytes.len() <= self.data.len(),
            "chunk [{offset}, {}) exceeds SPM capacity {}",
            offset + bytes.len(),
            self.data.len()
        );
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);

        let mut completed = Vec::new();
        let first_line = offset / self.line_bytes;
        let last_line = (offset + bytes.len() - 1) / self.line_bytes;
        for line in first_line..=last_line {
            let line_start = line * self.line_bytes;
            let line_end = line_start + self.line_bytes;
            let overlap =
                (offset + bytes.len()).min(line_end) - offset.max(line_start);
            let meta = &mut self.meta[line];
            if meta.epoch != self.epoch {
                // First write of this epoch: start counting from zero.
                meta.epoch = self.epoch;
                meta.valid_bytes = 0;
                meta.complete_at = SimTime::ZERO;
                meta.pending_id = meta.pending_id.take();
            }
            meta.valid_bytes += overlap as u32;
            meta.complete_at = meta.complete_at.max(when);
            debug_assert!(
                meta.valid_bytes as usize <= self.line_bytes,
                "line {line} overfilled"
            );
            if meta.valid_bytes as usize == self.line_bytes {
                self.lines_completed += 1;
                completed.push(line);
            }
        }
        completed
    }

    /// Marks a line complete without data movement (used when a line is
    /// known to be shorter than a full cache line — the tail of the packed
    /// projection — or when prewarming for "hot" measurements).
    pub fn force_complete(&mut self, line: usize, when: SimTime) {
        let line_bytes = self.line_bytes as u32;
        let meta = &mut self.meta[line];
        if meta.epoch != self.epoch || meta.valid_bytes != line_bytes {
            self.lines_completed += 1;
        }
        meta.epoch = self.epoch;
        meta.valid_bytes = line_bytes;
        meta.complete_at = meta.complete_at.max(when);
    }

    /// Whether a line is complete in the current epoch.
    pub fn is_complete(&self, line: usize) -> bool {
        let meta = &self.meta[line];
        meta.epoch == self.epoch && meta.valid_bytes as usize == self.line_bytes
    }

    /// The time a complete line became available (ZERO for prewarmed lines).
    /// Returns `None` if the line is not complete in the current epoch.
    pub fn completion_time(&self, line: usize) -> Option<SimTime> {
        self.is_complete(line).then(|| self.meta[line].complete_at)
    }

    /// Records that a CPU transaction with `id` is stalled on `line`
    /// (Reorganization Buffer miss). Returns the previously stalled ID, if
    /// the hardware would have had to chain them.
    pub fn stall(&mut self, line: usize, id: u16) -> Option<u16> {
        self.meta[line].pending_id.replace(id)
    }

    /// Takes the stalled transaction ID of a line, if any (called when the
    /// line completes so the Trapper can answer it).
    pub fn take_stalled(&mut self, line: usize) -> Option<u16> {
        self.meta[line].pending_id.take()
    }

    /// Reads a full line of packed data.
    pub fn read_line(&self, line: usize) -> &[u8] {
        let start = line * self.line_bytes;
        &self.data[start..start + self.line_bytes]
    }

    /// Reads an arbitrary byte range of the packed data (for tests and for
    /// the functional path of partially filled tail lines).
    pub fn read_bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn chunks_accumulate_until_the_line_completes() {
        let mut buf = ReorganizationBuffer::new(256, 64);
        assert!(!buf.is_complete(0));
        let done = buf.write_chunk(0, &[1u8; 32], ns(10));
        assert!(done.is_empty());
        assert!(!buf.is_complete(0));
        let done = buf.write_chunk(32, &[2u8; 32], ns(25));
        assert_eq!(done, vec![0]);
        assert!(buf.is_complete(0));
        assert_eq!(buf.completion_time(0), Some(ns(25)));
        assert_eq!(&buf.read_line(0)[..2], &[1, 1]);
        assert_eq!(&buf.read_line(0)[32..34], &[2, 2]);
        assert_eq!(buf.lines_completed(), 1);
    }

    #[test]
    fn a_chunk_spanning_two_lines_feeds_both() {
        let mut buf = ReorganizationBuffer::new(256, 64);
        buf.write_chunk(0, &[7u8; 60], ns(1));
        buf.write_chunk(100, &[8u8; 28], ns(2));
        // Bytes 60..128 complete both line 0 (4 missing bytes) and line 1.
        let done = buf.write_chunk(60, &[9u8; 40], ns(3));
        assert_eq!(done, vec![0, 1]);
        assert_eq!(buf.completion_time(1), Some(ns(3)));
    }

    #[test]
    fn epoch_reset_invalidates_in_one_step() {
        let mut buf = ReorganizationBuffer::new(128, 64);
        buf.write_chunk(0, &[1u8; 64], ns(5));
        assert!(buf.is_complete(0));
        buf.reset_epoch();
        assert!(!buf.is_complete(0));
        assert_eq!(buf.completion_time(0), None);
        assert_eq!(buf.resets(), 1);
        // Writing after the reset starts a fresh count.
        let done = buf.write_chunk(0, &[2u8; 64], ns(50));
        assert_eq!(done, vec![0]);
        assert_eq!(buf.completion_time(0), Some(ns(50)));
    }

    #[test]
    fn stalled_ids_are_tracked_per_line() {
        let mut buf = ReorganizationBuffer::new(128, 64);
        assert_eq!(buf.stall(1, 7), None);
        assert_eq!(buf.stall(1, 9), Some(7));
        assert_eq!(buf.take_stalled(1), Some(9));
        assert_eq!(buf.take_stalled(1), None);
    }

    #[test]
    fn force_complete_marks_partial_tail_lines() {
        let mut buf = ReorganizationBuffer::new(128, 64);
        buf.write_chunk(64, &[3u8; 10], ns(4));
        assert!(!buf.is_complete(1));
        buf.force_complete(1, ns(6));
        assert!(buf.is_complete(1));
        assert_eq!(buf.completion_time(1), Some(ns(6)));
        // Forcing an already complete line does not double count.
        let completed_before = buf.lines_completed();
        buf.force_complete(1, ns(7));
        assert_eq!(buf.lines_completed(), completed_before);
    }

    #[test]
    #[should_panic(expected = "exceeds SPM capacity")]
    fn overflowing_chunk_panics() {
        let mut buf = ReorganizationBuffer::new(128, 64);
        buf.write_chunk(100, &[0u8; 64], SimTime::ZERO);
    }
}
