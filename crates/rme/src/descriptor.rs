//! Request descriptors and the equations that generate them.
//!
//! For every (row `i`, column-of-interest `j`) pair the Requestor emits one
//! descriptor telling a Fetch Unit where to read in main memory, how long a
//! burst to request, which bytes of the response are useful, and where the
//! extracted bytes land in the Reorganization Buffer. The fields follow
//! equations (2)–(6) of the paper, with `P_{i,j}` from equation (1):
//!
//! ```text
//! P_{i,j}      = R·i + Σ_{k=0..=j} OA_k                  (1)
//! Raddr_{i,j}  = (P_{i,j} // B_w) · B_w                   (2)
//! Rburst_{i,j} = ⌈((P_{i,j} % B_w) + CA_j) / B_w⌉         (3)
//! Waddr_{i,j}  = i · Σ CA_k + Σ_{k<j} CA_k                (4)
//! Es_{i,j}     = P_{i,j} % B_w                            (5)
//! Ee_{i,j}     = (P_{i,j} + CA_j) % B_w                   (6)
//! ```
//!
//! Equation (4) is printed in the paper with an `(i − 1)` factor; with
//! zero-based row indices the factor is `i`, which is what the prototype
//! uses (and what makes row 0 land at packed offset 0).

use crate::geometry::TableGeometry;

/// One fetch descriptor, the unit of work handed to a Fetch Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Source row index `i`.
    pub row: u64,
    /// Column-of-interest index `j`.
    pub column: usize,
    /// Bus-aligned main-memory read address (`Raddr`).
    pub raddr: u64,
    /// Burst length in bus beats (`Rburst`).
    pub rburst: usize,
    /// Destination offset in the packed projection (`Waddr`), relative to
    /// the start of the projection (not of the frame).
    pub waddr: u64,
    /// Leading bytes of the burst to discard (`Es`).
    pub es: usize,
    /// Useful payload length in bytes (`CA_j`).
    pub len: usize,
}

impl Descriptor {
    /// Trailing byte boundary within the last beat (`Ee` of equation (6)).
    pub fn ee(&self, bus_bytes: usize) -> usize {
        (self.es + self.len) % bus_bytes
    }

    /// Number of bytes the burst moves over the bus.
    pub fn burst_bytes(&self, bus_bytes: usize) -> usize {
        self.rburst * bus_bytes
    }
}

/// Computes the descriptor for row `i`, column `j` of a geometry.
///
/// `packed_row_index` is the row's index within the packed output, which
/// differs from `i` when MVCC filtering skips invisible rows.
pub fn descriptor_for(
    geometry: &TableGeometry,
    i: u64,
    packed_row_index: u64,
    j: usize,
    bus_bytes: usize,
) -> Descriptor {
    let p = geometry.p(i, j);
    let ca = geometry.column_width(j);
    let offset_in_beat = (p % bus_bytes as u64) as usize;
    let raddr = p - offset_in_beat as u64;
    let rburst = (offset_in_beat + ca).div_ceil(bus_bytes);
    let waddr = packed_row_index * geometry.packed_row_bytes() as u64
        + geometry.packed_column_offset(j) as u64;
    Descriptor {
        row: i,
        column: j,
        raddr,
        rburst,
        waddr,
        es: offset_in_beat,
        len: ca,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ColumnSpec;
    use proptest::prelude::*;

    /// A bare geometry used by the equation tests: 64-byte rows, one 4-byte
    /// column at a configurable offset — the setup of Figure 6.
    fn single_column_geometry(offset: usize) -> TableGeometry {
        TableGeometry {
            row_bytes: 64,
            row_count: 1_000,
            columns: vec![ColumnSpec {
                width: 4,
                oa_delta: offset,
            }],
            source_base: 0,
            ephemeral_base: 0x4000_0000,
            mvcc_header_bytes: 0,
            snapshot: None,
        }
    }

    #[test]
    fn figure6_burst_lengths_spike_when_field_straddles_a_beat() {
        // With a 16-byte bus and a 4-byte column, offsets 13, 14, 15 (and
        // their 16-byte-periodic repeats 29..31, 45..47) straddle two beats
        // and need a burst of 2 — the spikes of Figure 6.
        for offset in 0..61usize {
            let g = single_column_geometry(offset);
            let d = descriptor_for(&g, 0, 0, 0, 16);
            let expected = if offset % 16 > 12 { 2 } else { 1 };
            assert_eq!(d.rburst, expected, "offset {offset}");
        }
    }

    #[test]
    fn equations_worked_example() {
        // Row 3, column at absolute offset 24, width 8, bus 16 B, rows 64 B.
        let g = TableGeometry {
            row_bytes: 64,
            row_count: 10,
            columns: vec![
                ColumnSpec { width: 4, oa_delta: 0 },
                ColumnSpec { width: 8, oa_delta: 24 },
            ],
            source_base: 0x1000,
            ephemeral_base: 0,
            mvcc_header_bytes: 0,
            snapshot: None,
        };
        let d = descriptor_for(&g, 3, 3, 1, 16);
        // P = 0x1000 + 3*64 + 24 = 0x1000 + 216.
        assert_eq!(d.raddr, 0x1000 + 208); // aligned down to a 16 B beat
        assert_eq!(d.es, 8);
        assert_eq!(d.rburst, 1); // 8 + 8 = 16 fits one beat
        assert_eq!(d.ee(16), 0);
        // Waddr = i * (4+8) + 4.
        assert_eq!(d.waddr, 3 * 12 + 4);
        assert_eq!(d.burst_bytes(16), 16);
    }

    #[test]
    fn row_zero_lands_at_packed_offset_zero() {
        let g = single_column_geometry(12);
        let d = descriptor_for(&g, 0, 0, 0, 16);
        assert_eq!(d.waddr, 0);
    }

    #[test]
    fn mvcc_filtering_uses_packed_row_index_for_waddr() {
        let g = single_column_geometry(0);
        // Source row 10 is the 4th visible row: it must land at packed row 3.
        let d = descriptor_for(&g, 10, 3, 0, 16);
        assert_eq!(d.raddr, 10 * 64);
        assert_eq!(d.waddr, 3 * 4);
    }

    proptest! {
        /// The descriptor must cover the useful bytes: the burst starts at or
        /// before P and ends at or after P + CA.
        #[test]
        fn burst_covers_useful_bytes(
            row_bytes in 16usize..=256,
            offset in 0usize..200,
            width in 1usize..=64,
            i in 0u64..10_000,
        ) {
            prop_assume!(offset + width <= row_bytes);
            let g = TableGeometry {
                row_bytes,
                row_count: 20_000,
                columns: vec![ColumnSpec { width, oa_delta: offset }],
                source_base: 4096,
                ephemeral_base: 0,
                mvcc_header_bytes: 0,
                snapshot: None,
            };
            let bus = 16usize;
            let d = descriptor_for(&g, i, i, 0, bus);
            let p = g.p(i, 0);
            prop_assert!(d.raddr <= p);
            prop_assert_eq!(d.raddr % bus as u64, 0);
            prop_assert!(d.raddr + d.burst_bytes(bus) as u64 >= p + width as u64);
            prop_assert_eq!(d.es as u64, p - d.raddr);
            // Burst is minimal: one fewer beat would not cover the field.
            prop_assert!((d.rburst - 1) * bus < d.es + width);
        }

        /// Waddr tiles the packed projection without gaps or overlaps when
        /// iterating rows and columns in order.
        #[test]
        fn waddr_tiles_packed_space(widths in proptest::collection::vec(1usize..16, 1..6), rows in 1u64..50) {
            let columns: Vec<ColumnSpec> = widths
                .iter()
                .scan(0usize, |acc, &w| {
                    let spec = ColumnSpec { width: w, oa_delta: if *acc == 0 { 0 } else { 4 } };
                    *acc += 1;
                    Some(spec)
                })
                .collect();
            let row_bytes = widths.iter().sum::<usize>() + 4 * widths.len() + 8;
            let g = TableGeometry {
                row_bytes,
                row_count: rows,
                columns,
                source_base: 0,
                ephemeral_base: 0,
                mvcc_header_bytes: 0,
                snapshot: None,
            };
            let mut covered = vec![false; (g.packed_row_bytes() as u64 * rows) as usize];
            for i in 0..rows {
                for j in 0..g.num_columns() {
                    let d = descriptor_for(&g, i, i, j, 16);
                    for b in 0..d.len {
                        let idx = (d.waddr + b as u64) as usize;
                        prop_assert!(!covered[idx], "packed byte {idx} written twice");
                        covered[idx] = true;
                    }
                }
            }
            prop_assert!(covered.into_iter().all(|c| c));
        }
    }
}
