//! The Monitor Bypass.
//!
//! The Monitor Bypass is the central coordinator of the engine (Figure 5):
//! it answers the Trapper's lookups against the Reorganization Buffer,
//! stalls requests whose line is not yet complete, collects the data coming
//! back from the Fetch Units, and signals the Requestor when the first miss
//! of a freshly configured frame arrives. In the simulation the same
//! responsibilities exist, expressed over completion times instead of
//! hardware handshakes.

use relmem_sim::SimTime;

use crate::reorg_buffer::ReorganizationBuffer;

/// Result of looking a line up in the Reorganization Buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is complete; its data became available at the given time.
    Hit(SimTime),
    /// The line is not complete; the request must stall.
    Miss,
}

/// The Monitor Bypass: owns the Reorganization Buffer and the frame-trigger
/// state.
#[derive(Debug, Clone)]
pub struct MonitorBypass {
    buffer: ReorganizationBuffer,
    /// Frame currently resident in the buffer (`None` until the first fetch
    /// after configuration or a reset).
    resident_frame: Option<u64>,
    /// Whether the Requestor has been activated for the resident frame.
    requestor_triggered: bool,
}

impl MonitorBypass {
    /// Creates a monitor over a buffer of the given capacity.
    pub fn new(spm_bytes: usize, line_bytes: usize) -> Self {
        MonitorBypass {
            buffer: ReorganizationBuffer::new(spm_bytes, line_bytes),
            resident_frame: None,
            requestor_triggered: false,
        }
    }

    /// Immutable access to the underlying buffer.
    pub fn buffer(&self) -> &ReorganizationBuffer {
        &self.buffer
    }

    /// Mutable access to the underlying buffer (used by the Fetch Units'
    /// write path via the engine).
    pub fn buffer_mut(&mut self) -> &mut ReorganizationBuffer {
        &mut self.buffer
    }

    /// The frame currently resident, if any.
    pub fn resident_frame(&self) -> Option<u64> {
        self.resident_frame
    }

    /// Looks up a line of the given frame.
    pub fn lookup(&self, frame: u64, line_in_frame: usize) -> Lookup {
        if self.resident_frame != Some(frame) {
            return Lookup::Miss;
        }
        match self.buffer.completion_time(line_in_frame) {
            Some(t) => Lookup::Hit(t),
            None => Lookup::Miss,
        }
    }

    /// Called on the first miss of a frame: invalidates the buffer (epoch
    /// reset) if a different frame was resident, marks the new frame
    /// resident and reports whether the Requestor must be started.
    pub fn frame_miss(&mut self, frame: u64) -> bool {
        if self.resident_frame == Some(frame) && self.requestor_triggered {
            return false;
        }
        if self.resident_frame.is_some() && self.resident_frame != Some(frame) {
            self.buffer.reset_epoch();
        }
        self.resident_frame = Some(frame);
        self.requestor_triggered = true;
        true
    }

    /// Full software reset: invalidates the buffer and forgets the resident
    /// frame.
    pub fn software_reset(&mut self) {
        self.buffer.reset_epoch();
        self.resident_frame = None;
        self.requestor_triggered = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn lookup_misses_until_the_line_completes() {
        let mut m = MonitorBypass::new(256, 64);
        assert_eq!(m.lookup(0, 0), Lookup::Miss);
        assert!(m.frame_miss(0));
        // A second miss on the same frame must not retrigger the Requestor.
        assert!(!m.frame_miss(0));
        m.buffer_mut().write_chunk(0, &[1u8; 64], ns(30));
        assert_eq!(m.lookup(0, 0), Lookup::Hit(ns(30)));
        assert_eq!(m.lookup(0, 1), Lookup::Miss);
    }

    #[test]
    fn switching_frames_invalidates_the_buffer() {
        let mut m = MonitorBypass::new(256, 64);
        m.frame_miss(0);
        m.buffer_mut().write_chunk(0, &[1u8; 64], ns(10));
        assert_eq!(m.lookup(0, 0), Lookup::Hit(ns(10)));
        // Frame 1 arrives: epoch reset, frame 0 data is gone.
        assert!(m.frame_miss(1));
        assert_eq!(m.resident_frame(), Some(1));
        assert_eq!(m.lookup(0, 0), Lookup::Miss);
        assert_eq!(m.lookup(1, 0), Lookup::Miss);
        assert_eq!(m.buffer().resets(), 1);
    }

    #[test]
    fn software_reset_clears_everything() {
        let mut m = MonitorBypass::new(256, 64);
        m.frame_miss(3);
        m.buffer_mut().write_chunk(0, &[1u8; 64], ns(10));
        m.software_reset();
        assert_eq!(m.resident_frame(), None);
        assert_eq!(m.lookup(3, 0), Lookup::Miss);
        // The next miss retriggers the Requestor.
        assert!(m.frame_miss(3));
    }
}
