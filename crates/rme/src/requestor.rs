//! The Requestor: descriptor generation and dispatch.
//!
//! When the Monitor Bypass reports the first miss of a frame, the Requestor
//! walks the frame's rows and columns of interest, evaluates equations
//! (1)–(6) for each pair and hands the resulting descriptors to idle Fetch
//! Units. The configuration port stores the widths and offsets of all (up
//! to eleven) columns of interest in registers, so the address arithmetic of
//! one *row* — every column's descriptor — is evaluated by parallel adders
//! in a single PL cycle; the dispatch times reported here are therefore
//! spaced per row, which is the issue-rate bound of the engine.

use relmem_sim::SimTime;

use crate::descriptor::{descriptor_for, Descriptor};
use crate::geometry::TableGeometry;

/// A descriptor together with the earliest time it may be dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchedDescriptor {
    /// The descriptor itself.
    pub descriptor: Descriptor,
    /// Earliest dispatch time (Requestor issue-rate bound).
    pub dispatch_at: SimTime,
}

/// The Requestor module.
#[derive(Debug, Clone)]
pub struct Requestor {
    bus_bytes: usize,
    descriptor_period: SimTime,
    generated: u64,
}

impl Requestor {
    /// Creates a Requestor. `descriptor_period` is the time between two
    /// consecutive descriptor emissions (one per PL cycle in the prototype).
    pub fn new(bus_bytes: usize, descriptor_period: SimTime) -> Self {
        Requestor {
            bus_bytes,
            descriptor_period,
            generated: 0,
        }
    }

    /// Descriptors generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates the descriptor stream for a frame.
    ///
    /// * `rows` — the source-row indices belonging to the frame, in order.
    ///   When MVCC filtering is active this is the list of *visible* rows;
    ///   their position in the slice is the packed row index **within the
    ///   frame**.
    /// * `start` — when the Requestor is activated (first miss of the frame
    ///   reaching the PL).
    ///
    /// The returned descriptors use frame-relative `waddr` (packed offsets
    /// starting at zero for the first row of the frame).
    pub fn generate_frame(
        &mut self,
        geometry: &TableGeometry,
        rows: &[u64],
        start: SimTime,
    ) -> Vec<DispatchedDescriptor> {
        let q = geometry.num_columns();
        let mut out = Vec::with_capacity(rows.len() * q);
        for (packed_idx, &row) in rows.iter().enumerate() {
            // One PL cycle per source row: all of the row's column
            // descriptors are produced by parallel adders in that cycle.
            let dispatch_at = start + self.descriptor_period * packed_idx as u64;
            for j in 0..q {
                let descriptor =
                    descriptor_for(geometry, row, packed_idx as u64, j, self.bus_bytes);
                out.push(DispatchedDescriptor {
                    descriptor,
                    dispatch_at,
                });
            }
        }
        self.generated += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ColumnSpec;

    fn geometry(rows: u64) -> TableGeometry {
        TableGeometry {
            row_bytes: 64,
            row_count: rows,
            columns: vec![
                ColumnSpec { width: 4, oa_delta: 0 },
                ColumnSpec { width: 8, oa_delta: 24 },
            ],
            source_base: 0,
            ephemeral_base: 0x1000_0000,
            mvcc_header_bytes: 0,
            snapshot: None,
        }
    }

    #[test]
    fn generates_q_descriptors_per_row_at_one_per_period() {
        let g = geometry(100);
        let mut r = Requestor::new(16, SimTime::from_nanos(10));
        let ds = r.generate_frame(&g, &[0, 1, 2], SimTime::from_nanos(100));
        assert_eq!(ds.len(), 6);
        assert_eq!(r.generated(), 6);
        // Dispatch times are spaced by one descriptor period per *row*; both
        // columns of a row are produced in the same cycle.
        assert_eq!(ds[0].dispatch_at, SimTime::from_nanos(100));
        assert_eq!(ds[1].dispatch_at, SimTime::from_nanos(100));
        assert_eq!(ds[2].dispatch_at, SimTime::from_nanos(110));
        assert_eq!(ds[5].dispatch_at, SimTime::from_nanos(120));
        // Row-major order: row 0 col 0, row 0 col 1, row 1 col 0, ...
        assert_eq!(ds[0].descriptor.row, 0);
        assert_eq!(ds[1].descriptor.column, 1);
        assert_eq!(ds[2].descriptor.row, 1);
    }

    #[test]
    fn filtered_rows_pack_densely() {
        let g = geometry(100);
        let mut r = Requestor::new(16, SimTime::from_nanos(10));
        // Only rows 5 and 9 are visible: they become packed rows 0 and 1.
        let ds = r.generate_frame(&g, &[5, 9], SimTime::ZERO);
        let packed_row = g.packed_row_bytes() as u64;
        assert_eq!(ds[0].descriptor.waddr, 0);
        assert_eq!(ds[2].descriptor.waddr, packed_row);
        assert_eq!(ds[2].descriptor.raddr, 9 * 64);
    }

    #[test]
    fn empty_frame_produces_nothing() {
        let g = geometry(10);
        let mut r = Requestor::new(16, SimTime::from_nanos(10));
        assert!(r.generate_frame(&g, &[], SimTime::ZERO).is_empty());
        assert_eq!(r.generated(), 0);
    }
}
