//! The Column Extractor.
//!
//! Inside each Fetch Unit, the Column Extractor receives the raw bus beats
//! returned by the Reader and cuts out the bytes that belong to the column
//! of interest, shifting them so they can be packed contiguously (Section 5,
//! "Fetch Unit"). Functionally this is a slice-and-shift; the value of
//! modelling it explicitly is that it can be property-tested against the
//! software reference projection and that its per-beat cost shows up in the
//! timing model.

use crate::descriptor::Descriptor;

/// Extracts the useful bytes described by `descriptor` from the raw burst
/// payload returned by main memory.
///
/// `payload` must contain exactly the burst (`rburst × bus_bytes` bytes)
/// starting at the descriptor's aligned `raddr`.
///
/// # Panics
/// Panics if the payload is shorter than the burst the descriptor describes.
pub fn extract(descriptor: &Descriptor, payload: &[u8], bus_bytes: usize) -> Vec<u8> {
    let burst = descriptor.burst_bytes(bus_bytes);
    assert!(
        payload.len() >= burst,
        "payload of {} bytes is shorter than the {}-byte burst",
        payload.len(),
        burst
    );
    payload[descriptor.es..descriptor.es + descriptor.len].to_vec()
}

/// Number of bus beats the extractor must inspect for a descriptor — the
/// basis of its per-beat processing cost.
pub fn beats_to_process(descriptor: &Descriptor) -> usize {
    descriptor.rburst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::descriptor_for;
    use crate::geometry::{ColumnSpec, TableGeometry};
    use proptest::prelude::*;

    #[test]
    fn extracts_the_middle_of_a_beat() {
        let d = Descriptor {
            row: 0,
            column: 0,
            raddr: 0,
            rburst: 1,
            waddr: 0,
            es: 5,
            len: 4,
        };
        let payload: Vec<u8> = (0..16).collect();
        assert_eq!(extract(&d, &payload, 16), vec![5, 6, 7, 8]);
        assert_eq!(beats_to_process(&d), 1);
    }

    #[test]
    fn extracts_across_a_beat_boundary() {
        let d = Descriptor {
            row: 0,
            column: 0,
            raddr: 0,
            rburst: 2,
            waddr: 0,
            es: 14,
            len: 6,
        };
        let payload: Vec<u8> = (0..32).collect();
        assert_eq!(extract(&d, &payload, 16), vec![14, 15, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn short_payload_panics() {
        let d = Descriptor {
            row: 0,
            column: 0,
            raddr: 0,
            rburst: 2,
            waddr: 0,
            es: 0,
            len: 20,
        };
        let _ = extract(&d, &[0u8; 16], 16);
    }

    proptest! {
        /// Extraction over a synthetic "memory" equals reading the field
        /// directly at its absolute address — the hardware and software
        /// views of projection agree byte for byte.
        #[test]
        fn extraction_matches_direct_read(
            offset in 0usize..60,
            width in 1usize..=16,
            i in 0u64..200,
        ) {
            prop_assume!(offset + width <= 64);
            let g = TableGeometry {
                row_bytes: 64,
                row_count: 500,
                columns: vec![ColumnSpec { width, oa_delta: offset }],
                source_base: 0,
                ephemeral_base: 0,
                mvcc_header_bytes: 0,
                snapshot: None,
            };
            // Synthetic memory where byte at address a has value a & 0xff.
            let mem: Vec<u8> = (0..64 * 500).map(|a| (a & 0xff) as u8).collect();
            let d = descriptor_for(&g, i, i, 0, 16);
            let payload = &mem[d.raddr as usize..d.raddr as usize + d.burst_bytes(16)];
            let extracted = extract(&d, payload, 16);
            let p = g.p(i, 0) as usize;
            prop_assert_eq!(extracted, mem[p..p + width].to_vec());
        }
    }
}
