//! The Relational Memory Engine (RME).
//!
//! This crate is the paper's primary contribution rebuilt in simulation: a
//! data-reorganization engine that sits between the CPU caches and main
//! memory, intercepts cache-line requests aimed at *ephemeral* addresses,
//! and answers them by fetching only the useful bytes of a row-major table
//! and packing them into dense cache lines — an on-the-fly projection.
//!
//! The module decomposition follows Figure 5 of the paper:
//!
//! * [`config_port`] — the runtime-configuration register file (Table 1),
//! * [`geometry`] — the table geometry derived from those registers,
//! * [`requestor`] + [`descriptor`] — descriptor generation, equations
//!   (1)–(6),
//! * [`fetch_unit`] + [`extractor`] — the Reader / Column Extractor /
//!   Writer pipeline,
//! * [`reorg_buffer`] — the Data and Metadata scratch-pad memories with
//!   epoch-based invalidation,
//! * [`monitor`] — the Monitor Bypass (stall tracking and wake-ups),
//! * [`trapper`] — the AXI-facing side (outstanding transaction IDs),
//! * [`axi`] — AXI/CDC cost model for the PS↔PL boundary,
//! * [`revision`] — the BSL / PCK / MLP hardware revisions of Section 5.2,
//! * [`engine`] — the composed [`RmeEngine`],
//! * [`resources`] — the FPGA area model behind Table 2.

pub mod axi;
pub mod config_port;
pub mod descriptor;
pub mod engine;
pub mod extractor;
pub mod fetch_unit;
pub mod geometry;
pub mod monitor;
pub mod reorg_buffer;
pub mod requestor;
pub mod resources;
pub mod revision;
pub mod stats;
pub mod trapper;

pub use config_port::ConfigPort;
pub use descriptor::Descriptor;
pub use engine::RmeEngine;
pub use geometry::{ColumnSpec, TableGeometry};
pub use resources::{AreaReport, estimate_area};
pub use revision::HwRevision;
pub use stats::RmeStats;
