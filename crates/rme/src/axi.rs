//! AXI transactions and the PS↔PL clock-domain-crossing cost model.
//!
//! CPU-originated reads that target ephemeral addresses reach the RME as AXI
//! read transactions identified by an ID; the Trapper extracts `{A, ID}` and
//! later answers with `{ID, RD}`. Every crossing between the PS (CPU-side)
//! and PL (RME-side) clock domains costs a few PL cycles, and the response
//! data must also be streamed over the PS–PL port. The paper stresses that
//! the RME wins *despite* these penalties; this module is where they are
//! charged.

use relmem_sim::{CdcConfig, Resource, SimTime};

/// An AXI read request as seen by the Trapper: target address + transaction
/// ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiReadRequest {
    /// Target (ephemeral) address, line aligned by the cache.
    pub addr: u64,
    /// AXI transaction ID.
    pub id: u16,
}

/// An AXI read response: the ID being answered and when its data is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiReadResponse {
    /// Transaction ID being answered.
    pub id: u16,
    /// Time at which the requesting core receives the data.
    pub data_ready: SimTime,
}

/// Timing model of the PS↔PL boundary.
#[derive(Debug, Clone)]
pub struct CdcModel {
    cfg: CdcConfig,
    /// The PS–PL high-performance port the responses are streamed over.
    port: Resource,
    crossings: u64,
}

impl CdcModel {
    /// Creates the model from the platform's CDC configuration.
    pub fn new(cfg: CdcConfig) -> Self {
        CdcModel {
            cfg,
            port: Resource::new("ps-pl-port"),
            crossings: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CdcConfig {
        &self.cfg
    }

    /// Number of request/response crossings charged so far.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Time at which a request issued by the PS at `ready` becomes visible
    /// to the PL-side logic.
    pub fn request_into_pl(&mut self, ready: SimTime) -> SimTime {
        self.crossings += 1;
        ready + self.cfg.request_latency()
    }

    /// Time at which a response of `bytes` bytes, ready inside the PL at
    /// `ready`, has fully crossed back to the PS. The port is a shared
    /// resource, so back-to-back responses serialize on it.
    pub fn response_into_ps(&mut self, ready: SimTime, bytes: usize) -> SimTime {
        self.crossings += 1;
        let occupancy = self.cfg.port_transfer_time(bytes);
        let (_, end) = self.port.acquire(ready, occupancy);
        end + self.cfg.response_latency()
    }

    /// Resets port occupancy and counters (between measured runs).
    pub fn reset(&mut self) {
        self.port.reset();
        self.crossings = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CdcModel {
        CdcModel::new(CdcConfig::default())
    }

    #[test]
    fn request_crossing_adds_latency() {
        let mut m = model();
        let t = m.request_into_pl(SimTime::from_nanos(100));
        assert_eq!(t, SimTime::from_nanos(120)); // 2 PL cycles at 100 MHz
        assert_eq!(m.crossings(), 1);
    }

    #[test]
    fn responses_serialize_on_the_port() {
        let mut m = model();
        // Two 64-byte responses both ready at t=0: the second waits for the
        // port (20 ns each at 32 B / 10 ns cycle).
        let a = m.response_into_ps(SimTime::ZERO, 64);
        let b = m.response_into_ps(SimTime::ZERO, 64);
        assert_eq!(a, SimTime::from_nanos(20 + 20));
        assert_eq!(b, SimTime::from_nanos(40 + 20));
    }

    #[test]
    fn reset_clears_port_state() {
        let mut m = model();
        m.response_into_ps(SimTime::ZERO, 64);
        m.reset();
        assert_eq!(m.crossings(), 0);
        let again = m.response_into_ps(SimTime::ZERO, 64);
        assert_eq!(again, SimTime::from_nanos(40));
    }
}
