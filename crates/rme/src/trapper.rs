//! The Trapper: the engine's AXI-facing front end.
//!
//! The Trapper is the first module a CPU-originated read meets. It extracts
//! the `{A, ID}` pair, forwards it to the Monitor Bypass, and later forms
//! the AXI response `{ID, RD}` once the requested line is available. Because
//! the CPUs issue multiple asynchronous requests, the Trapper supports a
//! bounded number of outstanding transactions; when the bound is reached a
//! new request has to wait for an older one to retire — which is exactly how
//! the PS-side interconnect behaves.

use relmem_sim::{CdcConfig, SimTime};

use crate::axi::{AxiReadRequest, AxiReadResponse, CdcModel};

/// The Trapper module.
#[derive(Debug, Clone)]
pub struct Trapper {
    cdc: CdcModel,
    max_outstanding: usize,
    /// Retirement times of transactions currently in flight.
    inflight: Vec<SimTime>,
    next_id: u16,
    accepted: u64,
}

impl Trapper {
    /// Creates a Trapper over the PS↔PL boundary described by `cfg`.
    pub fn new(cfg: CdcConfig) -> Self {
        Trapper {
            max_outstanding: cfg.max_outstanding.max(1),
            cdc: CdcModel::new(cfg),
            inflight: Vec::new(),
            next_id: 0,
            accepted: 0,
        }
    }

    /// Number of transactions accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Accepts a CPU read of `addr` issued at `ready`. Returns the AXI
    /// request (with its allocated ID) and the time at which it is visible
    /// to the PL-side logic.
    pub fn accept(&mut self, addr: u64, ready: SimTime) -> (AxiReadRequest, SimTime) {
        // Retire transactions that have already completed.
        self.inflight.retain(|&t| t > ready);
        let start = if self.inflight.len() >= self.max_outstanding {
            let (idx, &earliest) = self
                .inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("inflight non-empty");
            self.inflight.swap_remove(idx);
            ready.max(earliest)
        } else {
            ready
        };
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.accepted += 1;
        let at_pl = self.cdc.request_into_pl(start);
        (AxiReadRequest { addr, id }, at_pl)
    }

    /// Forms the response for transaction `id`: the line data of `bytes`
    /// bytes is ready inside the PL at `data_ready_pl`; the returned
    /// response carries the time the CPU receives it.
    pub fn respond(
        &mut self,
        id: u16,
        data_ready_pl: SimTime,
        bytes: usize,
    ) -> AxiReadResponse {
        let data_ready = self.cdc.response_into_ps(data_ready_pl, bytes);
        self.inflight.push(data_ready);
        AxiReadResponse { id, data_ready }
    }

    /// Resets timing state between measured runs.
    pub fn reset(&mut self) {
        self.cdc.reset();
        self.inflight.clear();
        self.accepted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn accept_allocates_distinct_ids_and_adds_cdc_latency() {
        let mut t = Trapper::new(CdcConfig::default());
        let (r1, at_pl1) = t.accept(0x100, SimTime::ZERO);
        let (r2, _) = t.accept(0x140, SimTime::ZERO);
        assert_ne!(r1.id, r2.id);
        assert_eq!(at_pl1, ns(20));
        assert_eq!(t.accepted(), 2);
    }

    #[test]
    fn response_adds_port_transfer_and_cdc() {
        let mut t = Trapper::new(CdcConfig::default());
        let (req, at_pl) = t.accept(0x100, SimTime::ZERO);
        let resp = t.respond(req.id, at_pl, 64);
        // 20 ns request CDC + 20 ns port + 20 ns response CDC.
        assert_eq!(resp.data_ready, ns(60));
        assert_eq!(resp.id, req.id);
    }

    #[test]
    fn outstanding_limit_backpressures() {
        let cfg = CdcConfig {
            max_outstanding: 2,
            ..CdcConfig::default()
        };
        let mut t = Trapper::new(cfg);
        // Two transactions in flight that retire late.
        let (a, a_pl) = t.accept(0, SimTime::ZERO);
        t.respond(a.id, a_pl + ns(1_000), 64);
        let (b, b_pl) = t.accept(64, SimTime::ZERO);
        t.respond(b.id, b_pl + ns(2_000), 64);
        // The third must wait for the earliest retirement (~1 µs).
        let (_, c_pl) = t.accept(128, SimTime::ZERO);
        assert!(c_pl > ns(1_000));
        assert!(c_pl < ns(2_000));
    }

    #[test]
    fn reset_clears_backpressure() {
        let cfg = CdcConfig {
            max_outstanding: 1,
            ..CdcConfig::default()
        };
        let mut t = Trapper::new(cfg);
        let (a, a_pl) = t.accept(0, SimTime::ZERO);
        t.respond(a.id, a_pl + ns(500), 64);
        t.reset();
        let (_, pl) = t.accept(64, SimTime::ZERO);
        assert_eq!(pl, ns(20));
    }
}
