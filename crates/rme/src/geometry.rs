//! Table geometry: what the RME needs to know about the target relation.
//!
//! The configuration port (Table 1 of the paper) communicates the tuple
//! width `R`, tuple count `N`, the number of columns of interest `Q`, their
//! widths `CA_j` and relative offsets `OA_j`, and the frame number `F`.
//! [`TableGeometry`] is the decoded, validated form of that configuration plus
//! the two base addresses the prototype passes alongside it: where the
//! row-major source data lives and where the ephemeral alias range starts.

use relmem_storage::{ColumnGroup, MvccConfig, Schema, Snapshot, StorageError};

/// One column of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Width in bytes (`CA_j`).
    pub width: usize,
    /// Offset in bytes from the previous column of interest (`OA_j`); for
    /// the first column this is its absolute offset within the row.
    pub oa_delta: usize,
}

/// The full geometry of one programmed projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableGeometry {
    /// Source row width in bytes (`R`), including any MVCC header.
    pub row_bytes: usize,
    /// Number of source rows (`N`).
    pub row_count: u64,
    /// Columns of interest (`Q` entries).
    pub columns: Vec<ColumnSpec>,
    /// Physical base address of the row-major source table.
    pub source_base: u64,
    /// Base address of the ephemeral alias range served by the RME.
    pub ephemeral_base: u64,
    /// Bytes of MVCC header at the start of each row (0 or 16). When
    /// non-zero the engine filters rows by `snapshot` while packing.
    pub mvcc_header_bytes: usize,
    /// Snapshot used for visibility filtering (ignored when
    /// `mvcc_header_bytes == 0`).
    pub snapshot: Option<Snapshot>,
}

impl TableGeometry {
    /// Builds a geometry from storage-level metadata.
    ///
    /// `source_base` is the address of row 0 (its header if MVCC is on);
    /// `ephemeral_base` is where the packed alias range will be mapped.
    pub fn from_schema(
        schema: &Schema,
        group: &ColumnGroup,
        source_base: u64,
        ephemeral_base: u64,
        row_count: u64,
        mvcc: MvccConfig,
        snapshot: Option<Snapshot>,
    ) -> Result<Self, StorageError> {
        let widths = group.widths(schema)?;
        let mut deltas = group.oa_deltas(schema)?;
        // Column offsets are measured from the start of the *physical* row,
        // which includes the MVCC header if present.
        if mvcc.is_enabled() && !deltas.is_empty() {
            deltas[0] += mvcc.header_bytes();
        }
        let columns = widths
            .into_iter()
            .zip(deltas)
            .map(|(width, oa_delta)| ColumnSpec { width, oa_delta })
            .collect();
        Ok(TableGeometry {
            row_bytes: schema.row_bytes() + mvcc.header_bytes(),
            row_count,
            columns,
            source_base,
            ephemeral_base,
            mvcc_header_bytes: mvcc.header_bytes(),
            snapshot,
        })
    }

    /// Number of columns of interest (`Q`).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Absolute offset of column `j` within the source row:
    /// Σ_{k=0..=j} OA_k (equation (1)'s inner sum).
    pub fn column_offset(&self, j: usize) -> usize {
        self.columns[..=j].iter().map(|c| c.oa_delta).sum()
    }

    /// Width of column `j` (`CA_j`).
    pub fn column_width(&self, j: usize) -> usize {
        self.columns[j].width
    }

    /// Absolute source address where the useful data of row `i`, column `j`
    /// starts — the paper's `P_{i,j} = R·i + Σ OA_k`, plus the table base.
    pub fn p(&self, i: u64, j: usize) -> u64 {
        self.source_base + self.row_bytes as u64 * i + self.column_offset(j) as u64
    }

    /// Width of one packed (projected) row in bytes.
    pub fn packed_row_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.width).sum()
    }

    /// Offset of column `j` within the packed row.
    pub fn packed_column_offset(&self, j: usize) -> usize {
        self.columns[..j].iter().map(|c| c.width).sum()
    }

    /// Total size of the packed projection if every source row is visible.
    pub fn packed_bytes_total(&self) -> u64 {
        self.packed_row_bytes() as u64 * self.row_count
    }

    /// Whether this geometry requires MVCC visibility filtering.
    pub fn needs_visibility_filter(&self) -> bool {
        self.mvcc_header_bytes > 0 && self.snapshot.is_some()
    }

    /// Validates the geometry against the engine's structural limits.
    pub fn validate(&self, max_columns: usize, max_width: usize) -> Result<(), StorageError> {
        if self.columns.is_empty() {
            return Err(StorageError::InvalidColumnGroup(
                "geometry has no columns of interest".into(),
            ));
        }
        if self.columns.len() > max_columns {
            return Err(StorageError::InvalidColumnGroup(format!(
                "{} columns exceed the engine limit of {max_columns}",
                self.columns.len()
            )));
        }
        for (j, c) in self.columns.iter().enumerate() {
            if c.width == 0 || c.width > max_width {
                return Err(StorageError::InvalidColumnGroup(format!(
                    "column {j} width {} outside (0, {max_width}]",
                    c.width
                )));
            }
        }
        if self.column_offset(self.columns.len() - 1)
            + self.columns.last().map(|c| c.width).unwrap_or(0)
            > self.row_bytes
        {
            return Err(StorageError::InvalidColumnGroup(
                "columns of interest extend past the end of the row".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmem_storage::Schema;

    fn geometry() -> TableGeometry {
        // Listing 1 schema, projecting num_fld1 / num_fld3 / num_fld4.
        let schema = Schema::listing1();
        let group = ColumnGroup::new(vec![5, 7, 8]).unwrap();
        TableGeometry::from_schema(
            &schema,
            &group,
            0x1000,
            0x100_0000,
            1000,
            MvccConfig::Disabled,
            None,
        )
        .unwrap()
    }

    #[test]
    fn offsets_follow_equation_one() {
        let g = geometry();
        assert_eq!(g.row_bytes, 104);
        assert_eq!(g.num_columns(), 3);
        assert_eq!(g.column_offset(0), 64);
        assert_eq!(g.column_offset(1), 80);
        assert_eq!(g.column_offset(2), 88);
        // P_{i,j} = base + R*i + sum(OA).
        assert_eq!(g.p(0, 0), 0x1000 + 64);
        assert_eq!(g.p(2, 1), 0x1000 + 2 * 104 + 80);
    }

    #[test]
    fn packed_layout() {
        let g = geometry();
        assert_eq!(g.packed_row_bytes(), 24);
        assert_eq!(g.packed_column_offset(0), 0);
        assert_eq!(g.packed_column_offset(2), 16);
        assert_eq!(g.packed_bytes_total(), 24_000);
    }

    #[test]
    fn mvcc_header_shifts_offsets() {
        let schema = Schema::benchmark(4, 4, 32);
        let group = ColumnGroup::new(vec![1, 3]).unwrap();
        let g = TableGeometry::from_schema(
            &schema,
            &group,
            0,
            0,
            10,
            MvccConfig::Enabled,
            Some(Snapshot::at(5)),
        )
        .unwrap();
        assert_eq!(g.row_bytes, 32 + 16);
        assert_eq!(g.column_offset(0), 16 + 4);
        assert_eq!(g.column_offset(1), 16 + 12);
        assert!(g.needs_visibility_filter());
    }

    #[test]
    fn validation_limits() {
        let g = geometry();
        assert!(g.validate(11, 64).is_ok());
        assert!(g.validate(2, 64).is_err());
        assert!(g.validate(11, 4).is_err());
        let mut empty = g.clone();
        empty.columns.clear();
        assert!(empty.validate(11, 64).is_err());
        let mut overflow = g;
        overflow.row_bytes = 80;
        assert!(overflow.validate(11, 64).is_err());
    }
}
