//! Regenerates the paper's figures and tables on the simulated platform.
//!
//! ```text
//! figures [--quick] [--full] [--open-loop] [--out DIR] [--csv] [ids...]
//! ```
//!
//! * `ids` — experiment identifiers (`fig6`..`fig13`, `table1`, `table2`);
//!   omitting them runs everything.
//! * `--quick` — shrink workloads (smoke test of the harness).
//! * `--full` — extend Figure 13 to the paper's full 2 GB sweep.
//! * `--open-loop` — run the HTAP experiment in its open-loop form
//!   (`fig_htap` becomes the `fig_htap_openloop` arrival-rate sweep).
//! * `--out DIR` — also write one text (and optionally CSV) file per
//!   experiment into `DIR`.
//! * `--csv` — write CSV next to the text output.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use relmem_bench::{all_experiments, experiment_by_id};

struct Args {
    ids: Vec<String>,
    quick: bool,
    full: bool,
    open_loop: bool,
    out: Option<PathBuf>,
    csv: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        ids: Vec::new(),
        quick: false,
        full: false,
        open_loop: false,
        out: None,
        csv: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.full = true,
            "--open-loop" => args.open_loop = true,
            "--csv" => args.csv = true,
            "--out" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                });
                args.out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--full] [--open-loop] [--out DIR] [--csv] \
                     [ids...]\n\
                     available ids: {}",
                    all_experiments().join(", ")
                );
                std::process::exit(0);
            }
            other => args.ids.push(other.to_string()),
        }
    }
    if args.ids.is_empty() {
        args.ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    if args.open_loop {
        for id in &mut args.ids {
            if id == "fig_htap" {
                "fig_htap_openloop".clone_into(id);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("can create output directory");
    }
    for id in &args.ids {
        let started = Instant::now();
        let Some(experiment) = experiment_by_id(id, args.quick, args.full) else {
            eprintln!(
                "unknown experiment {id:?}; available: {}",
                all_experiments().join(", ")
            );
            std::process::exit(2);
        };
        let text = experiment.render_text();
        println!("{text}");
        println!(
            "[{} completed in {:.1}s]\n",
            experiment.id,
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &args.out {
            fs::write(dir.join(format!("{}.txt", experiment.id)), &text)
                .expect("can write experiment output");
            if args.csv {
                fs::write(
                    dir.join(format!("{}.csv", experiment.id)),
                    experiment.render_csv(),
                )
                .expect("can write experiment CSV");
            }
        }
    }
}
