//! Regenerates the paper's figures and tables on the simulated platform.
//!
//! ```text
//! figures [--quick] [--full] [--open-loop] [--out DIR] [--csv]
//!         [--trace PATH] [--timeseries] [ids...]
//! ```
//!
//! * `ids` — experiment identifiers (`fig6`..`fig13`, `table1`, `table2`);
//!   omitting them runs everything.
//! * `--quick` — shrink workloads (smoke test of the harness).
//! * `--full` — extend Figure 13 to the paper's full 2 GB sweep.
//! * `--open-loop` — run the HTAP experiment in its open-loop form
//!   (`fig_htap` becomes the `fig_htap_openloop` arrival-rate sweep).
//! * `--out DIR` — also write one text (and optionally CSV) file per
//!   experiment into `DIR`.
//! * `--csv` — write CSV next to the text output.
//! * `--trace PATH` — record the experiment's headline run as a
//!   Perfetto-loadable Chrome trace (`fig_htap_openloop`, `fig_txn` and
//!   `fig_dram_fidelity` have one; see `FIGURES.md`). With several traced
//!   ids in one invocation the id is appended to the file name.
//! * `--timeseries` — also render time-bucketed metrics (queue depth,
//!   in-flight ops, abort rate, DRAM bank occupancy) from the traced run.
//!
//! Unrecognised `-`/`--` options are an error: anything else on the
//! command line must be an experiment id.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use relmem_bench::{all_experiments, experiment_by_id_traced};
use relmem_sim::report::series_table;
use relmem_sim::{default_bucket, series_from_trace};

struct Args {
    ids: Vec<String>,
    quick: bool,
    full: bool,
    open_loop: bool,
    out: Option<PathBuf>,
    csv: bool,
    trace: Option<PathBuf>,
    timeseries: bool,
}

fn usage() -> String {
    format!(
        "usage: figures [--quick] [--full] [--open-loop] [--out DIR] [--csv] \
         [--trace PATH] [--timeseries] [ids...]\n\
         available ids: {}",
        all_experiments().join(", ")
    )
}

fn parse_args() -> Args {
    let mut args = Args {
        ids: Vec::new(),
        quick: false,
        full: false,
        open_loop: false,
        out: None,
        csv: false,
        trace: None,
        timeseries: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.full = true,
            "--open-loop" => args.open_loop = true,
            "--csv" => args.csv = true,
            "--timeseries" => args.timeseries = true,
            "--out" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                });
                args.out = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let path = it.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a file argument");
                    std::process::exit(2);
                });
                args.trace = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?}\n{}", usage());
                std::process::exit(2);
            }
            other => args.ids.push(other.to_string()),
        }
    }
    if args.ids.is_empty() {
        args.ids = all_experiments().iter().map(|s| s.to_string()).collect();
    }
    if args.open_loop {
        for id in &mut args.ids {
            if id == "fig_htap" {
                "fig_htap_openloop".clone_into(id);
            }
        }
    }
    args
}

/// Per-experiment trace file: the configured path as-is for a single id,
/// `name-{id}.json` when one invocation traces several experiments.
fn trace_path(base: &Path, id: &str, many: bool) -> PathBuf {
    if !many {
        return base.to_path_buf();
    }
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let ext = base
        .extension()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "json".to_string());
    base.with_file_name(format!("{stem}-{id}.{ext}"))
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.out {
        fs::create_dir_all(dir).expect("can create output directory");
    }
    let capture = args.trace.is_some() || args.timeseries;
    let many = args.ids.len() > 1;
    for id in &args.ids {
        let started = Instant::now();
        let Some((experiment, trace)) = experiment_by_id_traced(id, args.quick, args.full, capture)
        else {
            eprintln!(
                "unknown experiment {id:?}; available: {}",
                all_experiments().join(", ")
            );
            std::process::exit(2);
        };
        let mut text = experiment.render_text();
        if let Some(trace) = &trace {
            if args.timeseries {
                let series = series_from_trace(trace, default_bucket(trace, 40));
                let table = series_table(
                    &format!("{}: time-bucketed metrics of the traced run", experiment.id),
                    "Bucket start us",
                    &series,
                );
                text.push_str(&table.render_text());
                text.push('\n');
            }
            if let Some(base) = &args.trace {
                let path = trace_path(base, experiment.id, many);
                fs::write(&path, trace.to_chrome_json()).expect("can write trace file");
                eprintln!("[{} trace written to {}]", experiment.id, path.display());
            }
        } else if capture {
            eprintln!("note: {id} has no traced run; no trace captured");
        }
        println!("{text}");
        println!(
            "[{} completed in {:.1}s]\n",
            experiment.id,
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &args.out {
            fs::write(dir.join(format!("{}.txt", experiment.id)), &text)
                .expect("can write experiment output");
            if args.csv {
                fs::write(
                    dir.join(format!("{}.csv", experiment.id)),
                    experiment.render_csv(),
                )
                .expect("can write experiment CSV");
            }
        }
    }
}
