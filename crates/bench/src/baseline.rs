//! Faithful reconstruction of the *pre-optimization* simulation hot path,
//! kept as the comparison target of the `scan_throughput` micro-benchmark.
//!
//! The optimized hot path replaced, layer by layer:
//!
//! * `Vec<Vec<u64>>` per-set cache tags with `position()` + `remove`/
//!   `insert` MRU shifting → flat set-major tag array with per-way byte
//!   recency ranks,
//! * `HashMap<u64, SimTime>` pending-prefetch map (SipHash, threshold
//!   `retain` purge) → a [`relmem_cache`] slot-indexed arrival array
//!   addressed by the locating set walk itself,
//! * `Vec<SimTime>` in-flight MSHRs with `retain` + `min_by_key` → the
//!   fixed-capacity `MissSlots` pool,
//! * a heap-allocated `Vec<u64>` of prefetch targets per L1 miss → an
//!   inline line range,
//! * a heap-allocated `Vec` of per-DRAM-row chunks per fill → a lazy
//!   iterator,
//! * per-field `field_addr()` / `schema().width()` lookups and per-access
//!   backend construction in `System::scan` → per-scan column cursors.
//!
//! This module reimplements the *old* shape of all of the above (including
//! its allocation behaviour), so the benchmark's "baseline" row is the
//! seed implementation in everything but name. On workloads that never
//! revisit an evicted line — such as the benchmark's sequential scan — its
//! simulated timing and counters are identical to the optimized engine,
//! which the benchmark asserts.

use std::collections::HashMap;

use relmem_core::cost::CpuCostModel;
use relmem_core::system::RowEffect;
use relmem_dram::PhysicalMemory;
use relmem_sim::{MultiResource, PlatformConfig, Resource, SimTime};
use relmem_storage::RowTable;

/// The seed's set-associative cache: one MRU-ordered `Vec<u64>` per set.
struct BaselineCache {
    line_bytes: u64,
    sets: usize,
    assoc: usize,
    ways: Vec<Vec<u64>>,
    requests: u64,
    hits: u64,
    misses: u64,
}

impl BaselineCache {
    fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        let sets = size_bytes / (assoc * line_bytes);
        BaselineCache {
            line_bytes: line_bytes as u64,
            sets,
            assoc,
            ways: vec![Vec::with_capacity(assoc); sets],
            requests: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.sets as u64) as usize
    }

    fn access(&mut self, line: u64) -> bool {
        self.requests += 1;
        let set = self.set_index(line);
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let assoc = self.assoc;
        let set = self.set_index(line);
        let ways = &mut self.ways[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            return None;
        }
        let evicted = if ways.len() == assoc { ways.pop() } else { None };
        ways.insert(0, line);
        evicted
    }
}

/// The seed's DRAM controller: identical timing maths, but with the
/// original allocating per-row chunk split.
struct BaselineDram {
    cfg: relmem_sim::DramConfig,
    open_rows: Vec<Option<u64>>,
    banks: MultiResource,
    bus: Resource,
    accesses: u64,
    row_hits: u64,
    row_misses: u64,
    beats: u64,
    bytes_transferred: u64,
}

impl BaselineDram {
    fn new(cfg: relmem_sim::DramConfig) -> Self {
        BaselineDram {
            open_rows: vec![None; cfg.banks],
            banks: MultiResource::new("banks", cfg.banks),
            bus: Resource::new("bus"),
            accesses: 0,
            row_hits: 0,
            row_misses: 0,
            beats: 0,
            bytes_transferred: 0,
            cfg,
        }
    }

    /// The seed's address decode: plain divisions by runtime geometry.
    fn decode_seed(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.cfg.row_bytes as u64;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    fn access(&mut self, addr: u64, bytes: usize, ready: SimTime) -> SimTime {
        // The seed materialised the chunk list per access, splitting with
        // per-chunk division.
        let mut chunks: Vec<(u64, usize)> = Vec::new();
        let mut cur = addr;
        let end = addr + bytes.max(1) as u64;
        while cur < end {
            let row_end = (cur / self.cfg.row_bytes as u64 + 1) * self.cfg.row_bytes as u64;
            let chunk_end = row_end.min(end);
            chunks.push((cur, (chunk_end - cur) as usize));
            cur = chunk_end;
        }
        let mut finish = ready;
        let mut start = SimTime::from_picos(u64::MAX);
        for (addr, len) in chunks {
            let (bank, row) = self.decode_seed(addr);
            let row_hit = self.open_rows[bank] == Some(row);
            let (occupancy, latency) = if row_hit {
                self.row_hits += 1;
                (self.cfg.t_ccd, self.cfg.row_hit_latency())
            } else {
                self.row_misses += 1;
                self.open_rows[bank] = Some(row);
                (
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_ccd,
                    self.cfg.row_miss_latency(),
                )
            };
            let (bank_start, _) = self.banks.acquire_server(bank, ready, occupancy);
            let data_ready = bank_start + latency;
            let beats = len.div_ceil(self.cfg.bus_bytes) as u64;
            let transfer = self.cfg.beat_time * beats;
            let (_, bus_end) = self.bus.acquire(data_ready, transfer);
            self.accesses += 1;
            self.beats += beats;
            self.bytes_transferred += beats * self.cfg.bus_bytes as u64;
            start = start.min(bank_start);
            finish = finish.max(bus_end);
        }
        let _ = start;
        finish
    }
}

/// The seed's stream-prefetcher bookkeeping (identical decisions; the old
/// implementation materialised every decision as a `Vec<u64>`, reproduced
/// here).
struct BaselineStream {
    last_demand: u64,
    last_prefetched: u64,
    touched: u64,
}

struct BaselinePrefetcher {
    line_bytes: u64,
    max_streams: usize,
    degree: usize,
    streams: Vec<BaselineStream>,
    recent: std::collections::VecDeque<u64>,
    tick: u64,
    issued: u64,
    stream_hits: u64,
}

impl BaselinePrefetcher {
    fn new(line_bytes: usize, max_streams: usize, degree: usize) -> Self {
        BaselinePrefetcher {
            line_bytes: line_bytes as u64,
            max_streams,
            degree,
            streams: Vec::new(),
            recent: std::collections::VecDeque::with_capacity(16),
            tick: 0,
            issued: 0,
            stream_hits: 0,
        }
    }

    fn train(&mut self, addr: u64) -> Vec<u64> {
        if self.max_streams == 0 || self.degree == 0 {
            return Vec::new();
        }
        self.tick += 1;
        let line = addr / self.line_bytes;
        if let Some(idx) = self
            .streams
            .iter()
            .position(|s| line > s.last_demand && line <= s.last_prefetched + 1)
        {
            let degree = self.degree as u64;
            let stream = &mut self.streams[idx];
            stream.last_demand = line;
            stream.touched = self.tick;
            let target = line + degree;
            let from = stream.last_prefetched + 1;
            let mut lines = Vec::new();
            if target >= from {
                for l in from..=target {
                    lines.push(l * self.line_bytes);
                }
                stream.last_prefetched = target;
            }
            self.issued += lines.len() as u64;
            self.stream_hits += 1;
            return lines;
        }
        let detected = line
            .checked_sub(1)
            .is_some_and(|p| self.recent.contains(&p));
        if self.recent.len() == 16 {
            self.recent.pop_front();
        }
        self.recent.push_back(line);
        if !detected {
            return Vec::new();
        }
        if self.streams.len() == self.max_streams {
            if let Some(lru) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.touched)
                .map(|(i, _)| i)
            {
                self.streams.swap_remove(lru);
            }
        }
        let degree = self.degree as u64;
        let last_prefetched = line + degree;
        let lines: Vec<u64> = (line + 1..=last_prefetched)
            .map(|l| l * self.line_bytes)
            .collect();
        self.issued += lines.len() as u64;
        self.streams.push(BaselineStream {
            last_demand: line,
            last_prefetched,
            touched: self.tick,
        });
        lines
    }
}

/// The seed's cache hierarchy: `HashMap` pending map with threshold purge,
/// `Vec` MSHRs with `retain` + `min_by_key`, per-set `Vec` tag stores.
pub struct BaselineHierarchy {
    l1: BaselineCache,
    l2: BaselineCache,
    stats_l1_requests: u64,
    stats_l1_hits: u64,
    stats_l1_misses: u64,
    stats_l2_requests: u64,
    stats_l2_hits: u64,
    stats_l2_misses: u64,
    backend_fills: u64,
    prefetches_issued: u64,
    prefetch_hits: u64,
    prefetcher: BaselinePrefetcher,
    pending: HashMap<u64, SimTime>,
    inflight: Vec<SimTime>,
    max_outstanding: usize,
    l1_hit: SimTime,
    l2_hit: SimTime,
    line_bytes: u64,
    dram: BaselineDram,
}

impl BaselineHierarchy {
    /// Builds the baseline engine for a platform.
    pub fn new(cfg: &PlatformConfig) -> Self {
        let cpu = cfg.cpu_clock();
        BaselineHierarchy {
            stats_l1_requests: 0,
            stats_l1_hits: 0,
            stats_l1_misses: 0,
            stats_l2_requests: 0,
            stats_l2_hits: 0,
            stats_l2_misses: 0,
            backend_fills: 0,
            prefetches_issued: 0,
            prefetch_hits: 0,
            l1: BaselineCache::new(cfg.l1.size_bytes, cfg.l1.associativity, cfg.l1.line_bytes),
            l2: BaselineCache::new(cfg.l2.size_bytes, cfg.l2.associativity, cfg.l2.line_bytes),
            prefetcher: BaselinePrefetcher::new(
                cfg.line_bytes(),
                cfg.prefetch_streams,
                cfg.prefetch_degree,
            ),
            pending: HashMap::new(),
            inflight: Vec::new(),
            max_outstanding: cfg.cpu.max_outstanding_misses.max(1),
            l1_hit: cpu.cycles(cfg.l1.hit_latency_cycles),
            l2_hit: cpu.cycles(cfg.l2.hit_latency_cycles),
            line_bytes: cfg.line_bytes() as u64,
            dram: BaselineDram::new(cfg.dram),
        }
    }

    fn book_miss_slot(&mut self, ready: SimTime, now: SimTime) -> SimTime {
        self.inflight.retain(|&t| t > now);
        if self.inflight.len() < self.max_outstanding {
            return ready;
        }
        let (idx, &earliest) = self
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("inflight is non-empty");
        self.inflight.swap_remove(idx);
        ready.max(earliest)
    }

    /// One CPU access, reproducing the seed's `access_line` structure.
    pub fn access(&mut self, addr: u64, bytes: usize, now: SimTime) -> SimTime {
        let first_line = addr & !(self.line_bytes - 1);
        let last_line = (addr + bytes.max(1) as u64 - 1) & !(self.line_bytes - 1);
        let mut completion = now;
        let mut line = first_line;
        loop {
            completion = completion.max(self.access_line(line, now));
            if line == last_line {
                break;
            }
            line += self.line_bytes;
        }
        completion
    }

    fn access_line(&mut self, line: u64, now: SimTime) -> SimTime {
        self.stats_l1_requests += 1;
        if self.l1.access(line) {
            self.stats_l1_hits += 1;
            return now + self.l1_hit;
        }
        self.stats_l1_misses += 1;
        let prefetch_lines = self.prefetcher.train(line);
        for pline in prefetch_lines {
            self.issue_prefetch(pline, now);
        }
        if self.pending.len() > 4096 {
            self.pending.retain(|_, arrival| *arrival > now);
        }
        self.stats_l2_requests += 1;
        let l2_lookup_done = now + self.l1_hit + self.l2_hit;
        if self.l2.access(line) {
            self.stats_l2_hits += 1;
            let arrival = self.pending.remove(&line).unwrap_or(SimTime::ZERO);
            if !arrival.is_zero() {
                self.prefetch_hits += 1;
            }
            self.l1.fill(line);
            return l2_lookup_done.max(arrival);
        }
        self.stats_l2_misses += 1;
        self.backend_fills += 1;
        let issue = self.book_miss_slot(now + self.l1_hit + self.l2_hit, now);
        let arrival = self.dram.access(line, 64, issue);
        self.inflight.push(arrival);
        self.l2.fill(line);
        self.l1.fill(line);
        arrival.max(l2_lookup_done)
    }

    fn issue_prefetch(&mut self, line: u64, now: SimTime) {
        self.stats_l2_requests += 1;
        if self.l2.access(line) {
            self.stats_l2_hits += 1;
            return;
        }
        self.stats_l2_misses += 1;
        self.prefetches_issued += 1;
        self.backend_fills += 1;
        let issue = self.book_miss_slot(now, now);
        let arrival = self.dram.access(line, 64, issue);
        self.inflight.push(arrival);
        self.l2.fill(line);
        self.pending.insert(line, arrival);
    }

    /// Hierarchy counters in the engine's shape (used by the benchmark's
    /// equivalence assertion).
    pub fn stats(&self) -> relmem_cache::HierarchyStats {
        let mut s = relmem_cache::HierarchyStats::default();
        s.l1.requests = self.stats_l1_requests;
        s.l1.hits = self.stats_l1_hits;
        s.l1.misses = self.stats_l1_misses;
        s.l2.requests = self.stats_l2_requests;
        s.l2.hits = self.stats_l2_hits;
        s.l2.misses = self.stats_l2_misses;
        s.backend_fills = self.backend_fills;
        s.prefetches_issued = self.prefetches_issued;
        s.prefetch_hits = self.prefetch_hits;
        s
    }
}

/// The seed's `read_uint`: slice + byte-wise copy into a padded buffer.
fn read_uint_seed(mem: &PhysicalMemory, addr: u64, width: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf[..width].copy_from_slice(mem.read(addr, width));
    u64::from_le_bytes(buf)
}

/// The seed's `System::scan` over a row table (no MVCC): per-field
/// `field_addr()` / `width()` lookups through their `Result` chains, and
/// the whole cache walk per access. Returns `(end, cpu, rows)`.
pub fn scan_rows_baseline<F>(
    hierarchy: &mut BaselineHierarchy,
    mem: &PhysicalMemory,
    table: &RowTable,
    columns: &[usize],
    start: SimTime,
    mut per_row: F,
) -> (SimTime, SimTime, u64)
where
    F: FnMut(u64, &[u64]) -> RowEffect,
{
    let cost = CpuCostModel::default();
    let mut now = start;
    let mut cpu_total = SimTime::ZERO;
    let mut values: Vec<u64> = vec![0; columns.len()];
    let mut rows_scanned = 0u64;
    let rows = table.num_rows();
    for row in 0..rows {
        for (slot, &col) in columns.iter().enumerate() {
            let addr = table.field_addr(row, col).expect("valid column");
            let width = table.schema().width(col).expect("valid column");
            now = hierarchy.access(addr, width, now);
            values[slot] = read_uint_seed(mem, addr, width.min(8));
        }
        let effect = per_row(row, &values);
        let cpu = cost.row_loop() + cost.fields(columns.len()) + effect.cpu;
        now += cpu;
        cpu_total += cpu;
        if let Some((addr, bytes)) = effect.touch {
            now = hierarchy.access(addr, bytes, now);
        }
        rows_scanned += 1;
    }
    (now, cpu_total, rows_scanned)
}
