//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6).
//!
//! Each `figNN` function runs the corresponding experiment on the simulated
//! platform and returns an [`Experiment`]: one or more tables whose rows are
//! the series the paper plots. The `figures` binary renders them to text and
//! CSV; `EXPERIMENTS.md` records the measured output next to the paper's
//! reported shape.
//!
//! Absolute numbers are simulated nanoseconds, not wall-clock on a ZCU102 —
//! only orderings, ratios and crossover points are meaningful.

pub mod baseline;
pub mod figures;

pub use figures::{
    all_experiments, experiment_by_id, experiment_by_id_traced, fig06, fig07, fig08, fig09, fig10,
    fig11, fig12, fig13, fig13_multicore, fig_dram_fidelity, fig_dram_fidelity_traced, fig_htap,
    fig_htap_open_loop, fig_htap_open_loop_traced, fig_txn, fig_txn_traced, table1, table2,
    Experiment,
};
