//! Figure 12: hash join (Q5).
//!
//! The paper's observations: joining through the RME is 5–12 % faster than
//! the direct row-store join; the CPU cost of hashing dominates and is
//! identical for both paths, while the RME reduces the data-movement share
//! of the runtime (by up to ~41 % at 256-byte rows).

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series, Table};

use super::{default_rows, Experiment};
use crate::figures::fig07::WIDTHS;
use crate::figures::fig11::ROW_WIDTHS;

/// Sub-figure (a): normalized execution time vs. column width.
fn by_column_width(rows: u64) -> Table {
    let mut series = vec![Series::new("Direct Row-wise"), Series::new("RME")];
    for width in WIDTHS {
        let params = BenchmarkParams {
            rows,
            inner_rows: rows,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let base = bench
            .run(Query::Q5, AccessPath::DirectRowWise)
            .measurement
            .elapsed
            .as_nanos_f64();
        let rme = bench.run(Query::Q5, AccessPath::RmeCold).measurement.elapsed.as_nanos_f64();
        series[0].push(width, 1.0);
        series[1].push(width, rme / base);
    }
    series_table(
        "Figure 12a: Q5 (hash join) normalized execution time vs. column width",
        "Column width (B)",
        &series,
    )
}

/// Sub-figure (b): execution time and CPU / data-movement breakdown vs. row
/// width.
fn by_row_width(rows: u64) -> Table {
    let mut table = Table::new(
        "Figure 12b: Q5 (hash join) execution time and CPU/data breakdown vs. row width",
        &[
            "Row width (B)",
            "Direct Row-wise total (ms)",
            "Direct CPU (ms)",
            "Direct data (ms)",
            "RME total (ms)",
            "RME CPU (ms)",
            "RME data (ms)",
            "Data movement reduction (%)",
        ],
    );
    for row_bytes in ROW_WIDTHS {
        let params = BenchmarkParams {
            rows,
            inner_rows: rows,
            row_bytes,
            column_width: 4,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let direct = bench.run(Query::Q5, AccessPath::DirectRowWise).measurement;
        let rme = bench.run(Query::Q5, AccessPath::RmeCold).measurement;
        let reduction = 100.0
            * (1.0
                - rme.data_time().as_nanos_f64()
                    / direct.data_time().as_nanos_f64().max(1.0));
        table.push_row(vec![
            row_bytes.to_string(),
            format!("{:.3}", direct.elapsed.as_millis_f64()),
            format!("{:.3}", direct.cpu_time.as_millis_f64()),
            format!("{:.3}", direct.data_time().as_millis_f64()),
            format!("{:.3}", rme.elapsed.as_millis_f64()),
            format!("{:.3}", rme.cpu_time.as_millis_f64()),
            format!("{:.3}", rme.data_time().as_millis_f64()),
            format!("{:.1}", reduction),
        ]);
    }
    table
}

/// Runs the Figure 12 experiment.
pub fn fig12(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    Experiment {
        id: "fig12",
        description: "Hash join through the RME vs. a direct row-store join: modest end-to-end \
                      gain, large data-movement reduction, CPU hashing dominates both"
            .to_string(),
        tables: vec![by_column_width(rows), by_row_width(rows)],
    }
}
