//! Figure 8: L1 and L2 cache requests and misses during Q1.
//!
//! The paper's observations: the RME paths issue far fewer L1/L2 misses
//! because only useful bytes reach the caches; direct row-wise access has
//! the most misses (every row drags a full line through the hierarchy); the
//! L1 prefetcher inflates the L2 request counts.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::Table;

use super::{default_rows, Experiment};
use crate::figures::fig07::WIDTHS;

/// Runs the Figure 8 experiment: one table per counter, rows = column
/// widths, columns = access paths.
pub fn fig08(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    let query = Query::Q1 { projectivity: 3 };
    let paths = [
        AccessPath::DirectRowWise,
        AccessPath::DirectColumnar,
        AccessPath::RmeCold,
        AccessPath::RmeHot,
    ];

    let counters = ["L1 Requests", "L1 Misses", "L2 Requests", "L2 Misses"];
    let mut tables: Vec<Table> = counters
        .iter()
        .map(|c| {
            let mut headers = vec!["Column width (B)"];
            headers.extend(paths.iter().map(|p| p.label()));
            Table::new(format!("Figure 8: {c} during Q1 (k=3)"), &headers)
        })
        .collect();

    for width in WIDTHS {
        let params = BenchmarkParams {
            rows,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let mut cells: Vec<Vec<String>> = vec![vec![width.to_string()]; 4];
        for path in paths {
            let run = bench.run(query, path);
            let c = &run.measurement.cache;
            cells[0].push(c.l1.requests.to_string());
            cells[1].push(c.l1.misses.to_string());
            cells[2].push(c.l2.requests.to_string());
            cells[3].push(c.l2.misses.to_string());
        }
        for (t, row) in tables.iter_mut().zip(cells) {
            t.push_row(row);
        }
    }

    Experiment {
        id: "fig8",
        description: "Cache requests and misses during Q1: the RME propagates only useful bytes \
                      through the hierarchy"
            .to_string(),
        tables,
    }
}
