//! Tables 1 and 2 of the paper.

use relmem_rme::config_port::regs;
use relmem_rme::resources::{estimate_area, DeviceCapacity};
use relmem_rme::HwRevision;
use relmem_sim::report::Table;
use relmem_sim::RmeHwConfig;

use super::Experiment;

/// Table 1: the RME configuration-port register map. Reproduced directly
/// from the implemented register file so any drift between documentation and
/// code shows up here.
pub fn table1() -> Experiment {
    let mut table = Table::new(
        "Table 1: RME configuration port — addresses and description",
        &["Parameter", "Symbol", "Address", "Description"],
    );
    let rows: Vec<[String; 4]> = vec![
        [
            "Row size".into(),
            "R".into(),
            format!("base+{:#04x}", regs::ROW_SIZE),
            "database tuple width".into(),
        ],
        [
            "Row count".into(),
            "N".into(),
            format!("base+{:#04x}", regs::ROW_COUNT),
            "database tuple count".into(),
        ],
        [
            "Software reset".into(),
            "SW".into(),
            format!("base+{:#04x}", regs::SW_RESET),
            "software triggered reset request".into(),
        ],
        [
            "Enabled columns count".into(),
            "Q".into(),
            format!("base+{:#04x}", regs::ENABLED_COLUMNS),
            "amount of columns of interest".into(),
        ],
        [
            "Column width".into(),
            "CA_j".into(),
            format!("base+{:#04x}+(j*0x2)", regs::COLUMN_WIDTH_BASE),
            format!("j-th column width (j in [0,{}))", regs::MAX_COLUMNS),
        ],
        [
            "Column offset".into(),
            "OA_j".into(),
            format!("base+{:#04x}+(j*0x2)", regs::COLUMN_OFFSET_BASE),
            format!("j-th column offset (j in [0,{}))", regs::MAX_COLUMNS),
        ],
        [
            "Frame number".into(),
            "F".into(),
            format!("base+{:#04x}", regs::FRAME_NUMBER),
            "filtered table frame number".into(),
        ],
    ];
    for row in rows {
        table.push_row(row.to_vec());
    }
    Experiment {
        id: "table1",
        description: "RME configuration port register map (from the implemented register file)"
            .to_string(),
        tables: vec![table],
    }
}

/// Table 2: post-implementation area report of the MLP design on the
/// ZCU102, reproduced through the analytical resource model.
pub fn table2() -> Experiment {
    let report = estimate_area(
        &RmeHwConfig::default(),
        HwRevision::Mlp,
        DeviceCapacity::zcu102(),
    );
    let mut table = Table::new(
        "Table 2: estimated post-implementation area for the MLP design on the ZCU102",
        &["Resources", "LUT", "FF", "BRAM", "DSP"],
    );
    table.push_row(vec![
        "Utilization (%)".to_string(),
        format!("{:.2}", report.lut_pct),
        format!("{:.2}", report.ff_pct),
        format!("{:.2}", report.bram_pct),
        format!("{:.2}", report.dsp_pct),
    ]);
    table.push_row(vec![
        "Absolute".to_string(),
        report.usage.luts.to_string(),
        report.usage.ffs.to_string(),
        report.usage.bram36.to_string(),
        report.usage.dsps.to_string(),
    ]);
    table.push_row(vec![
        "Paper reports (%)".to_string(),
        "2.78".to_string(),
        "0.68".to_string(),
        "60.69".to_string(),
        "0.08".to_string(),
    ]);
    Experiment {
        id: "table2",
        description: "FPGA resource utilisation of the MLP design (analytical model vs. the \
                      paper's Vivado report)"
            .to_string(),
        tables: vec![table],
    }
}
