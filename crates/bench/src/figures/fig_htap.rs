//! HTAP isolation: concurrent per-core query streams (beyond the paper's
//! single-threaded evaluation).
//!
//! The paper's central promise is that ephemeral variables let analytics
//! run *beside* transactional row-wise traffic. This experiment measures
//! exactly that with the workload-stream subsystem: core 0 runs an OLTP
//! stream of point lookups and in-place updates against the row table
//! while every other core runs an analytical single-column scan — either
//! reading the rows directly (the baseline that trashes the memory system
//! with full 64-byte-row traffic) or through the RME (which moves the
//! column as densely packed frames fetched by the engine).
//!
//! Reported per core count (1 = interference-free OLTP baseline, 2/4/8 =
//! one, three and seven concurrent scan streams — 8 being a hypothetical
//! doubled cluster beyond the ZCU102's four A53s): aggregate OLAP scan
//! throughput,
//! OLTP p50/p99/max latency, and the p99 degradation factor against the
//! baseline. The headline number is the degradation — OLTP tail latency
//! degrades less when the scans go through the engine, because the packed
//! projection issues ~row_bytes/column_width fewer cache lines per logical
//! row, polluting neither the shared L2 banks nor the DRAM bus the point
//! queries depend on. `tests/workload.rs` gates the ordering; this harness
//! quantifies it. The RME path is measured both cold (first access
//! triggers the frame fetch) and hot (Reorganization Buffer prewarmed —
//! the steady-state case).
//!
//! **Known model artifact (visible in the max column):** the engine books
//! a frame's whole DRAM traffic in one simulation step, and the
//! occupancy-tracked bus serves bookings strictly in booking order — so
//! on the *cold* path a single concurrent OLTP op can absorb the entire
//! fetch shadow (a millisecond-scale max latency) while every other op is
//! untouched. Real hardware would spread that delay thinly across the ops
//! issued during the fetch. Percentiles are faithful; the max is
//! pessimistic by concentration. Incremental (descriptor-window) frame
//! fetching is the recorded follow-up in ROADMAP.md.

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::workload::{QueryStream, Workload, WorkloadOp};
use relmem_core::{AccessPath, System};
use relmem_sim::report::{series_table, Series};
use relmem_storage::{ColumnGroup, DataGen, MvccConfig, RowTable, Schema};
use relmem_sim::SimTime;

use super::Experiment;

/// Which path the analytical streams take.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OlapPath {
    Direct,
    RmeCold,
    RmeHot,
}

/// One (path, cores) measurement.
struct HtapPoint {
    olap_mfields_s: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

const SCAN_COLUMNS: [usize; 1] = [0];
const OLTP_COLUMNS: [usize; 2] = [1, 2];

fn run_htap(rows: u64, oltp_ops: u64, cores: usize, path: OlapPath) -> HtapPoint {
    let mut sys = System::with_config(SystemConfig {
        cores,
        mem_bytes: ((rows * 64) as usize + (64 << 20)).next_power_of_two(),
        ..SystemConfig::default()
    });
    let schema = Schema::benchmark(4, 4, 64);
    let mut table: RowTable = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");

    let var;
    let scan_source = match path {
        OlapPath::RmeCold | OlapPath::RmeHot => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
                .expect("ephemeral registers");
            ScanSource::Ephemeral { var: &var }
        }
        OlapPath::Direct => ScanSource::Rows {
            table: &table,
            columns: &SCAN_COLUMNS,
            snapshot: None,
        },
    };

    // Core 0: deterministic point traffic — four lookups then one update,
    // rows spread by a Knuth-style multiplicative hash.
    let oltp: Vec<WorkloadOp> = (0..oltp_ops)
        .map(|i| {
            let row = i.wrapping_mul(2654435761) % rows;
            if i % 5 == 4 {
                WorkloadOp::PointUpdate {
                    table: &table,
                    row,
                    column: 1,
                    value: i,
                }
            } else {
                WorkloadOp::PointLookup {
                    table: &table,
                    columns: &OLTP_COLUMNS,
                    row,
                }
            }
        })
        .collect();
    let mut streams = vec![QueryStream::new(oltp)];
    for _ in 1..cores {
        streams.push(QueryStream::new(vec![WorkloadOp::olap(scan_source)]));
    }
    let workload = Workload::new(streams);

    sys.begin_measurement(match path {
        OlapPath::RmeCold => AccessPath::RmeCold,
        OlapPath::RmeHot => AccessPath::RmeHot,
        OlapPath::Direct => AccessPath::DirectRowWise,
    });
    let run = sys.run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default());
    assert_eq!(run.olap_rows(), (cores as u64 - 1) * rows);

    let mut lat = run.oltp_latencies();
    let olap_end = run
        .streams
        .iter()
        .skip(1)
        .map(|s| s.end)
        .fold(SimTime::ZERO, SimTime::max);
    HtapPoint {
        olap_mfields_s: if olap_end.is_zero() {
            0.0
        } else {
            run.olap_rows() as f64 / olap_end.as_nanos_f64() * 1e9 / 1e6
        },
        p50_us: lat.p50().as_micros_f64(),
        p99_us: lat.p99().as_micros_f64(),
        max_us: lat.max().as_micros_f64(),
    }
}

/// Runs the HTAP mixed-stream sweep: 1/2/4 cores, direct vs. RME scans.
pub fn fig_htap(quick: bool) -> Experiment {
    let rows: u64 = if quick { 30_000 } else { 150_000 };
    let oltp_ops: u64 = if quick { 500 } else { 2_000 };

    // Interference-free OLTP baseline: one stream, one core, no scans.
    let baseline = run_htap(rows, oltp_ops, 1, OlapPath::Direct);

    const PATHS: [(OlapPath, &str); 3] = [
        (OlapPath::Direct, "direct"),
        (OlapPath::RmeCold, "RME cold"),
        (OlapPath::RmeHot, "RME hot"),
    ];
    let mut olap: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("OLAP Mrows/s ({n})")))
        .collect();
    let mut p50: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p50 us ({n})")))
        .collect();
    let mut p99: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p99 us ({n})")))
        .collect();
    let mut max: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("max us ({n})")))
        .collect();
    let mut deg: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p99 degradation x ({n})")))
        .collect();

    let one = "1 core (baseline)".to_string();
    for i in 0..PATHS.len() {
        olap[i].push(one.clone(), 0.0);
        p50[i].push(one.clone(), baseline.p50_us);
        p99[i].push(one.clone(), baseline.p99_us);
        max[i].push(one.clone(), baseline.max_us);
        deg[i].push(one.clone(), 1.0);
    }

    for cores in [2usize, 4, 8] {
        let label = format!("{cores} cores ({} scan streams)", cores - 1);
        for (i, (path, _)) in PATHS.iter().enumerate() {
            let point = run_htap(rows, oltp_ops, cores, *path);
            olap[i].push(label.clone(), point.olap_mfields_s);
            p50[i].push(label.clone(), point.p50_us);
            p99[i].push(label.clone(), point.p99_us);
            max[i].push(label.clone(), point.max_us);
            deg[i].push(label.clone(), point.p99_us / baseline.p99_us);
        }
    }

    let tables = vec![
        series_table(
            "HTAP: aggregate OLAP scan throughput beside an OLTP stream",
            "Streams",
            &olap,
        ),
        series_table(
            "HTAP: OLTP point-query latency under concurrent scans \
             (max exposes the cold frame-fetch booking artifact; see module docs)",
            "Streams",
            &[p50, p99, max].concat(),
        ),
        series_table(
            "HTAP: OLTP p99 degradation vs. interference-free baseline",
            "Streams",
            &deg,
        ),
    ];
    Experiment {
        id: "fig_htap",
        description: "Concurrent per-core HTAP streams: OLTP point queries on core 0 while the \
                      remaining cores scan one column — tail latency degrades less when the \
                      scans go through the RME than when they read the rows directly"
            .to_string(),
        tables,
    }
}
