//! HTAP isolation: concurrent per-core query streams (beyond the paper's
//! single-threaded evaluation).
//!
//! The paper's central promise is that ephemeral variables let analytics
//! run *beside* transactional row-wise traffic. This experiment measures
//! exactly that with the workload-stream subsystem: core 0 runs an OLTP
//! stream of point lookups and in-place updates against the row table
//! while every other core runs an analytical single-column scan — either
//! reading the rows directly (the baseline that trashes the memory system
//! with full 64-byte-row traffic) or through the RME (which moves the
//! column as densely packed frames fetched by the engine).
//!
//! Reported per core count (1 = interference-free OLTP baseline, 2/4/8 =
//! one, three and seven concurrent scan streams — 8 being a hypothetical
//! doubled cluster beyond the ZCU102's four A53s): aggregate OLAP scan
//! throughput,
//! OLTP p50/p99/max latency, and the p99 degradation factor against the
//! baseline. The headline number is the degradation — OLTP tail latency
//! degrades less when the scans go through the engine, because the packed
//! projection issues ~row_bytes/column_width fewer cache lines per logical
//! row, polluting neither the shared L2 banks nor the DRAM bus the point
//! queries depend on. `tests/workload.rs` gates the ordering; this harness
//! quantifies it. The RME path is measured both cold (first access
//! triggers the frame fetch) and hot (Reorganization Buffer prewarmed —
//! the steady-state case).
//!
//! **Resolved model artifact (the max column):** the synchronous memory
//! path books a frame's whole DRAM traffic in one simulation step, and
//! the occupancy-tracked bus serves bookings strictly in booking order —
//! so on the *cold* path one unlucky concurrent OLTP op absorbed the
//! entire fetch shadow (a millisecond-scale max latency) while every
//! other op was untouched. The event-driven completion queue fixes both
//! halves: the engine fetches descriptor-window frames incrementally
//! (line-granular bookings instead of one monolithic reservation), and
//! CPU point traffic is admitted with demand priority over the engine's
//! paced prefetch stream, mirroring the ZCU102's PS–PL interconnect QoS.
//! The sweep below runs event-driven; a dedicated comparison table pins
//! the fix, asserting the cold-path max drops at least 2x against the
//! synchronous path while the percentiles stay within noise.

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::workload::{QueryStream, Workload, WorkloadOp};
use relmem_core::{
    AccessPath, AdmissionConfig, DegradePolicy, OpenLoopOp, OpenLoopStream, OpenLoopWorkload,
    System,
};
use relmem_sim::report::{series_table, Series};
use relmem_sim::{OverloadStats, SimTime, Trace};
use relmem_storage::{ColumnGroup, DataGen, MvccConfig, RowTable, Schema};

use super::Experiment;

/// Which path the analytical streams take.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OlapPath {
    Direct,
    RmeCold,
    RmeHot,
}

/// One (path, cores) measurement.
struct HtapPoint {
    olap_mfields_s: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

const SCAN_COLUMNS: [usize; 1] = [0];
const OLTP_COLUMNS: [usize; 2] = [1, 2];

fn run_htap(rows: u64, oltp_ops: u64, cores: usize, path: OlapPath, event_driven: bool) -> HtapPoint {
    let mut sys = System::with_config(SystemConfig {
        cores,
        mem_bytes: ((rows * 64) as usize + (64 << 20)).next_power_of_two(),
        event_driven,
        ..SystemConfig::default()
    });
    let schema = Schema::benchmark(4, 4, 64);
    let mut table: RowTable = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");

    let var;
    let scan_source = match path {
        OlapPath::RmeCold | OlapPath::RmeHot => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
                .expect("ephemeral registers");
            ScanSource::Ephemeral { var: &var }
        }
        OlapPath::Direct => ScanSource::Rows {
            table: &table,
            columns: &SCAN_COLUMNS,
            snapshot: None,
        },
    };

    // Core 0: deterministic point traffic — four lookups then one update,
    // rows spread by a Knuth-style multiplicative hash.
    let oltp: Vec<WorkloadOp> = (0..oltp_ops)
        .map(|i| {
            let row = i.wrapping_mul(2654435761) % rows;
            if i % 5 == 4 {
                WorkloadOp::PointUpdate {
                    table: &table,
                    row,
                    column: 1,
                    value: i,
                }
            } else {
                WorkloadOp::PointLookup {
                    table: &table,
                    columns: &OLTP_COLUMNS,
                    row,
                }
            }
        })
        .collect();
    let mut streams = vec![QueryStream::new(oltp)];
    for _ in 1..cores {
        streams.push(QueryStream::new(vec![WorkloadOp::olap(scan_source)]));
    }
    let workload = Workload::new(streams);

    sys.begin_measurement(match path {
        OlapPath::RmeCold => AccessPath::RmeCold,
        OlapPath::RmeHot => AccessPath::RmeHot,
        OlapPath::Direct => AccessPath::DirectRowWise,
    });
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    assert_eq!(run.olap_rows(), (cores as u64 - 1) * rows);

    let mut lat = run.oltp_latencies();
    let olap_end = run
        .streams
        .iter()
        .skip(1)
        .map(|s| s.end)
        .fold(SimTime::ZERO, SimTime::max);
    HtapPoint {
        olap_mfields_s: if olap_end.is_zero() {
            0.0
        } else {
            run.olap_rows() as f64 / olap_end.as_nanos_f64() * 1e9 / 1e6
        },
        p50_us: lat.p50().as_micros_f64(),
        p99_us: lat.p99().as_micros_f64(),
        max_us: lat.max().as_micros_f64(),
    }
}

/// Runs the HTAP mixed-stream sweep: 1/2/4 cores, direct vs. RME scans.
pub fn fig_htap(quick: bool) -> Experiment {
    let rows: u64 = if quick { 30_000 } else { 150_000 };
    let oltp_ops: u64 = if quick { 500 } else { 2_000 };

    // Interference-free OLTP baseline: one stream, one core, no scans.
    let baseline = run_htap(rows, oltp_ops, 1, OlapPath::Direct, true);

    const PATHS: [(OlapPath, &str); 3] = [
        (OlapPath::Direct, "direct"),
        (OlapPath::RmeCold, "RME cold"),
        (OlapPath::RmeHot, "RME hot"),
    ];
    let mut olap: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("OLAP Mrows/s ({n})")))
        .collect();
    let mut p50: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p50 us ({n})")))
        .collect();
    let mut p99: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p99 us ({n})")))
        .collect();
    let mut max: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("max us ({n})")))
        .collect();
    let mut deg: Vec<Series> = PATHS
        .iter()
        .map(|(_, n)| Series::new(format!("p99 degradation x ({n})")))
        .collect();

    let one = "1 core (baseline)".to_string();
    for i in 0..PATHS.len() {
        olap[i].push(one.clone(), 0.0);
        p50[i].push(one.clone(), baseline.p50_us);
        p99[i].push(one.clone(), baseline.p99_us);
        max[i].push(one.clone(), baseline.max_us);
        deg[i].push(one.clone(), 1.0);
    }

    for cores in [2usize, 4, 8] {
        let label = format!("{cores} cores ({} scan streams)", cores - 1);
        for (i, (path, _)) in PATHS.iter().enumerate() {
            let point = run_htap(rows, oltp_ops, cores, *path, true);
            olap[i].push(label.clone(), point.olap_mfields_s);
            p50[i].push(label.clone(), point.p50_us);
            p99[i].push(label.clone(), point.p99_us);
            max[i].push(label.clone(), point.max_us);
            deg[i].push(label.clone(), point.p99_us / baseline.p99_us);
        }
    }

    // Sync-vs-event comparison on the worst case the old synchronous path
    // had — 4 cores, cold RME scans. The synchronous path books each frame
    // as one monolithic reservation, so a single OLTP op absorbs the whole
    // fetch shadow; the event-driven path fetches incrementally and admits
    // point traffic with demand priority. The assertions pin the fix at
    // every sweep size, so the CI smoke run re-proves it.
    let sync_cold = run_htap(rows, oltp_ops, 4, OlapPath::RmeCold, false);
    let event_cold = run_htap(rows, oltp_ops, 4, OlapPath::RmeCold, true);
    assert!(
        sync_cold.max_us >= 2.0 * event_cold.max_us,
        "incremental fetching must cut the cold-path OLTP max at least 2x: \
         sync {:.3} us, event {:.3} us",
        sync_cold.max_us,
        event_cold.max_us,
    );
    for (name, sync, event) in [
        ("p50", sync_cold.p50_us, event_cold.p50_us),
        ("p99", sync_cold.p99_us, event_cold.p99_us),
    ] {
        assert!(
            (sync - event).abs() <= 0.25 * sync.max(event),
            "cold-path OLTP {name} must stay within noise: sync {sync:.3} us, event {event:.3} us",
        );
    }
    let mut cold_fix: Vec<Series> = ["p50 us", "p99 us", "max us"]
        .iter()
        .map(|n| Series::new((*n).to_string()))
        .collect();
    for (label, point) in [
        ("synchronous whole-frame", &sync_cold),
        ("event-driven incremental", &event_cold),
    ] {
        cold_fix[0].push(label.to_string(), point.p50_us);
        cold_fix[1].push(label.to_string(), point.p99_us);
        cold_fix[2].push(label.to_string(), point.max_us);
    }

    let tables = vec![
        series_table(
            "HTAP: aggregate OLAP scan throughput beside an OLTP stream",
            "Streams",
            &olap,
        ),
        series_table(
            "HTAP: OLTP point-query latency under concurrent scans",
            "Streams",
            &[p50, p99, max].concat(),
        ),
        series_table(
            "HTAP: OLTP p99 degradation vs. interference-free baseline",
            "Streams",
            &deg,
        ),
        series_table(
            "HTAP: cold-path OLTP latency, 4 cores — synchronous whole-frame \
             fetch vs. event-driven incremental fetch (the resolved max-latency \
             artifact; see module docs)",
            "Memory path",
            &cold_fix,
        ),
    ];
    Experiment {
        id: "fig_htap",
        description: "Concurrent per-core HTAP streams: OLTP point queries on core 0 while the \
                      remaining cores scan one column — tail latency degrades less when the \
                      scans go through the RME than when they read the rows directly"
            .to_string(),
        tables,
    }
}

/// Arrival-rate factors swept relative to the calibrated OLTP service rate.
/// The knee sits at the first factor whose shed rate becomes material.
const RATE_FACTORS: [f64; 5] = [0.2, 0.5, 1.0, 2.0, 4.0];

/// One arrival-rate measurement of the open-loop sweep.
struct OverloadPoint {
    stats: OverloadStats,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
    queue_p99_us: f64,
}

/// Closed-loop calibration run (4 cores, direct scans — the worst-case
/// interference the open-loop sweep then pushes past saturation): returns
/// the mean contended OLTP latency in nanoseconds and the duration of one
/// full analytical scan.
fn calibrate(rows: u64, oltp_ops: u64) -> (f64, SimTime) {
    let mut sys = System::with_config(SystemConfig {
        cores: 4,
        mem_bytes: ((rows * 64) as usize + (64 << 20)).next_power_of_two(),
        ..SystemConfig::default()
    });
    let schema = Schema::benchmark(4, 4, 64);
    let mut table: RowTable = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");

    let oltp: Vec<WorkloadOp> = (0..oltp_ops)
        .map(|i| oltp_op(&table, i, rows))
        .collect();
    let scan = ScanSource::Rows {
        table: &table,
        columns: &SCAN_COLUMNS,
        snapshot: None,
    };
    let mut streams = vec![QueryStream::new(oltp)];
    for _ in 1..4 {
        streams.push(QueryStream::new(vec![WorkloadOp::olap(scan)]));
    }
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(
            &Workload::new(streams),
            SimTime::ZERO,
            |_, _, _, _| RowEffect::default(),
        )
        .expect("valid workload");
    let mean_ns = run.oltp_latencies().mean_nanos().max(1.0);
    let scan_dur = run.streams[1].ops[0].latency().max(SimTime::from_nanos(1));
    (mean_ns, scan_dur)
}

/// The deterministic OLTP op mix shared by calibration and the open-loop
/// template: four lookups then one update, rows spread by a Knuth-style
/// multiplicative hash.
fn oltp_op(table: &RowTable, i: u64, rows: u64) -> WorkloadOp<'_> {
    let row = i.wrapping_mul(2654435761) % rows;
    if i % 5 == 4 {
        WorkloadOp::PointUpdate {
            table,
            row,
            column: 1,
            value: i,
        }
    } else {
        WorkloadOp::PointLookup {
            table,
            columns: &OLTP_COLUMNS,
            row,
        }
    }
}

/// One open-loop run at a given OLTP arrival rate: core 0 takes the
/// point-query traffic, cores 1–3 take quasi-continuous analytical scans
/// that degrade from the direct path to the RME path under pressure.
#[allow(clippy::too_many_arguments)] // private sweep helper
fn run_htap_open_loop(
    rows: u64,
    oltp_rate: f64,
    oltp_arrivals: u64,
    scan_rate: f64,
    scan_arrivals: u64,
    scan_dur: SimTime,
    mean_ns: f64,
    trace: bool,
) -> (OverloadPoint, Option<Trace>) {
    let mut sys = System::with_config(SystemConfig {
        cores: 4,
        mem_bytes: ((rows * 64) as usize + (64 << 20)).next_power_of_two(),
        ..SystemConfig::default()
    });
    let schema = Schema::benchmark(4, 4, 64);
    let mut table: RowTable = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    let var = sys
        .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
        .expect("ephemeral registers");

    let oltp_template: Vec<OpenLoopOp> = (0..100)
        .map(|i| OpenLoopOp::new(oltp_op(&table, i, rows)))
        .collect();
    let scan_template = vec![OpenLoopOp::with_degraded(
        WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &SCAN_COLUMNS,
            snapshot: None,
        }),
        WorkloadOp::olap(ScanSource::Ephemeral { var: &var }),
    )];

    let mut streams = vec![OpenLoopStream::new(oltp_template, oltp_rate, oltp_arrivals)];
    for _ in 1..4 {
        streams.push(OpenLoopStream::new(
            scan_template.clone(),
            scan_rate,
            scan_arrivals,
        ));
    }
    let workload = OpenLoopWorkload::new(streams);

    let cfg = AdmissionConfig {
        seed: 42,
        queue_capacity: 32,
        // The budget and timeout are sized in scan units: far above any
        // wait a point query sees below saturation, above the typical
        // wait of a queued scan — so sheds past the knee come from the
        // bounded queue, not from a hair-trigger deadline.
        delay_budget: Some(scan_dur.scaled(8)),
        timeout: Some(scan_dur.scaled(16)),
        max_retries: 2,
        retry_backoff: SimTime::from_nanos(mean_ns as u64 + 1),
        degrade: Some(DegradePolicy {
            high_watermark: 24,
            low_watermark: 4,
            trigger_after: 8,
            clear_after: 16,
        }),
    };

    sys.begin_measurement(AccessPath::DirectRowWise);
    // Trace only the measured run: tracing goes on after the tables are
    // built and filled, so setup traffic never reaches the buffers.
    sys.set_tracing(trace);
    let run = sys
        .run_open_loop(&workload, &cfg, SimTime::ZERO, |_, _, _, _| {
            RowEffect::default()
        })
        .expect("valid open-loop workload");
    let captured = trace.then(|| sys.take_trace());
    let mut lat = run.oltp_latencies();
    let mut queue = run.queue_delays();
    let point = OverloadPoint {
        p50_us: lat.p50().as_micros_f64(),
        p99_us: lat.p99().as_micros_f64(),
        p999_us: lat.p999().as_micros_f64(),
        max_us: lat.max().as_micros_f64(),
        queue_p99_us: queue.p99().as_micros_f64(),
        stats: run.overload,
    };
    (point, captured)
}

/// Runs the open-loop arrival-rate sweep: OLTP arrivals from 0.2× to 4×
/// the calibrated contended service rate, reporting the saturation knee
/// and how shedding plus graceful degradation behave past it.
pub fn fig_htap_open_loop(quick: bool) -> Experiment {
    fig_htap_open_loop_traced(quick, false).0
}

/// [`fig_htap_open_loop`], optionally recording a trace of the headline
/// overload point — the 4× arrival-rate run, where shedding, retries and
/// graceful degradation are all active.
pub fn fig_htap_open_loop_traced(quick: bool, trace: bool) -> (Experiment, Option<Trace>) {
    let rows: u64 = if quick { 10_000 } else { 40_000 };
    let cal_ops: u64 = if quick { 400 } else { 1_000 };
    let oltp_arrivals: u64 = if quick { 400 } else { 1_200 };
    let scan_arrivals: u64 = if quick { 6 } else { 10 };

    let (mean_ns, scan_dur) = calibrate(rows, cal_ops);
    // At 1.0× the OLTP stream arrives exactly as fast as the contended
    // closed-loop system served it; past that the queue must grow.
    let base_rate = 1e9 / mean_ns;
    // Scans re-arrive a little slower than they complete: the analytical
    // side stays busy without being the overloaded resource.
    let scan_rate = 1e9 / (1.5 * scan_dur.as_nanos_f64());

    let accounting_names = [
        "arrivals",
        "retries",
        "admitted",
        "shed (queue full)",
        "shed (deadline)",
        "timed out",
        "completed",
        "degraded ops",
        "degrade transitions",
        "max queue depth",
    ];
    let mut accounting: Vec<Series> = accounting_names
        .iter()
        .map(|n| Series::new((*n).to_string()))
        .collect();
    let latency_names = [
        "OLTP p50 us",
        "OLTP p99 us",
        "OLTP p99.9 us",
        "OLTP max us",
        "queue-delay p99 us",
    ];
    let mut latency: Vec<Series> = latency_names
        .iter()
        .map(|n| Series::new((*n).to_string()))
        .collect();

    let mut points: Vec<OverloadPoint> = Vec::new();
    let mut captured: Option<Trace> = None;
    let last_factor = RATE_FACTORS[RATE_FACTORS.len() - 1];
    for factor in RATE_FACTORS {
        let (point, run_trace) = run_htap_open_loop(
            rows,
            base_rate * factor,
            oltp_arrivals,
            scan_rate,
            scan_arrivals,
            scan_dur,
            mean_ns,
            trace && factor == last_factor,
        );
        if run_trace.is_some() {
            captured = run_trace;
        }
        let label = format!("{factor}x");
        let s = &point.stats;
        for (series, value) in accounting.iter_mut().zip([
            s.arrivals as f64,
            s.retries as f64,
            s.admitted as f64,
            s.shed_queue_full as f64,
            s.shed_deadline as f64,
            s.timed_out as f64,
            s.completed as f64,
            s.degraded_ops as f64,
            s.transitions.len() as f64,
            s.max_queue_depth as f64,
        ]) {
            series.push(label.clone(), value);
        }
        for (series, value) in latency.iter_mut().zip([
            point.p50_us,
            point.p99_us,
            point.p999_us,
            point.max_us,
            point.queue_p99_us,
        ]) {
            series.push(label.clone(), value);
        }
        points.push(point);
    }

    let knee = RATE_FACTORS
        .iter()
        .zip(&points)
        .find(|(_, p)| p.stats.shed_rate() > 0.01)
        .map(|(f, _)| *f);

    // The CI smoke run leans on these: well below the knee nothing is
    // shed; past it the bounded queue must reject.
    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    assert_eq!(
        first.stats.shed(),
        0,
        "no sheds at {}x the calibrated service rate",
        RATE_FACTORS[0]
    );
    assert!(
        last.stats.shed() > 0,
        "the bounded queue must shed at {}x the calibrated service rate",
        RATE_FACTORS[RATE_FACTORS.len() - 1]
    );

    let tables = vec![
        series_table(
            "Open-loop HTAP: admission accounting vs. OLTP arrival rate \
             (factors of the calibrated contended service rate)",
            "Arrival rate",
            &accounting,
        ),
        series_table(
            "Open-loop HTAP: admitted-op OLTP latency vs. arrival rate",
            "Arrival rate",
            &latency,
        ),
    ];
    let experiment = Experiment {
        id: "fig_htap_openloop",
        description: format!(
            "Open-loop arrival-rate sweep of the HTAP mix (calibrated contended OLTP service \
             time {:.0} ns): the saturation knee sits at {} the calibrated rate; past it the \
             bounded admission queue sheds, timed-out ops retry with backoff, and sustained \
             pressure downgrades the concurrent scans from the direct path to the RME path",
            mean_ns,
            match knee {
                Some(f) => format!("{f}x"),
                None => "beyond 4x".to_string(),
            }
        ),
        tables,
    };
    (experiment, captured)
}
