//! Transactional contention: commit throughput and abort rate vs. hot-row
//! skew (beyond the paper's read-only evaluation).
//!
//! The transaction layer runs multi-row MVCC transactions through the same
//! timing model as the paper's queries, with first-updater-wins conflict
//! detection on write intents. This experiment quantifies what that costs
//! under contention: every core runs a stream of transfer-style
//! transactions (read two rows, update two rows), and a *skew* knob moves
//! a fraction of them onto one shared hot row. At 0 % skew every
//! transaction touches only core-private rows (conflict-free); at 100 %
//! every transaction claims the hot row, so all concurrency on it
//! serialises through abort-and-retry.
//!
//! Reported per core count and skew: committed-transaction throughput,
//! the conflict-abort rate (aborted attempts / attempts begun) and the
//! wasted-work share (attempts that paid simulated traffic and then threw
//! it away). Two properties are asserted in-harness and smoke-checked by
//! CI:
//!
//! * the abort rate rises monotonically with hot-row skew at every
//!   multi-core point (more claims on one key ⇒ more first-updater-wins
//!   victims), and
//! * conflict-free transactions are free: at 0 % skew on one core over a
//!   non-MVCC table, the transactional makespan is within 5 % of the
//!   identical flat point-op sequence (the equivalence proptests pin the
//!   counters bit-exactly; this pins the end-to-end figure the harness
//!   reports). On MVCC tables transactions deliberately cost more —
//!   intent-claim header probes and per-commit durability writes are
//!   charged as real traffic, which is what the sweep measures.

use relmem_core::system::{RowEffect, SystemConfig};
use relmem_core::workload::{QueryStream, Workload, WorkloadOp};
use relmem_core::{AccessPath, System, TxnOp, TxnSpec};
use relmem_sim::report::{series_table, Series};
use relmem_sim::{SimTime, Trace};
use relmem_storage::{DataGen, MvccConfig, RowTable, Schema};

use super::Experiment;

/// Hot-row skew percentages swept (fraction of transactions that claim
/// the shared hot row).
const SKEWS: [u64; 4] = [0, 25, 50, 100];
/// Core counts swept (1 is the conflict-free throughput baseline).
const CORES: [usize; 3] = [1, 2, 4];
/// In-place retry budget — large enough that transfers eventually commit
/// even at full skew on four cores.
const RETRIES: u32 = 64;

const READ_COLUMNS: [usize; 2] = [0, 1];

/// One (cores, skew) measurement.
struct TxnPoint {
    committed: u64,
    begun: u64,
    abort_rate: f64,
    ktxn_s: f64,
    end: SimTime,
}

/// Whether transaction `i` of a stream claims the hot row at this skew —
/// a deterministic spread, not a prefix, so contention is sustained over
/// the whole run.
fn is_hot(i: u64, skew_pct: u64) -> bool {
    i.wrapping_mul(37) % 100 < skew_pct
}

fn build_system(rows: u64, cores: usize, mvcc: MvccConfig) -> (System, RowTable) {
    let mut sys = System::with_config(SystemConfig {
        cores,
        mem_bytes: ((rows * 64) as usize + (32 << 20)).next_power_of_two(),
        ..SystemConfig::default()
    });
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, rows, mvcc)
        .expect("table fits");
    DataGen::new(3)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    (sys, table)
}

/// Builds one core's transaction specs: transfer-style read-read-update-
/// update bodies, `skew_pct` percent of them against the shared hot row.
fn build_specs(
    table: &RowTable,
    core: usize,
    txns: u64,
    rows: u64,
    skew_pct: u64,
) -> Vec<TxnSpec<'_>> {
    (0..txns)
        .map(|i| {
            // Private rows live in a per-core stripe above the hot row.
            let own = 1 + (core as u64) * txns * 2 + (i * 2) % (rows / 8);
            let partner = if is_hot(i, skew_pct) { 0 } else { own + 1 };
            TxnSpec::new(vec![
                TxnOp::Read {
                    table,
                    columns: &READ_COLUMNS,
                    row: partner,
                },
                TxnOp::Read {
                    table,
                    columns: &READ_COLUMNS,
                    row: own,
                },
                TxnOp::Update {
                    table,
                    row: partner,
                    column: 0,
                    value: i,
                },
                TxnOp::Update {
                    table,
                    row: own,
                    column: 1,
                    value: i,
                },
            ])
            .with_retries(RETRIES)
        })
        .collect()
}

fn run_txn(
    rows: u64,
    txns_per_core: u64,
    cores: usize,
    skew_pct: u64,
    mvcc: MvccConfig,
    trace: bool,
) -> (TxnPoint, Option<Trace>) {
    let (mut sys, table) = build_system(rows, cores, mvcc);
    let specs: Vec<Vec<TxnSpec>> = (0..cores)
        .map(|core| build_specs(&table, core, txns_per_core, rows, skew_pct))
        .collect();
    let workload = Workload::new(
        specs
            .iter()
            .map(|core_specs| {
                QueryStream::new(
                    core_specs
                        .iter()
                        .map(|spec| WorkloadOp::Txn { spec })
                        .collect(),
                )
            })
            .collect(),
    );
    sys.begin_measurement(AccessPath::DirectRowWise);
    // Trace only the measured run, never the table setup.
    sys.set_tracing(trace);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid transactional workload");
    let captured = trace.then(|| sys.take_trace());
    assert!(run.txn.is_consistent(), "txn accounting: {:?}", run.txn);
    assert_eq!(
        run.txn.committed,
        cores as u64 * txns_per_core,
        "every transfer must eventually commit: {:?}",
        run.txn
    );
    let point = TxnPoint {
        committed: run.txn.committed,
        begun: run.txn.begun,
        abort_rate: run.txn.conflict_abort_rate(),
        ktxn_s: run.txn.committed as f64 / run.end.as_nanos_f64() * 1e9 / 1e3,
        end: run.end,
    };
    (point, captured)
}

/// The flat expansion of one core's conflict-free specs: each
/// transaction's reads then its updates, as plain point ops.
fn run_flat_baseline(rows: u64, txns: u64) -> SimTime {
    let (mut sys, table) = build_system(rows, 1, MvccConfig::Disabled);
    let specs = build_specs(&table, 0, txns, rows, 0);
    let ops: Vec<WorkloadOp> = specs
        .iter()
        .flat_map(|spec| {
            spec.ops.iter().map(|op| match *op {
                TxnOp::Read {
                    table,
                    columns,
                    row,
                } => WorkloadOp::PointLookup {
                    table,
                    columns,
                    row,
                },
                TxnOp::Update {
                    table,
                    row,
                    column,
                    value,
                } => WorkloadOp::PointUpdate {
                    table,
                    row,
                    column,
                    value,
                },
                _ => unreachable!("transfer specs hold only reads and updates"),
            })
        })
        .collect();
    let workload = Workload::new(vec![QueryStream::new(ops)]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid flat workload");
    run.end
}

/// Runs the transactional contention sweep: hot-row skew × core count,
/// asserting abort-rate monotonicity and the conflict-free-is-free bound.
pub fn fig_txn(quick: bool) -> Experiment {
    fig_txn_traced(quick, false).0
}

/// [`fig_txn`], optionally recording a trace of the headline contention
/// point — 4 cores at 100 % hot-row skew, where conflict aborts and
/// retries dominate.
pub fn fig_txn_traced(quick: bool, trace: bool) -> (Experiment, Option<Trace>) {
    let rows: u64 = if quick { 4_000 } else { 20_000 };
    let txns_per_core: u64 = if quick { 30 } else { 120 };

    let mut throughput: Vec<Series> = CORES
        .iter()
        .map(|c| Series::new(format!("commit ktxn/s ({c} cores)")))
        .collect();
    let mut abort_rate: Vec<Series> = CORES
        .iter()
        .map(|c| Series::new(format!("conflict-abort rate ({c} cores)")))
        .collect();
    let mut wasted: Vec<Series> = CORES
        .iter()
        .map(|c| Series::new(format!("wasted attempts ({c} cores)")))
        .collect();

    let mut captured: Option<Trace> = None;
    let (last_cores, last_skew) = (CORES[CORES.len() - 1], SKEWS[SKEWS.len() - 1]);
    for (ci, &cores) in CORES.iter().enumerate() {
        let mut prev_rate = -1.0f64;
        for skew in SKEWS {
            let (point, run_trace) = run_txn(
                rows,
                txns_per_core,
                cores,
                skew,
                MvccConfig::Enabled,
                trace && cores == last_cores && skew == last_skew,
            );
            if run_trace.is_some() {
                captured = run_trace;
            }
            if cores == 1 {
                assert_eq!(
                    point.begun, point.committed,
                    "one stream never conflicts with itself"
                );
            } else {
                assert!(
                    point.abort_rate >= prev_rate,
                    "abort rate must rise monotonically with hot-row skew: \
                     {} cores, {skew}% skew: {} < {prev_rate}",
                    cores,
                    point.abort_rate
                );
                prev_rate = point.abort_rate;
            }
            let label = format!("{skew}% hot");
            throughput[ci].push(label.clone(), point.ktxn_s);
            abort_rate[ci].push(label.clone(), point.abort_rate);
            wasted[ci].push(label, (point.begun - point.committed) as f64);
        }
    }

    // Conflict-free transactions are free: on a non-MVCC table (no header
    // probes at claim time, no commit stamps — the grouping alone), the
    // 1-core 0 %-skew transactional run must finish within 5 % of its flat
    // expansion. The equivalence proptests pin this bit-exactly; the
    // harness pins the end-to-end number it reports. The MVCC sweep above
    // deliberately pays more — intent checks and commit durability are
    // real traffic.
    let (txn_baseline, _) = run_txn(rows, txns_per_core, 1, 0, MvccConfig::Disabled, false);
    let flat_end = run_flat_baseline(rows, txns_per_core);
    let ratio = txn_baseline.end.as_nanos_f64() / flat_end.as_nanos_f64();
    assert!(
        (ratio - 1.0).abs() <= 0.05,
        "conflict-free transactional makespan must be within 5% of the flat \
         point-op path (txn {}, flat {flat_end}, ratio {ratio:.4})",
        txn_baseline.end
    );

    let tables = vec![
        series_table(
            "Transactions: commit throughput vs. hot-row skew",
            "Skew",
            &throughput,
        ),
        series_table(
            "Transactions: conflict-abort rate vs. hot-row skew \
             (first-updater-wins victims / attempts begun)",
            "Skew",
            &abort_rate,
        ),
        series_table(
            "Transactions: aborted attempts (wasted simulated work) vs. hot-row skew",
            "Skew",
            &wasted,
        ),
    ];
    let experiment = Experiment {
        id: "fig_txn",
        description: format!(
            "Multi-row MVCC transactions under contention: transfer transactions per core with \
             a sweep of hot-row skew — abort rate rises monotonically with skew, and at zero \
             skew the transactional path matches the flat point-op path within 5% \
             (measured ratio {ratio:.4})"
        ),
        tables,
    };
    (experiment, captured)
}
