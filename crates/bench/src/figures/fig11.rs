//! Figure 11: Q2, Q3, Q4 with varying row width (4-byte columns).
//!
//! The paper's observations: the RME's execution time stays essentially flat
//! as rows grow (it fetches only the useful columns), while direct row-wise
//! access degrades with row width because every row drags more useless bytes
//! through the caches — the gain reaches ~1.4× at 256-byte rows.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series, Table};

use super::{default_rows, Experiment};

/// Row widths swept by the paper.
pub const ROW_WIDTHS: [usize; 5] = [16, 32, 64, 128, 256];

fn sub_figure(query: Query, label: &str, rows: u64) -> Table {
    let mut series: Vec<Series> = vec![
        Series::new("Direct Row-wise (us)"),
        Series::new("RME Cold (us)"),
        Series::new("RME Hot (us)"),
    ];
    for row_bytes in ROW_WIDTHS {
        let params = BenchmarkParams {
            rows,
            row_bytes,
            column_width: 4,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let direct = bench
            .run(query, AccessPath::DirectRowWise)
            .measurement
            .elapsed_us();
        let cold = bench.run(query, AccessPath::RmeCold).measurement.elapsed_us();
        let hot = bench.run(query, AccessPath::RmeHot).measurement.elapsed_us();
        series[0].push(row_bytes, direct);
        series[1].push(row_bytes, cold);
        series[2].push(row_bytes, hot);
    }
    series_table(
        &format!("Figure 11: {label} execution time vs. row width"),
        "Row width (B)",
        &series,
    )
}

/// Runs the Figure 11 experiment (all three sub-figures).
pub fn fig11(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    let tables = vec![
        sub_figure(Query::Q2, "Q2 (selection + projection)", rows),
        sub_figure(Query::Q3, "Q3 (selective aggregation)", rows),
        sub_figure(Query::Q4, "Q4 (aggregation + group by)", rows),
    ];
    Experiment {
        id: "fig11",
        description: "Q2/Q3/Q4 with varying row width: the RME's cost tracks the useful data, \
                      direct row-wise access degrades with the row size"
            .to_string(),
        tables,
    }
}
