//! DRAM model fidelity: occupancy vs. cycle-accurate, on the same
//! workloads.
//!
//! The workspace ships two DRAM timing models behind `DramConfig::model`
//! (see `relmem_dram::DramModel`): the fast occupancy-tracked default and
//! the command-level cycle-accurate model (per-bank ACT/PRE/RD/WR state
//! machines, tFAW activate throttling, tREFI/tRFC refresh, a bounded
//! transaction queue). This harness runs *the same* workload matrix on
//! both and quantifies where the fast model under- or over-states reality:
//!
//! * **A Figure-13-style scan sweep** over row widths (the paper's core
//!   variable: how much of each row a projection actually needs) for the
//!   direct row-wise path and the RME-cold path. Reported per point:
//!   simulated time per model and their ratio, the per-model DRAM row-hit
//!   rate, and the cycle-accurate-only command counters (refreshes, tFAW
//!   stalls, queue occupancy). Narrow rows stream sequentially — the
//!   occupancy model tracks the cycle-accurate one within a few percent
//!   and only *refresh* (invisible to the fast model) separates them. Wide
//!   rows turn every line fill into a fresh activate, and the
//!   MLP-overlapped fetch paths start tripping the tFAW window — activate
//!   throttling the occupancy model cannot express.
//! * **An HTAP mix** (OLTP point stream beside a direct scan on a second
//!   core): OLTP p50/p99 latency per model, where queueing and refresh
//!   interference shift the tail.
//!
//! The occupancy model stays the golden default; this figure is the
//! evidence for *when* its answers can be trusted as-is and when a sweep
//! should be re-run cycle-accurately.

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::workload::{QueryStream, Workload, WorkloadOp};
use relmem_core::{AccessPath, System};
use relmem_dram::DramStats;
use relmem_sim::report::{series_table, Series};
use relmem_sim::{MemoryModel, SimTime, Trace};
use relmem_storage::{ColumnGroup, DataGen, MvccConfig, RowTable, Schema};

use super::Experiment;

/// Which access path a sweep point exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Path {
    Direct,
    RmeCold,
}

/// One (workload, model) measurement.
struct Point {
    end: SimTime,
    dram: DramStats,
}

fn build_system(
    model: MemoryModel,
    cores: usize,
    rows: u64,
    row_bytes: usize,
) -> (System, RowTable) {
    let mut config = SystemConfig {
        cores,
        mem_bytes: ((rows * row_bytes as u64) as usize + (64 << 20)).next_power_of_two(),
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    let mut sys = System::with_config(config);
    let schema = Schema::benchmark(4, 4, row_bytes);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    (sys, table)
}

/// Runs one single-column scan under `model` and returns its timing plus
/// the DRAM counters.
fn run_scan(
    model: MemoryModel,
    rows: u64,
    row_bytes: usize,
    path: Path,
    trace: bool,
) -> (Point, Option<Trace>) {
    let (mut sys, table) = build_system(model, 1, rows, row_bytes);
    let columns = [0usize];
    let var;
    let (source, access) = match path {
        Path::Direct => (
            ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: None,
            },
            AccessPath::DirectRowWise,
        ),
        Path::RmeCold => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
                .expect("ephemeral registers");
            (ScanSource::Ephemeral { var: &var }, AccessPath::RmeCold)
        }
    };
    sys.begin_measurement(access);
    // Trace only the measured scan, never the table setup.
    sys.set_tracing(trace);
    let (end, _, scanned) = sys.scan(&source, SimTime::ZERO, |_, _| RowEffect::default());
    let captured = trace.then(|| sys.take_trace());
    assert_eq!(scanned, rows);
    let point = Point {
        end,
        dram: sys.dram_stats().clone(),
    };
    (point, captured)
}

/// Runs the HTAP mix (OLTP point stream on core 0 beside a direct scan on
/// core 1) under `model`; returns the OLTP (p50, p99) latencies and the
/// DRAM counters.
fn run_htap(model: MemoryModel, rows: u64, oltp_ops: u64) -> (SimTime, SimTime, DramStats) {
    let (mut sys, table) = build_system(model, 2, rows, 64);
    let oltp_columns = [1usize, 2];
    let scan_columns = [0usize];
    let oltp: Vec<WorkloadOp> = (0..oltp_ops)
        .map(|i| {
            let row = i.wrapping_mul(2654435761) % rows;
            if i % 5 == 4 {
                WorkloadOp::PointUpdate {
                    table: &table,
                    row,
                    column: 1,
                    value: i,
                }
            } else {
                WorkloadOp::PointLookup {
                    table: &table,
                    columns: &oltp_columns,
                    row,
                }
            }
        })
        .collect();
    let workload = Workload::new(vec![
        QueryStream::new(oltp),
        QueryStream::new(vec![WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &scan_columns,
            snapshot: None,
        })]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    let mut lat = run.oltp_latencies();
    (lat.p50(), lat.p99(), sys.dram_stats().clone())
}

/// Runs the fidelity comparison. See the module docs for what each table
/// shows.
pub fn fig_dram_fidelity(quick: bool) -> Experiment {
    fig_dram_fidelity_traced(quick, false).0
}

/// [`fig_dram_fidelity`], optionally recording a trace of the headline
/// command-level run — the cycle-accurate 2048-byte-row RME-cold scan,
/// where activates, precharges, refresh and tFAW stalls are all visible.
pub fn fig_dram_fidelity_traced(quick: bool, trace: bool) -> (Experiment, Option<Trace>) {
    let rows: u64 = if quick { 8_000 } else { 44_000 };
    // The paper's row-width axis (Figure 11 / Figure 13 shape): 64 B rows
    // stream; 2 KB rows make every line fill open a fresh DRAM row.
    let row_widths: &[usize] = if quick { &[64, 2048] } else { &[64, 256, 2048] };

    let mut end_occ = Series::new("Simulated ms (occupancy)");
    let mut end_ca = Series::new("Simulated ms (cycle-accurate)");
    let mut ratio = Series::new("CA / occupancy time ratio");
    let mut hit_occ = Series::new("Row-hit rate (occupancy)");
    let mut hit_ca = Series::new("Row-hit rate (cycle-accurate)");
    let mut refreshes = Series::new("Refreshes (CA)");
    let mut tfaw = Series::new("tFAW stalls (CA)");
    let mut queue = Series::new("Avg queue occupancy (CA)");

    let mut total_refreshes = 0u64;
    let mut total_tfaw = 0u64;
    let mut captured: Option<Trace> = None;
    let widest = *row_widths.last().expect("sweep is non-empty");
    for &row_bytes in row_widths {
        for (path, name) in [(Path::Direct, "direct"), (Path::RmeCold, "RME cold")] {
            let label = format!("{row_bytes} B rows, {name}");
            let (occ, _) = run_scan(MemoryModel::Occupancy, rows, row_bytes, path, false);
            let (ca, run_trace) = run_scan(
                MemoryModel::CycleAccurate,
                rows,
                row_bytes,
                path,
                trace && row_bytes == widest && path == Path::RmeCold,
            );
            if run_trace.is_some() {
                captured = run_trace;
            }
            end_occ.push(label.clone(), occ.end.as_millis_f64());
            end_ca.push(label.clone(), ca.end.as_millis_f64());
            ratio.push(
                label.clone(),
                ca.end.as_nanos_f64() / occ.end.as_nanos_f64().max(1.0),
            );
            hit_occ.push(label.clone(), occ.dram.row_hit_rate());
            hit_ca.push(label.clone(), ca.dram.row_hit_rate());
            refreshes.push(label.clone(), ca.dram.refreshes as f64);
            tfaw.push(label.clone(), ca.dram.tfaw_stalls as f64);
            queue.push(label, ca.dram.avg_queue_occupancy());
            total_refreshes += ca.dram.refreshes;
            total_tfaw += ca.dram.tfaw_stalls;
            // The occupancy model has no command-level machinery, ever.
            assert_eq!(occ.dram.refreshes, 0);
            assert_eq!(occ.dram.tfaw_stalls, 0);
        }
    }
    // The headline acceptance facts of the subsystem: the cycle-accurate
    // model expresses effects the fast model cannot.
    assert!(
        total_refreshes > 0,
        "at least one configuration must observe refresh windows"
    );
    assert!(
        total_tfaw > 0,
        "at least one configuration must trip the tFAW activate window"
    );

    // HTAP tail-latency fidelity.
    let oltp_ops: u64 = if quick { 400 } else { 2_000 };
    let htap_rows = rows.max(20_000);
    let (p50_o, p99_o, _) = run_htap(MemoryModel::Occupancy, htap_rows, oltp_ops);
    let (p50_c, p99_c, htap_dram) = run_htap(MemoryModel::CycleAccurate, htap_rows, oltp_ops);
    let mut htap = vec![
        Series::new("p50 us (occupancy)"),
        Series::new("p50 us (cycle-accurate)"),
        Series::new("p99 us (occupancy)"),
        Series::new("p99 us (cycle-accurate)"),
        Series::new("p99 delta x"),
        Series::new("Refreshes (CA)"),
    ];
    let label = format!("{htap_rows} rows, {oltp_ops} OLTP ops, 2 cores");
    htap[0].push(label.clone(), p50_o.as_micros_f64());
    htap[1].push(label.clone(), p50_c.as_micros_f64());
    htap[2].push(label.clone(), p99_o.as_micros_f64());
    htap[3].push(label.clone(), p99_c.as_micros_f64());
    htap[4].push(
        label.clone(),
        p99_c.as_nanos_f64() / p99_o.as_nanos_f64().max(1.0),
    );
    htap[5].push(label, htap_dram.refreshes as f64);

    let tables = vec![
        series_table(
            "DRAM fidelity: simulated time per model over the row-width sweep",
            "Workload",
            &[end_occ, end_ca, ratio],
        ),
        series_table(
            "DRAM fidelity: row-buffer behaviour and command-level counters",
            "Workload",
            &[hit_occ, hit_ca, refreshes, tfaw, queue],
        ),
        series_table(
            "DRAM fidelity: HTAP OLTP latency per model",
            "Workload",
            &htap,
        ),
    ];
    let experiment = Experiment {
        id: "fig_dram_fidelity",
        description: "Occupancy vs cycle-accurate DRAM model on the same workload matrix: \
                      sequential scans agree within a few percent (refresh aside), while \
                      wide-row and MLP-overlapped traffic exposes activate throttling (tFAW) \
                      and queueing the fast model cannot express"
            .to_string(),
        tables,
    };
    (experiment, captured)
}
