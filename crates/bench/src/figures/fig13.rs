//! Figure 13: scalability with data size.
//!
//! Q1 projecting four 4-byte columns of a 64-byte-row table whose total size
//! grows from 32 MB towards 2 GB. Every time the packed projection fills the
//! 2 MB Data SPM the engine performs its single-cycle epoch reset and moves
//! to the next frame. The paper's observation: the normalized benefit of the
//! RME over direct row-wise access is essentially constant across data
//! sizes.
//!
//! The default sweep stops at 512 MB to keep the harness runtime reasonable;
//! pass `--full` to the `figures` binary to extend it to the paper's 2 GB.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series};

use super::Experiment;

const MB: u64 = 1024 * 1024;

/// Data sizes (bytes) for the default and full sweeps.
fn data_sizes(quick: bool, full: bool) -> Vec<u64> {
    if quick {
        return vec![4 * MB, 8 * MB];
    }
    let mut sizes = vec![32 * MB, 64 * MB, 128 * MB, 256 * MB, 512 * MB];
    if full {
        sizes.push(1024 * MB);
        sizes.push(2048 * MB);
    }
    sizes
}

/// Runs the Figure 13 experiment.
pub fn fig13(quick: bool, full: bool) -> Experiment {
    let query = Query::Q1 { projectivity: 4 };
    let mut series = vec![Series::new("Direct Row-wise"), Series::new("RME")];
    let mut frames = Series::new("Frames fetched");

    for size in data_sizes(quick, full) {
        let rows = size / 64;
        let label = format!("{}MB", size / MB);
        let params = BenchmarkParams {
            rows,
            row_bytes: 64,
            column_width: 4,
            inner_rows: 0,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let direct = bench
            .run(query, AccessPath::DirectRowWise)
            .measurement
            .elapsed
            .as_nanos_f64();
        let rme = bench.run(query, AccessPath::RmeCold);
        series[0].push(label.clone(), 1.0);
        series[1].push(label.clone(), rme.measurement.elapsed.as_nanos_f64() / direct);
        frames.push(label, rme.measurement.rme.frames_fetched as f64);
    }

    let mut tables = vec![series_table(
        "Figure 13: Q1 (4 columns) normalized execution time vs. data size",
        "Data size",
        &series,
    )];
    tables.push(series_table(
        "Figure 13 (supplement): Reorganization Buffer frames fetched per data size",
        "Data size",
        &[frames],
    ));
    Experiment {
        id: "fig13",
        description: "Scalability with data size: the RME's relative benefit is constant because \
                      the engine streams the table frame by frame through the 2 MB Data SPM"
            .to_string(),
        tables,
    }
}
