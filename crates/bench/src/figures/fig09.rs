//! Figure 9: Q1 normalized execution time vs. projectivity.
//!
//! The paper's observations: the RME is roughly flat relative to direct
//! row-wise access regardless of how many columns are projected; a pure
//! column-store wins for 1–4 columns (the prefetcher covers up to four
//! streams) and loses beyond that because of tuple reconstruction and the
//! extra, unprefetched streams.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series};

use super::{default_rows, Experiment};

/// Runs the Figure 9 experiment (projectivity 1..=11, 4-byte columns).
pub fn fig09(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    let projectivities: Vec<usize> = if quick {
        vec![1, 3, 5, 8, 11]
    } else {
        (1..=11).collect()
    };

    let params = BenchmarkParams {
        rows,
        column_width: 4,
        ..BenchmarkParams::default()
    };
    let mut bench = Benchmark::new(params);

    let mut series: Vec<Series> = vec![
        Series::new("Direct Row-wise"),
        Series::new("RME Cold"),
        Series::new("Direct Columnar"),
    ];
    for &k in &projectivities {
        let query = Query::Q1 { projectivity: k };
        let base = bench
            .run(query, AccessPath::DirectRowWise)
            .measurement
            .elapsed
            .as_nanos_f64();
        let cold = bench.run(query, AccessPath::RmeCold).measurement.elapsed.as_nanos_f64();
        let columnar = bench
            .run(query, AccessPath::DirectColumnar)
            .measurement
            .elapsed
            .as_nanos_f64();
        series[0].push(k, 1.0);
        series[1].push(k, cold / base);
        series[2].push(k, columnar / base);
    }

    let table = series_table(
        "Figure 9: Q1 normalized execution time vs. projectivity (number of 4-byte target columns)",
        "Projectivity",
        &series,
    );
    Experiment {
        id: "fig9",
        description: "Projectivity sweep: the column-store wins at low projectivity, the RME wins \
                      beyond four columns, and both beat direct row-wise access"
            .to_string(),
        tables: vec![table],
    }
}
