//! Figure 6: impact of the hardware revisions and of the projected column's
//! offset.
//!
//! Q0 (`SELECT SUM(A1)`) over a table of 64-byte rows with a single 4-byte
//! target column whose offset within the row is swept. Seven configurations
//! are compared: the three hardware revisions (BSL / PCK / MLP), each cold
//! and hot, plus direct row-wise access. The paper's observations to
//! reproduce: cold BSL is an order of magnitude slower than direct access,
//! MLP cold is *faster* than direct access, all hot variants coincide, and
//! cold latency spikes at the offsets where the 4-byte field straddles a
//! 16-byte bus word (13–15, 29–31, 45–47).

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_rme::HwRevision;
use relmem_sim::report::{series_table, Series};

use super::{default_rows, Experiment};

/// Offsets swept: every 4-byte-aligned position plus the bus-word-straddling
/// positions responsible for the spikes.
fn offsets() -> Vec<usize> {
    let mut offs: Vec<usize> = (0..=60).step_by(4).collect();
    for straddle in [13, 14, 15, 29, 30, 31, 45, 46, 47] {
        offs.push(straddle);
    }
    offs.sort_unstable();
    offs
}

/// Runs the Figure 6 experiment.
pub fn fig06(quick: bool) -> Experiment {
    let rows = default_rows(quick).min(16_000);
    let offsets = if quick {
        vec![0, 8, 13, 16, 29, 32, 45, 48, 60]
    } else {
        offsets()
    };
    let cpu_mhz = relmem_sim::PlatformConfig::zcu102().cpu.freq_mhz;

    let mut series: Vec<Series> = vec![
        Series::new("BSL, Cold"),
        Series::new("BSL, Hot"),
        Series::new("PCK, Cold"),
        Series::new("PCK, Hot"),
        Series::new("MLP, Cold"),
        Series::new("MLP, Hot"),
        Series::new("Direct Row-wise"),
    ];

    for &offset in &offsets {
        let mut direct_cycles = 0.0;
        for (idx, revision) in HwRevision::all().into_iter().enumerate() {
            let params = BenchmarkParams {
                rows,
                target_offset: Some(offset),
                revision,
                ..BenchmarkParams::default()
            };
            let mut bench = Benchmark::new(params);
            let cold = bench.run(Query::Q0, AccessPath::RmeCold);
            let hot = bench.run(Query::Q0, AccessPath::RmeHot);
            series[idx * 2].push(offset, cold.measurement.elapsed_cycles(cpu_mhz));
            series[idx * 2 + 1].push(offset, hot.measurement.elapsed_cycles(cpu_mhz));
            if revision == HwRevision::Mlp {
                let direct = bench.run(Query::Q0, AccessPath::DirectRowWise);
                direct_cycles = direct.measurement.elapsed_cycles(cpu_mhz);
            }
        }
        series[6].push(offset, direct_cycles);
    }

    let table = series_table(
        "Figure 6: Q0 execution time (CPU cycles) vs. offset of the projected column",
        "Offset (B)",
        &series,
    );
    Experiment {
        id: "fig6",
        description: "Hardware revisions BSL/PCK/MLP (cold & hot) vs. direct row-wise access; \
                      execution time of Q0 as the projected column's offset varies"
            .to_string(),
        tables: vec![table],
    }
}
