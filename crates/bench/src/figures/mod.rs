//! One module per reproduced figure/table.

mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig13_multicore;
mod fig_dram_fidelity;
mod fig_htap;
mod fig_txn;
mod tables;

pub use fig06::fig06;
pub use fig07::fig07;
pub use fig08::fig08;
pub use fig09::fig09;
pub use fig10::fig10;
pub use fig11::fig11;
pub use fig12::fig12;
pub use fig13::fig13;
pub use fig13_multicore::fig13_multicore;
pub use fig_dram_fidelity::{fig_dram_fidelity, fig_dram_fidelity_traced};
pub use fig_htap::{fig_htap, fig_htap_open_loop, fig_htap_open_loop_traced};
pub use fig_txn::{fig_txn, fig_txn_traced};
pub use tables::{table1, table2};

use relmem_sim::report::Table;
use relmem_sim::Trace;

/// A reproduced experiment: an identifier, a description of what the paper
/// shows, and one or more result tables.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier used on the command line ("fig6", "table2", ...).
    pub id: &'static str,
    /// What the corresponding paper figure/table shows.
    pub description: String,
    /// The regenerated data.
    pub tables: Vec<Table>,
}

impl Experiment {
    /// Renders every table of the experiment as text.
    pub fn render_text(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.description);
        for t in &self.tables {
            out.push_str(&t.render_text());
            out.push('\n');
        }
        out
    }

    /// Renders every table of the experiment as CSV blocks.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("# {}\n", t.title));
            out.push_str(&t.render_csv());
            out.push('\n');
        }
        out
    }
}

/// Identifiers of every experiment, in paper order.
pub fn all_experiments() -> Vec<&'static str> {
    vec![
        "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig13_multicore", "fig_htap", "fig_htap_openloop", "fig_txn", "fig_dram_fidelity",
        "table1", "table2",
    ]
}

/// Runs an experiment by identifier. `quick` shrinks the workload (used by
/// tests and smoke runs); `full` extends sweeps to the paper's largest
/// configurations (2 GB tables for Figure 13).
pub fn experiment_by_id(id: &str, quick: bool, full: bool) -> Option<Experiment> {
    match id {
        "fig6" => Some(fig06(quick)),
        "fig7" => Some(fig07(quick)),
        "fig8" => Some(fig08(quick)),
        "fig9" => Some(fig09(quick)),
        "fig10" => Some(fig10(quick)),
        "fig11" => Some(fig11(quick)),
        "fig12" => Some(fig12(quick)),
        "fig13" => Some(fig13(quick, full)),
        "fig13_multicore" => Some(fig13_multicore(quick)),
        "fig_htap" => Some(fig_htap(quick)),
        "fig_htap_openloop" => Some(fig_htap_open_loop(quick)),
        "fig_txn" => Some(fig_txn(quick)),
        "fig_dram_fidelity" => Some(fig_dram_fidelity(quick)),
        "table1" => Some(table1()),
        "table2" => Some(table2()),
        _ => None,
    }
}

/// Like [`experiment_by_id`], but additionally records a simulated-time
/// trace of the experiment's designated headline run when `trace` is set.
/// Three experiments have one: `fig_htap_openloop` (the 4× overload
/// point), `fig_txn` (4 cores at 100 % hot-row skew) and
/// `fig_dram_fidelity` (the cycle-accurate widest-row RME-cold scan).
/// Every other experiment runs untraced and returns `None` for the trace.
pub fn experiment_by_id_traced(
    id: &str,
    quick: bool,
    full: bool,
    trace: bool,
) -> Option<(Experiment, Option<Trace>)> {
    match id {
        "fig_htap_openloop" => Some(fig_htap_open_loop_traced(quick, trace)),
        "fig_txn" => Some(fig_txn_traced(quick, trace)),
        "fig_dram_fidelity" => Some(fig_dram_fidelity_traced(quick, trace)),
        _ => experiment_by_id(id, quick, full).map(|e| (e, None)),
    }
}

/// Default row count of the benchmark relation (the paper's 44 K), shrunk
/// when `quick` is requested.
pub(crate) fn default_rows(quick: bool) -> u64 {
    if quick {
        4_000
    } else {
        44_000
    }
}
