//! Figure 10: selection/aggregation/group-by queries (Q2, Q3, Q4) with
//! varying column width.
//!
//! The paper's observations: the RME (cold and hot) outperforms direct
//! row-wise access for all three queries; the benefit is smaller for Q4
//! because the group-by CPU work dominates; Q3/Q4 dip at 16-byte columns.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series, Table};

use super::{default_rows, Experiment};
use crate::figures::fig07::WIDTHS;

/// Builds one sub-figure (one query) of Figure 10.
fn sub_figure(query: Query, label: &str, rows: u64) -> Table {
    let mut series: Vec<Series> = vec![
        Series::new("Direct Row-wise"),
        Series::new("RME Cold"),
        Series::new("RME Hot"),
    ];
    for width in WIDTHS {
        let params = BenchmarkParams {
            rows,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let base = bench
            .run(query, AccessPath::DirectRowWise)
            .measurement
            .elapsed
            .as_nanos_f64();
        let cold = bench.run(query, AccessPath::RmeCold).measurement.elapsed.as_nanos_f64();
        let hot = bench.run(query, AccessPath::RmeHot).measurement.elapsed.as_nanos_f64();
        series[0].push(width, 1.0);
        series[1].push(width, cold / base);
        series[2].push(width, hot / base);
    }
    series_table(
        &format!("Figure 10: {label} normalized execution time vs. column width"),
        "Column width (B)",
        &series,
    )
}

/// Runs the Figure 10 experiment (all three sub-figures).
pub fn fig10(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    let tables = vec![
        sub_figure(Query::Q2, "Q2 (selection + projection)", rows),
        sub_figure(Query::Q3, "Q3 (selective aggregation)", rows),
        sub_figure(Query::Q4, "Q4 (aggregation + group by)", rows),
    ];
    Experiment {
        id: "fig10",
        description: "Q2/Q3/Q4 with varying column width, normalized to direct row-wise access"
            .to_string(),
        tables,
    }
}
