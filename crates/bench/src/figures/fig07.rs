//! Figure 7: Q1 (three-column projection) normalized execution time vs.
//! column width.
//!
//! The paper's observations: RME (cold and hot) beats direct row-wise access
//! at every width, roughly matches a pure column-store, and overtakes the
//! column-store at 16-byte columns.

use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_sim::report::{series_table, Series};

use super::{default_rows, Experiment};

/// Column widths swept by the paper.
pub const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs the Figure 7 experiment. Values are normalized to direct row-wise
/// access at the same width.
pub fn fig07(quick: bool) -> Experiment {
    let rows = default_rows(quick);
    let query = Query::Q1 { projectivity: 3 };
    let mut series: Vec<Series> = vec![
        Series::new("Direct Row-Wise"),
        Series::new("RME Cold"),
        Series::new("RME Hot"),
        Series::new("Direct Columnar"),
    ];

    for width in WIDTHS {
        let params = BenchmarkParams {
            rows,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let base = bench
            .run(query, AccessPath::DirectRowWise)
            .measurement
            .elapsed
            .as_nanos_f64();
        let normalized = |b: &mut Benchmark, path| {
            b.run(query, path).measurement.elapsed.as_nanos_f64() / base
        };
        series[0].push(width, 1.0);
        series[1].push(width, normalized(&mut bench, AccessPath::RmeCold));
        series[2].push(width, normalized(&mut bench, AccessPath::RmeHot));
        series[3].push(width, normalized(&mut bench, AccessPath::DirectColumnar));
    }

    let table = series_table(
        "Figure 7: Q1 (k=3) normalized execution time vs. column width",
        "Column width (B)",
        &series,
    );
    Experiment {
        id: "fig7",
        description: "Projection of three non-contiguous columns: RME vs. direct row-wise and \
                      pure columnar access, normalized to direct row-wise"
            .to_string(),
        tables: vec![table],
    }
}
