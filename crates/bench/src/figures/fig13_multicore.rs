//! Figure 13 (multi-core extension): sharded-scan scaling with core count.
//!
//! The paper's evaluation is single-threaded; this experiment extends the
//! Figure 13 scalability question to the platform's full A53 cluster. The
//! `scan_throughput` workload shape (Q1-like: four 4-byte columns of a
//! 64-byte-row table) is sharded across 1, 2, 4 and 8 cores with
//! `System::scan_sharded` (8 is a hypothetical doubled cluster — the
//! ZCU102 has four A53s — probing where the shared L2 banks and the DRAM
//! bus stop the scaling); reported are the aggregate *simulated*
//! throughput scaling over one core, and where the lost fraction goes —
//! shared-L2 bank contention (per-core wait time) and DRAM bus pressure.
//! Like a hardware bank-conflict counter, the per-core wait numbers
//! include a core's *self*-contention (its prefetches vs. its own demand
//! lookups) on top of cross-core interference; the 1-core row reads 0
//! because single-core systems bypass the bank model for fidelity to the
//! paper's single-threaded setup.

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::{AccessPath, System};
use relmem_sim::report::{series_table, Series};
use relmem_sim::SimTime;
use relmem_storage::{DataGen, MvccConfig, Schema};

use super::Experiment;

/// Runs the multi-core scaling sweep.
///
/// Row counts mirror the `scan_throughput` bench (100 K quick, 1 M full).
/// Historical note: they were chosen over a power-of-two table size
/// because, under the plain "row : bank : column" DRAM interleaving, a
/// power-of-two row count made every core's shard start on the *same*
/// bank (1 MB ≡ bank 0 mod 16 for 2 KB rows) and the sweep measured a
/// bank-camping pathology instead of the general scaling behaviour. That
/// pathology is now fixed at the source — `DramConfig::xor_bank_hash`
/// (default on) permutes the bank index with the DRAM row bits, and
/// `xor_hash_breaks_power_of_two_shard_bank_camping` in `relmem-dram`
/// regression-tests the spread — but the row counts are kept for
/// continuity of the recorded results. The supplement table reports the
/// DRAM row-hit rate so alignment effects stay visible.
pub fn fig13_multicore(quick: bool) -> Experiment {
    let rows: u64 = if quick { 100_000 } else { 1_000_000 };
    let columns = [0usize, 1, 2, 3];
    let fields = rows * columns.len() as u64;

    let mut speedup = Series::new("Aggregate speedup vs 1 core");
    let mut throughput = Series::new("Simulated Mfields/s");
    let mut contention = Series::new("Max per-core L2 wait (us)");
    let mut contended = Series::new("Contended L2 lookups (all cores)");
    let mut row_hits = Series::new("DRAM row-hit rate");

    let mut one_core_end: Option<SimTime> = None;
    for cores in [1usize, 2, 4, 8] {
        let mut sys = System::with_config(SystemConfig {
            cores,
            mem_bytes: ((rows * 64) as usize + (64 << 20)).next_power_of_two(),
            ..SystemConfig::default()
        });
        let schema = Schema::benchmark(4, 4, 64);
        let mut table = sys
            .create_table(schema, rows, MvccConfig::Disabled)
            .expect("table fits");
        DataGen::new(1)
            .fill_table(sys.mem_mut(), &mut table, rows)
            .expect("fill");
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let run = sys.scan_sharded(&src, SimTime::ZERO, |_, _, _| RowEffect::default());
        assert_eq!(run.rows, rows);
        let measurement = sys.finish_measurement(run.end, run.cpu, AccessPath::DirectRowWise);

        let base = *one_core_end.get_or_insert(run.end);
        let label = format!("{cores} core{}", if cores == 1 { "" } else { "s" });
        speedup.push(label.clone(), base.as_nanos_f64() / run.end.as_nanos_f64());
        throughput.push(
            label.clone(),
            fields as f64 / run.end.as_nanos_f64() * 1e9 / 1e6,
        );
        let max_wait = run
            .per_core
            .iter()
            .map(|c| c.cache.l2_contention_delay.as_micros_f64())
            .fold(0.0, f64::max);
        contention.push(label.clone(), max_wait);
        contended.push(
            label.clone(),
            run.per_core
                .iter()
                .map(|c| c.cache.l2_contended_lookups as f64)
                .sum(),
        );
        row_hits.push(label, measurement.dram.row_hit_rate());
    }

    let tables = vec![
        series_table(
            "Figure 13 (multi-core): sharded Q1 scan scaling with core count",
            "Cores",
            &[speedup, throughput],
        ),
        series_table(
            "Figure 13 (multi-core, supplement): shared-L2 and DRAM contention",
            "Cores",
            &[contention, contended, row_hits],
        ),
    ];
    Experiment {
        id: "fig13_multicore",
        description: "Multi-core sharded scans: aggregate simulated throughput scales with \
                      core count, bounded by shared-L2 bank contention and the DRAM bus"
            .to_string(),
        tables,
    }
}
