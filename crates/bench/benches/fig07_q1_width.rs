//! Criterion bench for Figure 7: Q1 (k = 3) across column widths and access
//! paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig07(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_q1_width");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let query = Query::Q1 { projectivity: 3 };
    for width in [1usize, 4, 16] {
        let params = BenchmarkParams {
            rows: 8_000,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        for path in AccessPath::all() {
            group.bench_with_input(
                BenchmarkId::new(path.label().replace(' ', "_"), width),
                &width,
                |b, _| b.iter(|| bench.run(query, path)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig07);
criterion_main!(benches);
