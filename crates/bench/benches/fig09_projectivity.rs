//! Criterion bench for Figure 9: Q1 across projectivities (1, 4, 8, 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_projectivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut bench = Benchmark::new(BenchmarkParams {
        rows: 8_000,
        column_width: 4,
        ..BenchmarkParams::default()
    });
    for k in [1usize, 4, 8, 11] {
        let query = Query::Q1 { projectivity: k };
        for path in [
            AccessPath::DirectRowWise,
            AccessPath::DirectColumnar,
            AccessPath::RmeCold,
        ] {
            group.bench_with_input(
                BenchmarkId::new(path.label().replace(' ', "_"), k),
                &k,
                |b, _| b.iter(|| bench.run(query, path)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
